//! Ingest health: the shared error taxonomy for resilient stream
//! decoders.
//!
//! Real collector dumps and IPFIX exports arrive with flipped bits,
//! torn tails, and gaps. Instead of failing the whole file on the first
//! malformed record (fail-stop), the recovering decoders in
//! `spoofwatch-bgp`, `spoofwatch-ixp`, and `spoofwatch-packet`
//! quarantine the bad bytes, resynchronize on the next plausible record
//! boundary, and keep going — returning the decoded records *plus* an
//! [`IngestHealth`] that accounts for every input byte.
//!
//! The accounting invariant every resilient decoder upholds:
//!
//! ```text
//! ok_bytes + quarantined_bytes == input_len
//! ```
//!
//! where `ok_bytes` covers the valid file header and every cleanly
//! decoded record (framing included), and `quarantined_bytes` covers
//! everything skipped during resynchronization, the torn tail, or — when
//! the header itself is unusable — the whole input.

use std::fmt;

/// Why a span of input bytes was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The file magic was missing or wrong; the input is not (or no
    /// longer recognizably) this format.
    BadMagic,
    /// The header declared an unsupported version.
    BadVersion,
    /// The input ended inside a record (torn tail).
    Truncated,
    /// A record's framing or fields were malformed (impossible length,
    /// unknown type, non-canonical prefix, bad path, …).
    BadRecord,
    /// A structurally well-formed record failed the plausibility check
    /// (fields outside any realistic range — the fixed-stride codec's
    /// only corruption signal).
    Implausible,
}

impl FaultKind {
    /// Every fault kind, in [`FaultKind::index`] order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::BadMagic,
        FaultKind::BadVersion,
        FaultKind::Truncated,
        FaultKind::BadRecord,
        FaultKind::Implausible,
    ];

    /// Dense index into per-kind tally arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::BadMagic => 0,
            FaultKind::BadVersion => 1,
            FaultKind::Truncated => 2,
            FaultKind::BadRecord => 3,
            FaultKind::Implausible => 4,
        }
    }

    /// Stable snake_case name, used as a metric label value.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BadMagic => "bad_magic",
            FaultKind::BadVersion => "bad_version",
            FaultKind::Truncated => "truncated",
            FaultKind::BadRecord => "bad_record",
            FaultKind::Implausible => "implausible",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::BadMagic => "bad magic",
            FaultKind::BadVersion => "bad version",
            FaultKind::Truncated => "truncated",
            FaultKind::BadRecord => "malformed record",
            FaultKind::Implausible => "implausible record",
        };
        f.write_str(s)
    }
}

/// One quarantined span, with its byte extent in the original input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestEvent {
    /// Byte offset where the quarantined span starts.
    pub offset: u64,
    /// Length of the quarantined span in bytes.
    pub len: u64,
    /// Why the span was quarantined.
    pub kind: FaultKind,
}

/// Overall verdict on one ingested source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IngestStatus {
    /// Every byte decoded cleanly.
    Ok,
    /// Some bytes were quarantined, but records were recovered around
    /// them.
    Recovered,
    /// Nothing usable was decoded (e.g. the header itself was bad).
    Unrecoverable,
}

impl fmt::Display for IngestStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IngestStatus::Ok => "ok",
            IngestStatus::Recovered => "recovered",
            IngestStatus::Unrecoverable => "unrecoverable",
        };
        f.write_str(s)
    }
}

/// Cap on retained [`IngestEvent`]s; further quarantines are counted but
/// not itemized, bounding memory on pathological inputs.
pub const MAX_EVENTS: usize = 64;

/// Byte-exact health accounting for one decoded source.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestHealth {
    /// Total input bytes presented to the decoder.
    pub input_len: u64,
    /// Records decoded cleanly.
    pub ok_records: u64,
    /// Bytes decoded cleanly (valid header + every clean record's
    /// framing and body).
    pub ok_bytes: u64,
    /// Resynchronization events: times the decoder skipped forward to a
    /// new plausible record boundary after a fault.
    pub resyncs: u64,
    /// Bytes quarantined across all events.
    pub quarantined_bytes: u64,
    /// Itemized quarantined spans (first [`MAX_EVENTS`]).
    pub events: Vec<IngestEvent>,
    /// Quarantine events beyond the [`MAX_EVENTS`] cap.
    pub events_dropped: u64,
    /// Per-kind quarantine tallies, indexed by [`FaultKind::index`].
    /// Unlike `events` these are never capped.
    pub fault_counts: [u64; 5],
    /// Set when the decoder could not establish the format at all.
    pub unrecoverable: bool,
}

impl IngestHealth {
    /// Fresh accounting for an input of `input_len` bytes.
    pub fn new(input_len: u64) -> Self {
        IngestHealth {
            input_len,
            ..Default::default()
        }
    }

    /// Credit a cleanly decoded span (header or record).
    pub fn credit_ok(&mut self, nbytes: u64) {
        self.ok_bytes += nbytes;
    }

    /// Credit one cleanly decoded record of `nbytes`.
    pub fn credit_record(&mut self, nbytes: u64) {
        self.ok_records += 1;
        self.ok_bytes += nbytes;
    }

    /// Quarantine `len` bytes at `offset`. Zero-length quarantines are
    /// ignored.
    pub fn quarantine(&mut self, offset: u64, len: u64, kind: FaultKind) {
        if len == 0 {
            return;
        }
        self.quarantined_bytes += len;
        self.fault_counts[kind.index()] += 1;
        if self.events.len() < MAX_EVENTS {
            self.events.push(IngestEvent { offset, len, kind });
        } else {
            self.events_dropped += 1;
        }
    }

    /// Note a successful resynchronization (the decoder found a new
    /// plausible record boundary after a fault).
    pub fn note_resync(&mut self) {
        self.resyncs += 1;
    }

    /// Mark the whole input unusable (bad header): quarantines any
    /// still-unaccounted bytes and sets the unrecoverable flag.
    pub fn abandon(&mut self, kind: FaultKind) {
        let accounted = self.ok_bytes + self.quarantined_bytes;
        self.quarantine(accounted, self.input_len - accounted, kind);
        self.unrecoverable = true;
    }

    /// The per-source verdict.
    pub fn status(&self) -> IngestStatus {
        if self.unrecoverable {
            IngestStatus::Unrecoverable
        } else if self.quarantined_bytes == 0 {
            IngestStatus::Ok
        } else {
            IngestStatus::Recovered
        }
    }

    /// Whether the byte accounting is exact:
    /// `ok_bytes + quarantined_bytes == input_len`.
    pub fn reconciles(&self) -> bool {
        self.ok_bytes + self.quarantined_bytes == self.input_len
    }

    /// Fraction of input bytes that decoded cleanly (1.0 for empty
    /// input).
    pub fn ok_fraction(&self) -> f64 {
        if self.input_len == 0 {
            1.0
        } else {
            self.ok_bytes as f64 / self.input_len as f64
        }
    }

    /// Merge another source's accounting into this one (for
    /// whole-vantage summaries). Event offsets keep their per-source
    /// meaning.
    pub fn absorb(&mut self, other: &IngestHealth) {
        self.input_len += other.input_len;
        self.ok_records += other.ok_records;
        self.ok_bytes += other.ok_bytes;
        self.resyncs += other.resyncs;
        self.quarantined_bytes += other.quarantined_bytes;
        for e in &other.events {
            if self.events.len() < MAX_EVENTS {
                self.events.push(*e);
            } else {
                self.events_dropped += 1;
            }
        }
        self.events_dropped += other.events_dropped;
        for (mine, theirs) in self.fault_counts.iter_mut().zip(other.fault_counts) {
            *mine += theirs;
        }
        self.unrecoverable |= other.unrecoverable;
    }

    /// Report this source's accounting to the process-global metrics
    /// registry under the given `format` label (`ipfix`, `mrt`,
    /// `pcap`, …). A no-op unless the global registry is enabled (see
    /// `spoofwatch_obs::global`). Call exactly once per decoded source:
    /// the counters are cumulative across calls.
    pub fn record_metrics(&self, format: &'static str) {
        let reg = spoofwatch_obs::global();
        if !reg.is_enabled() {
            return;
        }
        let fmt_label = [("format", format)];
        reg.counter(
            "spoofwatch_decode_records_total",
            "Records decoded cleanly by the resilient decoders",
            &fmt_label,
        )
        .add(self.ok_records);
        reg.counter(
            "spoofwatch_decode_resyncs_total",
            "Times a decoder skipped forward to a new plausible record boundary",
            &fmt_label,
        )
        .add(self.resyncs);
        reg.counter(
            "spoofwatch_decode_fault_events_dropped_total",
            "Quarantine events beyond the per-source itemization cap",
            &fmt_label,
        )
        .add(self.events_dropped);
        for (disposition, bytes) in [("ok", self.ok_bytes), ("quarantined", self.quarantined_bytes)]
        {
            reg.counter(
                "spoofwatch_decode_bytes_total",
                "Input bytes by decode disposition; ok + quarantined covers every input byte",
                &[("format", format), ("disposition", disposition)],
            )
            .add(bytes);
        }
        for kind in FaultKind::ALL {
            let n = self.fault_counts[kind.index()];
            if n > 0 {
                reg.counter(
                    "spoofwatch_decode_faults_total",
                    "Quarantined spans by fault kind",
                    &[("format", format), ("kind", kind.label())],
                )
                .add(n);
            }
        }
        if self.unrecoverable {
            reg.counter(
                "spoofwatch_decode_unrecoverable_total",
                "Sources whose format could not be established at all",
                &fmt_label,
            )
            .inc();
        }
    }
}

impl fmt::Display for IngestHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} records ok ({} B), {} resyncs, {} B quarantined in {} spans",
            self.status(),
            self.ok_records,
            self.ok_bytes,
            self.resyncs,
            self.quarantined_bytes,
            self.events.len() as u64 + self.events_dropped,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_input_is_ok() {
        let mut h = IngestHealth::new(100);
        h.credit_ok(6);
        h.credit_record(94);
        assert_eq!(h.status(), IngestStatus::Ok);
        assert!(h.reconciles());
        assert_eq!(h.ok_records, 1);
        assert!((h.ok_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quarantine_accounting() {
        let mut h = IngestHealth::new(100);
        h.credit_ok(6);
        h.credit_record(50);
        h.quarantine(56, 44, FaultKind::BadRecord);
        h.note_resync();
        assert_eq!(h.status(), IngestStatus::Recovered);
        assert!(h.reconciles());
        assert_eq!(h.events.len(), 1);
        assert_eq!(h.events[0].offset, 56);
        assert_eq!(h.resyncs, 1);
    }

    #[test]
    fn abandon_quarantines_remainder() {
        let mut h = IngestHealth::new(40);
        h.abandon(FaultKind::BadMagic);
        assert_eq!(h.status(), IngestStatus::Unrecoverable);
        assert!(h.reconciles());
        assert_eq!(h.quarantined_bytes, 40);
    }

    #[test]
    fn event_cap_counts_overflow() {
        let mut h = IngestHealth::new(10_000);
        for i in 0..(MAX_EVENTS as u64 + 10) {
            h.quarantine(i, 1, FaultKind::BadRecord);
        }
        assert_eq!(h.events.len(), MAX_EVENTS);
        assert_eq!(h.events_dropped, 10);
    }

    #[test]
    fn absorb_merges() {
        let mut a = IngestHealth::new(10);
        a.credit_ok(10);
        let mut b = IngestHealth::new(20);
        b.credit_ok(5);
        b.quarantine(5, 15, FaultKind::Truncated);
        a.absorb(&b);
        assert_eq!(a.input_len, 30);
        assert_eq!(a.ok_bytes, 15);
        assert_eq!(a.quarantined_bytes, 15);
        assert!(a.reconciles());
        assert_eq!(a.status(), IngestStatus::Recovered);
    }

    #[test]
    fn fault_counts_tally_by_kind_uncapped() {
        let mut h = IngestHealth::new(10_000);
        for i in 0..(MAX_EVENTS as u64 + 10) {
            h.quarantine(i, 1, FaultKind::BadRecord);
        }
        h.quarantine(9_000, 1, FaultKind::Truncated);
        assert_eq!(h.fault_counts[FaultKind::BadRecord.index()], MAX_EVENTS as u64 + 10);
        assert_eq!(h.fault_counts[FaultKind::Truncated.index()], 1);

        let mut other = IngestHealth::new(10);
        other.quarantine(0, 10, FaultKind::BadRecord);
        h.absorb(&other);
        assert_eq!(h.fault_counts[FaultKind::BadRecord.index()], MAX_EVENTS as u64 + 11);
    }

    #[test]
    fn record_metrics_exports_taxonomy() {
        // Install a live global registry for this test binary; nothing
        // else in spoofwatch-net's tests touches the global.
        let reg = spoofwatch_obs::MetricsRegistry::new();
        spoofwatch_obs::install_global(std::sync::Arc::clone(&reg));
        let reg = std::sync::Arc::clone(spoofwatch_obs::global());
        assert!(reg.is_enabled(), "install must precede first global() use");

        let mut h = IngestHealth::new(100);
        h.credit_ok(6);
        h.credit_record(50);
        h.quarantine(56, 40, FaultKind::BadRecord);
        h.note_resync();
        h.quarantine(96, 4, FaultKind::Truncated);
        h.record_metrics("testfmt");

        let snap = reg.snapshot();
        let fmt = &[("format", "testfmt")][..];
        assert_eq!(
            snap.counter("spoofwatch_decode_records_total", fmt),
            Some(1)
        );
        assert_eq!(snap.counter("spoofwatch_decode_resyncs_total", fmt), Some(1));
        assert_eq!(
            snap.counter(
                "spoofwatch_decode_bytes_total",
                &[("format", "testfmt"), ("disposition", "ok")],
            ),
            Some(56)
        );
        assert_eq!(
            snap.counter(
                "spoofwatch_decode_bytes_total",
                &[("format", "testfmt"), ("disposition", "quarantined")],
            ),
            Some(44)
        );
        assert_eq!(
            snap.counter(
                "spoofwatch_decode_faults_total",
                &[("format", "testfmt"), ("kind", "bad_record")],
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter(
                "spoofwatch_decode_faults_total",
                &[("format", "testfmt"), ("kind", "truncated")],
            ),
            Some(1)
        );
        // ok + quarantined bytes cover the whole input, mirrored in the
        // exported counters.
        assert_eq!(
            snap.counter_sum("spoofwatch_decode_bytes_total"),
            h.input_len
        );
    }

    #[test]
    fn zero_len_quarantine_ignored() {
        let mut h = IngestHealth::new(5);
        h.quarantine(0, 0, FaultKind::BadRecord);
        assert_eq!(h.quarantined_bytes, 0);
        assert!(h.events.is_empty());
        h.credit_ok(5);
        assert_eq!(h.status(), IngestStatus::Ok);
    }
}
