//! Seeded fault injection for ingest robustness testing.
//!
//! [`FaultInjector`] applies the corruption modes we see in real
//! collector archives — flipped bits, torn tail writes, truncation,
//! duplicated and reordered records, inserted garbage — to an encoded
//! byte stream, deterministically for a given seed. Tests and benches
//! use it to measure how much of a corpus the resilient decoders
//! recover; the injector itself knows nothing about any codec beyond an
//! optional protected prefix (the file header) and an optional record
//! stride.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One concrete corruption applied to a byte stream, for test
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppliedFault {
    /// Bit `bit` of byte `offset` was flipped.
    BitFlip {
        /// Byte offset of the flipped bit.
        offset: usize,
        /// Bit index (0–7) within the byte.
        bit: u8,
    },
    /// The stream was cut to `new_len` bytes.
    Truncate {
        /// Length of the stream after the cut.
        new_len: usize,
    },
    /// The last `torn` bytes were overwritten with garbage, as if a
    /// write was interrupted mid-record.
    TornTail {
        /// Number of trailing bytes overwritten.
        torn: usize,
    },
    /// Bytes `[start, start + len)` were duplicated in place.
    Duplicate {
        /// Start of the duplicated span.
        start: usize,
        /// Length of the duplicated span.
        len: usize,
    },
    /// Spans `[a, a + len)` and `[b, b + len)` were swapped.
    Reorder {
        /// Start of the first span.
        a: usize,
        /// Start of the second span.
        b: usize,
        /// Length of each span.
        len: usize,
    },
    /// `len` random bytes were inserted at `offset`.
    Garbage {
        /// Insertion point.
        offset: usize,
        /// Number of inserted bytes.
        len: usize,
    },
}

/// Deterministic, seedable byte-stream corruptor.
///
/// All offsets are constrained to land at or after `protect_prefix`, so
/// a codec's file header can be kept intact when the test targets
/// record-level recovery rather than header handling.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    protect_prefix: usize,
}

impl FaultInjector {
    /// A new injector with a deterministic stream for `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
            protect_prefix: 0,
        }
    }

    /// Keep the first `n` bytes (the file header) untouched by every
    /// operator.
    pub fn protect_prefix(mut self, n: usize) -> Self {
        self.protect_prefix = n;
        self
    }

    /// Number of corruptible bytes in `data` (length past the protected
    /// prefix).
    fn span(&self, data: &[u8]) -> usize {
        data.len().saturating_sub(self.protect_prefix)
    }

    /// A random offset into the corruptible region, or `None` if there
    /// is none.
    fn pick_offset(&mut self, data: &[u8]) -> Option<usize> {
        let span = self.span(data);
        if span == 0 {
            return None;
        }
        Some(self.protect_prefix + self.rng.random_range(0..span))
    }

    /// Flip one random bit.
    pub fn bit_flip(&mut self, data: &mut [u8]) -> Option<AppliedFault> {
        let offset = self.pick_offset(data)?;
        let bit = self.rng.random_range(0u8..8);
        data[offset] ^= 1 << bit;
        Some(AppliedFault::BitFlip { offset, bit })
    }

    /// Cut the stream at a random point past the protected prefix.
    pub fn truncate(&mut self, data: &mut Vec<u8>) -> Option<AppliedFault> {
        let new_len = self.pick_offset(data)?;
        data.truncate(new_len);
        Some(AppliedFault::Truncate { new_len })
    }

    /// Overwrite a random-length tail (up to `max_torn` bytes) with
    /// garbage, simulating an interrupted append.
    pub fn torn_tail(&mut self, data: &mut [u8], max_torn: usize) -> Option<AppliedFault> {
        let span = self.span(data).min(max_torn);
        if span == 0 {
            return None;
        }
        let torn = self.rng.random_range(1..=span);
        let start = data.len() - torn;
        for b in &mut data[start..] {
            *b = self.rng.random::<u8>();
        }
        Some(AppliedFault::TornTail { torn })
    }

    /// Duplicate a span of `len` bytes in place (record duplication when
    /// `len` is the record stride and offsets are stride-aligned).
    pub fn duplicate(&mut self, data: &mut Vec<u8>, len: usize) -> Option<AppliedFault> {
        let span = self.span(data);
        if len == 0 || span < len {
            return None;
        }
        let start = self.protect_prefix + self.rng.random_range(0..=span - len);
        let dup: Vec<u8> = data[start..start + len].to_vec();
        data.splice(start..start, dup);
        Some(AppliedFault::Duplicate { start, len })
    }

    /// Swap two non-overlapping spans of `len` bytes.
    pub fn reorder(&mut self, data: &mut [u8], len: usize) -> Option<AppliedFault> {
        let span = self.span(data);
        if len == 0 || span < 2 * len {
            return None;
        }
        // Pick the first span from the front half of the corruptible
        // region and the second strictly after it.
        let a = self.protect_prefix + self.rng.random_range(0..=span - 2 * len);
        let b_lo = a + len;
        let b_hi = self.protect_prefix + self.span(data) - len;
        let b = self.rng.random_range(b_lo..=b_hi);
        let (first, second) = data.split_at_mut(b);
        first[a..a + len].swap_with_slice(&mut second[..len]);
        Some(AppliedFault::Reorder { a, b, len })
    }

    /// Insert `len` random bytes at a random position.
    pub fn insert_garbage(&mut self, data: &mut Vec<u8>, len: usize) -> Option<AppliedFault> {
        if len == 0 || data.len() < self.protect_prefix {
            return None;
        }
        let span = self.span(data);
        let offset = self.protect_prefix + self.rng.random_range(0..=span);
        let garbage: Vec<u8> = (0..len).map(|_| self.rng.random::<u8>()).collect();
        data.splice(offset..offset, garbage);
        Some(AppliedFault::Garbage { offset, len })
    }

    /// Flip bits in roughly `percent`% of the corruptible bytes
    /// (each byte corrupted independently). The workhorse for the
    /// "decode throughput under X% corruption" benches.
    pub fn corrupt_percent(&mut self, data: &mut [u8], percent: f64) -> usize {
        let p = (percent / 100.0).clamp(0.0, 1.0);
        let mut hit = 0;
        for b in data.iter_mut().skip(self.protect_prefix) {
            if self.rng.random_bool(p) {
                *b ^= 1 << self.rng.random_range(0u8..8);
                hit += 1;
            }
        }
        hit
    }

    /// Apply one uniformly chosen fault out of the six operators, with
    /// sensible span sizes derived from `stride` (a codec's record size
    /// hint; pass e.g. the median record length).
    pub fn any_single(&mut self, data: &mut Vec<u8>, stride: usize) -> Option<AppliedFault> {
        let stride = stride.max(1);
        match self.rng.random_range(0..6u32) {
            0 => self.bit_flip(data),
            1 => self.truncate(data),
            2 => self.torn_tail(data, stride),
            3 => self.duplicate(data, stride),
            4 => self.reorder(data, stride),
            _ => {
                let len = self.rng.random_range(1..=stride);
                self.insert_garbage(data, len)
            }
        }
    }
}

/// One corruption applied to a *framed stream* by [`WireFaultInjector`],
/// for chaos-test diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFault {
    /// One bit inside frame `frame` was flipped.
    FrameBitFlip {
        /// Index of the damaged frame.
        frame: usize,
    },
    /// Frame `frame` lost its last `torn` bytes (a torn tail).
    FrameTorn {
        /// Index of the damaged frame.
        frame: usize,
        /// Bytes cut from its end.
        torn: usize,
    },
    /// Frame `frame` was transmitted twice.
    FrameDuplicated {
        /// Index of the duplicated frame.
        frame: usize,
    },
    /// Frames `a` and `b` swapped places on the wire.
    FramesReordered {
        /// First swapped frame.
        a: usize,
        /// Second swapped frame.
        b: usize,
    },
    /// Frame `frame` vanished entirely (a mid-stream drop).
    FrameDropped {
        /// Index of the dropped frame.
        frame: usize,
    },
    /// `len` garbage bytes appeared between frames, before frame
    /// `before`.
    GarbageInserted {
        /// Frame index the garbage precedes (`== frames.len()` for
        /// trailing garbage).
        before: usize,
        /// Garbage length.
        len: usize,
    },
}

/// Streaming/wire mode of the fault injector: seeded corruption of a
/// *sequence of frames* in flight, modelling what a hostile or flaky
/// byte stream does between two shard processes — arbitrary-boundary
/// segmentation, torn tails, bit flips, duplicated / reordered /
/// dropped frames, and inter-frame garbage.
///
/// It operates on whole frames (each a `Vec<u8>` as produced by
/// `wire::frame_encode`) so chaos tests can corrupt deterministically
/// per frame index; [`WireFaultInjector::segment`] then re-cuts the
/// concatenated bytes at arbitrary boundaries to exercise stream
/// reassembly.
#[derive(Debug)]
pub struct WireFaultInjector {
    rng: StdRng,
}

impl WireFaultInjector {
    /// A new wire injector with a deterministic stream for `seed`.
    pub fn new(seed: u64) -> Self {
        WireFaultInjector {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Split `stream` into randomly sized segments (each 1 to
    /// `max_segment` bytes) that tile it exactly — the arbitrary
    /// delivery boundaries a TCP-like byte stream produces.
    pub fn segment(&mut self, stream: &[u8], max_segment: usize) -> Vec<Vec<u8>> {
        let max_segment = max_segment.max(1);
        let mut out = Vec::new();
        let mut at = 0;
        while at < stream.len() {
            let take = self
                .rng
                .random_range(1..=max_segment)
                .min(stream.len() - at);
            out.push(stream[at..at + take].to_vec());
            at += take;
        }
        out
    }

    /// Flip one random bit inside a random frame.
    pub fn flip_in_frame(&mut self, frames: &mut [Vec<u8>]) -> Option<WireFault> {
        let candidates: Vec<usize> = (0..frames.len()).filter(|&i| !frames[i].is_empty()).collect();
        if candidates.is_empty() {
            return None;
        }
        let frame = candidates[self.rng.random_range(0..candidates.len())];
        let offset = self.rng.random_range(0..frames[frame].len());
        let bit = self.rng.random_range(0u8..8);
        frames[frame][offset] ^= 1 << bit;
        Some(WireFault::FrameBitFlip { frame })
    }

    /// Tear the tail off a random frame (at least one byte survives so
    /// the damage is mid-frame, not a clean drop).
    pub fn tear_frame(&mut self, frames: &mut [Vec<u8>]) -> Option<WireFault> {
        let candidates: Vec<usize> = (0..frames.len()).filter(|&i| frames[i].len() > 1).collect();
        if candidates.is_empty() {
            return None;
        }
        let frame = candidates[self.rng.random_range(0..candidates.len())];
        let torn = self.rng.random_range(1..frames[frame].len());
        let keep = frames[frame].len() - torn;
        frames[frame].truncate(keep);
        Some(WireFault::FrameTorn { frame, torn })
    }

    /// Transmit a random frame twice.
    pub fn duplicate_frame(&mut self, frames: &mut Vec<Vec<u8>>) -> Option<WireFault> {
        if frames.is_empty() {
            return None;
        }
        let frame = self.rng.random_range(0..frames.len());
        let copy = frames[frame].clone();
        frames.insert(frame, copy);
        Some(WireFault::FrameDuplicated { frame })
    }

    /// Swap two distinct random frames.
    pub fn reorder_frames(&mut self, frames: &mut [Vec<u8>]) -> Option<WireFault> {
        if frames.len() < 2 {
            return None;
        }
        let a = self.rng.random_range(0..frames.len() - 1);
        let b = self.rng.random_range(a + 1..frames.len());
        frames.swap(a, b);
        Some(WireFault::FramesReordered { a, b })
    }

    /// Drop a random frame entirely.
    pub fn drop_frame(&mut self, frames: &mut Vec<Vec<u8>>) -> Option<WireFault> {
        if frames.is_empty() {
            return None;
        }
        let frame = self.rng.random_range(0..frames.len());
        frames.remove(frame);
        Some(WireFault::FrameDropped { frame })
    }

    /// Insert up to `max_len` garbage bytes between two frames (as its
    /// own "frame" so segmentation interleaves it with real bytes).
    pub fn insert_wire_garbage(
        &mut self,
        frames: &mut Vec<Vec<u8>>,
        max_len: usize,
    ) -> Option<WireFault> {
        let max_len = max_len.max(1);
        let before = self.rng.random_range(0..=frames.len());
        let len = self.rng.random_range(1..=max_len);
        let garbage: Vec<u8> = (0..len).map(|_| self.rng.random::<u8>()).collect();
        frames.insert(before, garbage);
        Some(WireFault::GarbageInserted { before, len })
    }

    /// Apply one uniformly chosen wire fault.
    pub fn any_wire_fault(&mut self, frames: &mut Vec<Vec<u8>>) -> Option<WireFault> {
        match self.rng.random_range(0..6u32) {
            0 => self.flip_in_frame(frames),
            1 => self.tear_frame(frames),
            2 => self.duplicate_frame(frames),
            3 => self.reorder_frames(frames),
            4 => self.drop_frame(frames),
            _ => self.insert_wire_garbage(frames, 32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<u8> {
        (0u16..400).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = corpus();
        let mut b = corpus();
        let fa = FaultInjector::new(9).bit_flip(&mut a);
        let fb = FaultInjector::new(9).bit_flip(&mut b);
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        assert_ne!(a, corpus());
    }

    #[test]
    fn protected_prefix_is_never_touched() {
        let clean = corpus();
        for seed in 0..50 {
            let mut data = clean.clone();
            let mut inj = FaultInjector::new(seed).protect_prefix(16);
            inj.any_single(&mut data, 35);
            let kept = data.len().min(16);
            assert_eq!(&data[..kept], &clean[..kept], "seed {seed}");
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let clean = corpus();
        let mut data = clean.clone();
        let fault = FaultInjector::new(1).bit_flip(&mut data).unwrap();
        let AppliedFault::BitFlip { offset, bit } = fault else {
            panic!("wrong fault kind");
        };
        let diff: Vec<usize> = (0..clean.len()).filter(|&i| clean[i] != data[i]).collect();
        assert_eq!(diff, vec![offset]);
        assert_eq!(clean[offset] ^ data[offset], 1 << bit);
    }

    #[test]
    fn truncate_shortens() {
        let mut data = corpus();
        let before = data.len();
        FaultInjector::new(2).truncate(&mut data).unwrap();
        assert!(data.len() < before);
    }

    #[test]
    fn duplicate_grows_by_len() {
        let mut data = corpus();
        let before = data.len();
        let fault = FaultInjector::new(3).duplicate(&mut data, 35).unwrap();
        assert_eq!(data.len(), before + 35);
        let AppliedFault::Duplicate { start, len } = fault else {
            panic!("wrong fault kind");
        };
        assert_eq!(data[start..start + len], data[start + len..start + 2 * len]);
    }

    #[test]
    fn reorder_preserves_multiset() {
        let clean = corpus();
        let mut data = clean.clone();
        FaultInjector::new(4).reorder(&mut data, 10).unwrap();
        assert_eq!(data.len(), clean.len());
        let mut a = clean.clone();
        let mut b = data.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_ne!(data, clean);
    }

    #[test]
    fn insert_garbage_grows() {
        let mut data = corpus();
        let before = data.len();
        FaultInjector::new(5).insert_garbage(&mut data, 7).unwrap();
        assert_eq!(data.len(), before + 7);
    }

    #[test]
    fn corrupt_percent_hits_roughly_right_count() {
        let mut data = vec![0u8; 100_000];
        let hits = FaultInjector::new(6).corrupt_percent(&mut data, 1.0);
        assert!((500..1_500).contains(&hits), "hits = {hits}");
        assert_eq!(data.iter().filter(|&&b| b != 0).count(), hits);
    }

    #[test]
    fn operators_degrade_gracefully_on_tiny_input() {
        let mut inj = FaultInjector::new(7).protect_prefix(8);
        let mut tiny = vec![1u8; 8]; // nothing past the protected prefix
        assert_eq!(inj.bit_flip(&mut tiny), None);
        assert_eq!(inj.truncate(&mut tiny), None);
        assert_eq!(inj.torn_tail(&mut tiny, 16), None);
        assert_eq!(inj.duplicate(&mut tiny, 16), None);
        assert_eq!(inj.reorder(&mut tiny, 16), None);
        // insert_garbage still works: it appends after the prefix.
        assert!(inj.insert_garbage(&mut tiny, 3).is_some());
        assert_eq!(tiny.len(), 11);
    }

    fn frames() -> Vec<Vec<u8>> {
        (0..5u8)
            .map(|i| (0..10 + i as usize * 3).map(|j| i.wrapping_mul(40) ^ j as u8).collect())
            .collect()
    }

    #[test]
    fn wire_injector_is_deterministic() {
        let mut a = frames();
        let mut b = frames();
        let fa = WireFaultInjector::new(11).any_wire_fault(&mut a);
        let fb = WireFaultInjector::new(11).any_wire_fault(&mut b);
        assert_eq!(fa, fb);
        assert_eq!(a, b);
        assert_ne!(a, frames());
    }

    #[test]
    fn segmentation_tiles_the_stream_exactly() {
        let stream: Vec<u8> = (0..997u32).map(|i| (i % 256) as u8).collect();
        for seed in 0..20 {
            let segs = WireFaultInjector::new(seed).segment(&stream, 37);
            assert!(segs.iter().all(|s| !s.is_empty() && s.len() <= 37));
            let glued: Vec<u8> = segs.concat();
            assert_eq!(glued, stream, "seed {seed}");
        }
    }

    #[test]
    fn tear_frame_shortens_exactly_one_frame() {
        let clean = frames();
        let mut data = clean.clone();
        let fault = WireFaultInjector::new(3).tear_frame(&mut data).unwrap();
        let WireFault::FrameTorn { frame, torn } = fault else {
            panic!("wrong fault kind");
        };
        assert_eq!(data.len(), clean.len());
        assert_eq!(data[frame].len(), clean[frame].len() - torn);
        assert!(!data[frame].is_empty());
        for i in 0..clean.len() {
            if i != frame {
                assert_eq!(data[i], clean[i]);
            }
        }
    }

    #[test]
    fn duplicate_and_drop_change_frame_count() {
        let mut data = frames();
        let n = data.len();
        WireFaultInjector::new(4).duplicate_frame(&mut data).unwrap();
        assert_eq!(data.len(), n + 1);
        WireFaultInjector::new(5).drop_frame(&mut data).unwrap();
        assert_eq!(data.len(), n);
    }

    #[test]
    fn reorder_swaps_two_frames() {
        let clean = frames();
        let mut data = clean.clone();
        let fault = WireFaultInjector::new(6).reorder_frames(&mut data).unwrap();
        let WireFault::FramesReordered { a, b } = fault else {
            panic!("wrong fault kind");
        };
        assert_ne!(a, b);
        assert_eq!(data[a], clean[b]);
        assert_eq!(data[b], clean[a]);
    }

    #[test]
    fn wire_ops_degrade_gracefully_on_empty_input() {
        let mut inj = WireFaultInjector::new(7);
        let mut empty: Vec<Vec<u8>> = Vec::new();
        assert_eq!(inj.flip_in_frame(&mut empty), None);
        assert_eq!(inj.tear_frame(&mut empty), None);
        assert_eq!(inj.duplicate_frame(&mut empty), None);
        assert_eq!(inj.reorder_frames(&mut empty), None);
        assert_eq!(inj.drop_frame(&mut empty), None);
        // Garbage insertion works even with no frames.
        assert!(inj.insert_wire_garbage(&mut empty, 8).is_some());
        assert_eq!(empty.len(), 1);
    }
}
