//! IPv4 address helpers.
//!
//! Throughout `spoofwatch` an IPv4 address is a plain `u32` in host byte
//! order (`10.0.0.1` is `0x0A00_0001`). This keeps the hot classification
//! path allocation-free and makes bit manipulation (longest-prefix match,
//! trie walks) direct. These helpers convert to and from dotted-quad text
//! and `std::net::Ipv4Addr`.

use crate::error::NetError;
use std::net::Ipv4Addr;

/// Format a `u32` address as dotted-quad text.
///
/// ```
/// assert_eq!(spoofwatch_net::fmt_addr(0x0A00_0001), "10.0.0.1");
/// ```
pub fn fmt_addr(addr: u32) -> String {
    Ipv4Addr::from(addr).to_string()
}

/// Parse dotted-quad text into a `u32` address.
///
/// ```
/// assert_eq!(spoofwatch_net::parse_addr("10.0.0.1").unwrap(), 0x0A00_0001);
/// assert!(spoofwatch_net::parse_addr("10.0.0.256").is_err());
/// ```
pub fn parse_addr(s: &str) -> Result<u32, NetError> {
    s.parse::<Ipv4Addr>()
        .map(u32::from)
        .map_err(|_| NetError::BadAddress(s.to_owned()))
}

/// The top octet (`a` in `a.b.c.d`) of an address; the bin index used by the
/// paper's Figure 10 address-structure histograms.
#[inline]
pub fn slash8_index(addr: u32) -> u8 {
    (addr >> 24) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for s in ["0.0.0.0", "255.255.255.255", "192.0.2.7", "8.8.8.8"] {
            assert_eq!(fmt_addr(parse_addr(s).unwrap()), s);
        }
    }

    #[test]
    fn rejects_garbage() {
        for s in ["", "1.2.3", "1.2.3.4.5", "300.1.1.1", "a.b.c.d", "1.2.3.4/8"] {
            assert!(parse_addr(s).is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn slash8_bins() {
        assert_eq!(slash8_index(parse_addr("10.1.2.3").unwrap()), 10);
        assert_eq!(slash8_index(parse_addr("224.0.0.1").unwrap()), 224);
        assert_eq!(slash8_index(0), 0);
        assert_eq!(slash8_index(u32::MAX), 255);
    }
}
