//! Canonical IPv4 CIDR prefixes.

use crate::error::NetError;
use crate::parse_addr;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// A canonical IPv4 CIDR prefix.
///
/// Invariant: all host bits below `len` are zero (`10.1.2.3/8` is rejected
/// by [`Ipv4Prefix::new`]; use [`Ipv4Prefix::new_truncating`] to mask them).
/// The invariant means two prefixes are equal iff they denote the same
/// address block, so `Ipv4Prefix` is directly usable as a map key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    bits: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// `0.0.0.0/0`, the default route / whole address space.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { bits: 0, len: 0 };

    /// Build a prefix, rejecting non-canonical inputs.
    pub fn new(bits: u32, len: u8) -> Result<Self, NetError> {
        if len > 32 {
            return Err(NetError::BadPrefixLen(len as u32));
        }
        let p = Ipv4Prefix::new_truncating(bits, len);
        if p.bits != bits {
            return Err(NetError::BadPrefix(format!(
                "{}/{len} has host bits set",
                Ipv4Addr::from(bits)
            )));
        }
        Ok(p)
    }

    /// Build a prefix, masking any set host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`; the length is almost always a literal or an
    /// already-validated value on this path.
    pub fn new_truncating(bits: u32, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Ipv4Prefix {
            bits: bits & mask(len),
            len,
        }
    }

    /// The /32 host route for a single address.
    pub fn host(addr: u32) -> Self {
        Ipv4Prefix { bits: addr, len: 32 }
    }

    /// The network address (all host bits zero).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The prefix length in `0..=32`.
    ///
    /// (Not a container length — `is_empty` would be meaningless, hence
    /// the lint allowance.)
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    #[inline]
    pub fn is_default(&self) -> bool {
        self.len == 0
    }

    /// The netmask as a `u32` (e.g. `/24` → `0xFFFF_FF00`).
    #[inline]
    pub fn netmask(&self) -> u32 {
        mask(self.len)
    }

    /// First address covered (== network address).
    #[inline]
    pub fn first(&self) -> u32 {
        self.bits
    }

    /// Last address covered (broadcast address for subnets).
    #[inline]
    pub fn last(&self) -> u32 {
        self.bits | !mask(self.len)
    }

    /// Number of addresses covered, as `u64` so `/0` does not overflow.
    #[inline]
    pub fn num_addresses(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `addr` falls inside this prefix.
    ///
    /// ```
    /// use spoofwatch_net::Ipv4Prefix;
    /// let p: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    /// assert!(p.contains(spoofwatch_net::parse_addr("10.200.3.4").unwrap()));
    /// assert!(!p.contains(spoofwatch_net::parse_addr("11.0.0.0").unwrap()));
    /// ```
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        addr & mask(self.len) == self.bits
    }

    /// Whether `other` is fully covered by (equal to or more specific than)
    /// `self`.
    #[inline]
    pub fn covers(&self, other: &Ipv4Prefix) -> bool {
        self.len <= other.len && other.bits & mask(self.len) == self.bits
    }

    /// Whether the two prefixes share any address (one covers the other).
    #[inline]
    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// The immediate parent (one bit shorter), or `None` for `/0`.
    pub fn supernet(&self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv4Prefix::new_truncating(self.bits, self.len - 1))
        }
    }

    /// The two immediate children (one bit longer), or `None` for `/32`.
    pub fn children(&self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len == 32 {
            None
        } else {
            let len = self.len + 1;
            let left = Ipv4Prefix { bits: self.bits, len };
            let right = Ipv4Prefix {
                bits: self.bits | (1u32 << (32 - len)),
                len,
            };
            Some((left, right))
        }
    }

    /// The value of bit `index` (0 = most significant) of the network
    /// address; used by the trie walk.
    #[inline]
    pub fn bit(&self, index: u8) -> bool {
        debug_assert!(index < 32);
        self.bits & (1u32 << (31 - index)) != 0
    }

    /// Size of this prefix in 1/256-of-a-/24 units, i.e. exactly
    /// `num_addresses()` since a /24 holds 256 addresses. Reported space is
    /// divided by [`crate::UNITS_PER_SLASH24`] to obtain "/24 equivalents",
    /// the unit of the paper's Figure 2 and §3.3.
    #[inline]
    pub fn slash24_units(&self) -> u64 {
        self.num_addresses()
    }

    /// Size in /24 equivalents as a float (`/24` → 1.0, `/8` → 65536.0,
    /// `/32` → 1/256).
    pub fn slash24_equivalents(&self) -> f64 {
        self.slash24_units() as f64 / crate::UNITS_PER_SLASH24 as f64
    }
}

/// Netmask for a prefix length (`mask(8)` → `0xFF00_0000`, `mask(0)` → 0).
#[inline]
fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.bits), self.len)
    }
}

impl FromStr for Ipv4Prefix {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::BadPrefix(s.to_owned()))?;
        let bits = parse_addr(addr).map_err(|_| NetError::BadPrefix(s.to_owned()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| NetError::BadPrefix(s.to_owned()))?;
        if len > 32 {
            return Err(NetError::BadPrefixLen(len as u32));
        }
        Ipv4Prefix::new(bits, len).map_err(|_| NetError::BadPrefix(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "203.0.113.7/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn rejects_noncanonical_and_garbage() {
        assert!("10.0.0.1/8".parse::<Ipv4Prefix>().is_err(), "host bits set");
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/".parse::<Ipv4Prefix>().is_err());
        assert!("/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/-1".parse::<Ipv4Prefix>().is_err());
    }

    #[test]
    fn truncating_masks_host_bits() {
        let q = Ipv4Prefix::new_truncating(0x0A01_0203, 8);
        assert_eq!(q, p("10.0.0.0/8"));
    }

    #[test]
    fn containment() {
        let eight = p("10.0.0.0/8");
        assert!(eight.contains(0x0A00_0000));
        assert!(eight.contains(0x0AFF_FFFF));
        assert!(!eight.contains(0x0B00_0000));
        assert!(Ipv4Prefix::DEFAULT.contains(0));
        assert!(Ipv4Prefix::DEFAULT.contains(u32::MAX));
    }

    #[test]
    fn covers_and_overlaps() {
        let eight = p("10.0.0.0/8");
        let sixteen = p("10.1.0.0/16");
        let other = p("11.0.0.0/8");
        assert!(eight.covers(&sixteen));
        assert!(!sixteen.covers(&eight));
        assert!(eight.covers(&eight));
        assert!(eight.overlaps(&sixteen));
        assert!(sixteen.overlaps(&eight));
        assert!(!eight.overlaps(&other));
    }

    #[test]
    fn family_navigation() {
        let sixteen = p("10.1.0.0/16");
        assert_eq!(sixteen.supernet().unwrap(), p("10.0.0.0/15"));
        let (l, r) = sixteen.children().unwrap();
        assert_eq!(l, p("10.1.0.0/17"));
        assert_eq!(r, p("10.1.128.0/17"));
        assert!(Ipv4Prefix::DEFAULT.supernet().is_none());
        assert!(p("1.2.3.4/32").children().is_none());
    }

    #[test]
    fn first_last_count() {
        let q = p("192.0.2.0/24");
        assert_eq!(q.first(), 0xC000_0200);
        assert_eq!(q.last(), 0xC000_02FF);
        assert_eq!(q.num_addresses(), 256);
        assert_eq!(Ipv4Prefix::DEFAULT.num_addresses(), 1u64 << 32);
    }

    #[test]
    fn slash24_equivalents() {
        assert_eq!(p("10.0.0.0/24").slash24_equivalents(), 1.0);
        assert_eq!(p("10.0.0.0/8").slash24_equivalents(), 65536.0);
        assert_eq!(p("10.0.0.0/16").slash24_equivalents(), 256.0);
        assert_eq!(Ipv4Prefix::host(1).slash24_equivalents(), 1.0 / 256.0);
    }

    #[test]
    fn bit_extraction() {
        let q = p("128.0.0.0/1");
        assert!(q.bit(0));
        let q = p("64.0.0.0/2");
        assert!(!q.bit(0));
        assert!(q.bit(1));
    }
}
