//! Error type shared by the parsing routines in this crate.

use std::fmt;

/// Errors produced when parsing addresses, prefixes, or ASNs from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The textual IPv4 address was malformed.
    BadAddress(String),
    /// The textual CIDR prefix was malformed (bad address, missing `/`,
    /// or prefix length outside `0..=32`).
    BadPrefix(String),
    /// The prefix length was outside `0..=32`.
    BadPrefixLen(u32),
    /// The textual ASN was malformed.
    BadAsn(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadAddress(s) => write!(f, "malformed IPv4 address: {s:?}"),
            NetError::BadPrefix(s) => write!(f, "malformed IPv4 prefix: {s:?}"),
            NetError::BadPrefixLen(l) => write!(f, "prefix length out of range: /{l}"),
            NetError::BadAsn(s) => write!(f, "malformed ASN: {s:?}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::BadPrefix("10.0.0.0/33".into());
        assert!(e.to_string().contains("10.0.0.0/33"));
        let e = NetError::BadPrefixLen(40);
        assert!(e.to_string().contains("/40"));
    }
}
