//! Announcement hygiene, as applied by the paper before building tables.
//!
//! §3.3: "We disregard announcements for prefixes more specific than /24
//! and less specific than /8" — the latter usually indicates
//! misconfiguration (RFC 7454). We additionally drop paths with loops or
//! reserved ASNs, which real collectors see regularly and which would
//! poison the AS graph.

use crate::Announcement;
use serde::Serialize;

/// Why an announcement was dropped, with counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FilterStats {
    /// Accepted announcements.
    pub accepted: u64,
    /// Prefix more specific than the maximum length (default /24).
    pub too_specific: u64,
    /// Prefix less specific than the minimum length (default /8).
    pub too_coarse: u64,
    /// AS path contained a loop.
    pub path_loop: u64,
    /// AS path contained a reserved/private ASN.
    pub reserved_asn: u64,
    /// Empty AS path.
    pub empty_path: u64,
}

impl FilterStats {
    /// Total number of announcements inspected.
    pub fn total(&self) -> u64 {
        self.accepted
            + self.too_specific
            + self.too_coarse
            + self.path_loop
            + self.reserved_asn
            + self.empty_path
    }

    /// Total dropped.
    pub fn dropped(&self) -> u64 {
        self.total() - self.accepted
    }
}

/// The configurable sanity filter.
#[derive(Debug, Clone)]
pub struct SanityFilter {
    /// Minimum acceptable prefix length (paper: 8).
    pub min_len: u8,
    /// Maximum acceptable prefix length (paper: 24).
    pub max_len: u8,
    /// Running statistics.
    pub stats: FilterStats,
}

impl Default for SanityFilter {
    fn default() -> Self {
        SanityFilter {
            min_len: 8,
            max_len: 24,
            stats: FilterStats::default(),
        }
    }
}

impl SanityFilter {
    /// A filter with the paper's /8../24 bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check one announcement, updating counters. Returns `true` if it
    /// should be kept.
    pub fn accept(&mut self, a: &Announcement) -> bool {
        if a.prefix.len() > self.max_len {
            self.stats.too_specific += 1;
            return false;
        }
        if a.prefix.len() < self.min_len {
            self.stats.too_coarse += 1;
            return false;
        }
        if a.path.is_empty() {
            self.stats.empty_path += 1;
            return false;
        }
        if a.path.has_loop() {
            self.stats.path_loop += 1;
            return false;
        }
        if a.path.has_reserved_asn() {
            self.stats.reserved_asn += 1;
            return false;
        }
        self.stats.accepted += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsPath;

    fn ann(prefix: &str, path: &[u32]) -> Announcement {
        Announcement::new(prefix.parse().unwrap(), AsPath::from(path.to_vec()))
    }

    #[test]
    fn accepts_normal() {
        let mut f = SanityFilter::new();
        assert!(f.accept(&ann("10.0.0.0/8", &[1, 2])));
        assert!(f.accept(&ann("192.0.2.0/24", &[1, 2, 2, 3])));
        assert_eq!(f.stats.accepted, 2);
        assert_eq!(f.stats.dropped(), 0);
    }

    #[test]
    fn drops_length_violations() {
        let mut f = SanityFilter::new();
        assert!(!f.accept(&ann("192.0.2.0/25", &[1])));
        assert!(!f.accept(&ann("192.0.2.128/32", &[1])));
        assert!(!f.accept(&ann("0.0.0.0/0", &[1])));
        assert!(!f.accept(&ann("16.0.0.0/7", &[1])));
        assert_eq!(f.stats.too_specific, 2);
        assert_eq!(f.stats.too_coarse, 2);
    }

    #[test]
    fn drops_poisoned_paths() {
        let mut f = SanityFilter::new();
        assert!(!f.accept(&ann("10.0.0.0/8", &[1, 2, 1])));
        assert!(!f.accept(&ann("10.0.0.0/8", &[1, 64512])));
        assert!(!f.accept(&ann("10.0.0.0/8", &[])));
        assert_eq!(f.stats.path_loop, 1);
        assert_eq!(f.stats.reserved_asn, 1);
        assert_eq!(f.stats.empty_path, 1);
        assert_eq!(f.stats.total(), 3);
    }

    #[test]
    fn prepending_passes() {
        let mut f = SanityFilter::new();
        assert!(f.accept(&ann("10.0.0.0/8", &[1, 2, 2, 2, 3])));
    }
}
