//! Route collectors: partial views of the global routing system.

use crate::{Announcement, Rib, Update};
use spoofwatch_net::Asn;

/// A route collector in the style of RIPE RIS / RouteViews: it maintains
/// BGP sessions with a set of *peer* ASes and records everything they
/// send. Its view of the Internet is only as complete as its peer set —
/// the root cause of the missing-link false positives the paper hunts in
/// §4.4.
#[derive(Debug, Clone)]
pub struct RouteCollector {
    /// Collector name (e.g. "rrc00", "route-views2", "ixp-route-server").
    pub name: String,
    /// The ASes this collector has sessions with.
    pub peers: Vec<Asn>,
    /// Current routing table.
    pub rib: Rib,
    /// Updates recorded since the last snapshot (the "update files").
    pub update_log: Vec<Update>,
}

impl RouteCollector {
    /// A collector with the given peer sessions.
    pub fn new(name: impl Into<String>, peers: Vec<Asn>) -> Self {
        RouteCollector {
            name: name.into(),
            peers,
            rib: Rib::new(),
            update_log: Vec::new(),
        }
    }

    /// Whether the collector has a session with `asn`.
    pub fn has_peer(&self, asn: Asn) -> bool {
        self.peers.contains(&asn)
    }

    /// Receive one update; messages from non-peers are ignored (they
    /// could never reach this collector).
    pub fn receive(&mut self, update: Update) {
        if !self.has_peer(update.peer()) {
            return;
        }
        self.rib.apply(&update);
        self.update_log.push(update);
    }

    /// Receive a peer's full table (as if the session just came up).
    pub fn receive_table(&mut self, peer: Asn, announcements: &[Announcement]) {
        if !self.has_peer(peer) {
            return;
        }
        for a in announcements {
            self.rib.insert(peer, a);
        }
    }

    /// Produce a table snapshot: every (peer, announcement) currently in
    /// the RIB. Mirrors the 8-hourly (RIPE) / 2-hourly (RouteViews) table
    /// dumps the paper ingests; combined with [`Self::drain_updates`] a
    /// consumer sees exactly what the paper's pipeline sees.
    pub fn snapshot(&self) -> Vec<(Asn, Announcement)> {
        self.rib
            .iter()
            .map(|(prefix, peer, path)| (peer, Announcement::new(prefix, path.clone())))
            .collect()
    }

    /// Take the accumulated update log (the "updates file" since the last
    /// dump).
    pub fn drain_updates(&mut self) -> Vec<Update> {
        std::mem::take(&mut self.update_log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsPath;

    fn ann(prefix: &str, path: &[u32]) -> Announcement {
        Announcement::new(prefix.parse().unwrap(), AsPath::from(path.to_vec()))
    }

    #[test]
    fn ignores_non_peers() {
        let mut c = RouteCollector::new("rrc00", vec![Asn(1), Asn(2)]);
        c.receive(Update::Announce {
            ts: 0,
            peer: Asn(99),
            announcement: ann("10.0.0.0/8", &[99, 3]),
        });
        assert_eq!(c.rib.num_routes(), 0);
        assert!(c.update_log.is_empty());
        c.receive_table(Asn(99), &[ann("10.0.0.0/8", &[99, 3])]);
        assert_eq!(c.rib.num_routes(), 0);
    }

    #[test]
    fn snapshot_reflects_rib() {
        let mut c = RouteCollector::new("rrc00", vec![Asn(1), Asn(2)]);
        c.receive_table(Asn(1), &[ann("10.0.0.0/8", &[1, 3]), ann("192.0.2.0/24", &[1, 9])]);
        c.receive(Update::Announce {
            ts: 5,
            peer: Asn(2),
            announcement: ann("10.0.0.0/8", &[2, 3]),
        });
        let snap = c.snapshot();
        assert_eq!(snap.len(), 3);
        c.receive(Update::Withdraw {
            ts: 6,
            peer: Asn(1),
            prefix: "192.0.2.0/24".parse().unwrap(),
        });
        assert_eq!(c.snapshot().len(), 2);
    }

    #[test]
    fn update_log_drains() {
        let mut c = RouteCollector::new("rrc00", vec![Asn(1)]);
        c.receive(Update::Announce {
            ts: 0,
            peer: Asn(1),
            announcement: ann("10.0.0.0/8", &[1, 3]),
        });
        assert_eq!(c.drain_updates().len(), 1);
        assert!(c.drain_updates().is_empty());
        // RIB state survives the drain.
        assert_eq!(c.rib.num_routes(), 1);
    }
}
