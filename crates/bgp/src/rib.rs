//! A routing information base keyed by (prefix, peer).

use crate::{Announcement, AsPath, Update};
use spoofwatch_net::{Asn, Ipv4Prefix};
use std::collections::BTreeMap;

/// A collector-style RIB: for every prefix, the current route from each
/// peer that has one. An `Announce` replaces the peer's previous route for
/// the prefix (implicit withdrawal, as in BGP); a `Withdraw` removes it.
#[derive(Debug, Clone, Default)]
pub struct Rib {
    routes: BTreeMap<Ipv4Prefix, BTreeMap<Asn, AsPath>>,
}

impl Rib {
    /// An empty RIB.
    pub fn new() -> Self {
        Rib::default()
    }

    /// Apply one update message.
    pub fn apply(&mut self, update: &Update) {
        match update {
            Update::Announce {
                peer, announcement, ..
            } => {
                self.routes
                    .entry(announcement.prefix)
                    .or_default()
                    .insert(*peer, announcement.path.clone());
            }
            Update::Withdraw { peer, prefix, .. } => {
                if let Some(peers) = self.routes.get_mut(prefix) {
                    peers.remove(peer);
                    if peers.is_empty() {
                        self.routes.remove(prefix);
                    }
                }
            }
        }
    }

    /// Insert a route directly (table-dump ingestion).
    pub fn insert(&mut self, peer: Asn, announcement: &Announcement) {
        self.routes
            .entry(announcement.prefix)
            .or_default()
            .insert(peer, announcement.path.clone());
    }

    /// Number of prefixes with at least one route.
    pub fn num_prefixes(&self) -> usize {
        self.routes.len()
    }

    /// Total number of (prefix, peer) routes.
    pub fn num_routes(&self) -> usize {
        self.routes.values().map(|m| m.len()).sum()
    }

    /// All current routes for a prefix, keyed by peer.
    pub fn routes_for(&self, prefix: &Ipv4Prefix) -> Option<&BTreeMap<Asn, AsPath>> {
        self.routes.get(prefix)
    }

    /// Deterministic best path for a prefix: shortest effective length,
    /// ties broken by lowest peer ASN (stand-in for the full decision
    /// process, which needs per-session attributes we do not model).
    pub fn best_path(&self, prefix: &Ipv4Prefix) -> Option<(&Asn, &AsPath)> {
        self.routes.get(prefix)?.iter().min_by_key(|(peer, path)| {
            (path.effective_len(), peer.0)
        })
    }

    /// Iterate all (prefix, peer, path) routes.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, Asn, &AsPath)> {
        self.routes
            .iter()
            .flat_map(|(p, peers)| peers.iter().map(move |(peer, path)| (*p, *peer, path)))
    }

    /// Iterate prefixes currently routed.
    pub fn prefixes(&self) -> impl Iterator<Item = Ipv4Prefix> + '_ {
        self.routes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(prefix: &str, path: &[u32]) -> Announcement {
        Announcement::new(prefix.parse().unwrap(), AsPath::from(path.to_vec()))
    }

    fn announce(peer: u32, prefix: &str, path: &[u32]) -> Update {
        Update::Announce {
            ts: 0,
            peer: Asn(peer),
            announcement: ann(prefix, path),
        }
    }

    fn withdraw(peer: u32, prefix: &str) -> Update {
        Update::Withdraw {
            ts: 0,
            peer: Asn(peer),
            prefix: prefix.parse().unwrap(),
        }
    }

    #[test]
    fn announce_replaces_per_peer() {
        let mut rib = Rib::new();
        rib.apply(&announce(1, "10.0.0.0/8", &[1, 3]));
        rib.apply(&announce(1, "10.0.0.0/8", &[1, 2, 3]));
        rib.apply(&announce(2, "10.0.0.0/8", &[2, 3]));
        assert_eq!(rib.num_prefixes(), 1);
        assert_eq!(rib.num_routes(), 2);
        let routes = rib.routes_for(&"10.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(routes[&Asn(1)].hops().len(), 3, "implicit withdrawal");
    }

    #[test]
    fn withdraw_removes_and_cleans_up() {
        let mut rib = Rib::new();
        rib.apply(&announce(1, "10.0.0.0/8", &[1, 3]));
        rib.apply(&withdraw(1, "10.0.0.0/8"));
        assert_eq!(rib.num_prefixes(), 0);
        // Withdrawing a route we never had is a no-op.
        rib.apply(&withdraw(2, "11.0.0.0/8"));
        assert_eq!(rib.num_prefixes(), 0);
    }

    #[test]
    fn best_path_prefers_short_effective() {
        let mut rib = Rib::new();
        // Peer 1's path is longer in hops but shorter after prepending
        // collapse.
        rib.apply(&announce(1, "10.0.0.0/8", &[1, 3, 3, 3]));
        rib.apply(&announce(2, "10.0.0.0/8", &[2, 5, 3]));
        let (peer, _) = rib.best_path(&"10.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(*peer, Asn(1));
    }

    #[test]
    fn best_path_tie_breaks_on_peer() {
        let mut rib = Rib::new();
        rib.apply(&announce(7, "10.0.0.0/8", &[7, 3]));
        rib.apply(&announce(2, "10.0.0.0/8", &[2, 3]));
        let (peer, _) = rib.best_path(&"10.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(*peer, Asn(2));
    }

    #[test]
    fn iteration_covers_everything() {
        let mut rib = Rib::new();
        rib.apply(&announce(1, "10.0.0.0/8", &[1, 3]));
        rib.apply(&announce(2, "10.0.0.0/8", &[2, 3]));
        rib.apply(&announce(1, "192.0.2.0/24", &[1, 9]));
        assert_eq!(rib.iter().count(), 3);
        assert_eq!(rib.prefixes().count(), 2);
    }
}
