//! Route announcements, withdrawals, and the update stream.

use crate::AsPath;
use serde::{Deserialize, Serialize};
use spoofwatch_net::{Asn, Ipv4Prefix};

/// A route announcement: "reach `prefix` via `path`".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Ipv4Prefix,
    /// The AS path, nearest first.
    pub path: AsPath,
}

impl Announcement {
    /// Convenience constructor.
    pub fn new(prefix: Ipv4Prefix, path: AsPath) -> Self {
        Announcement { prefix, path }
    }

    /// The origin AS of the announcement.
    pub fn origin(&self) -> Option<Asn> {
        self.path.origin()
    }
}

/// One message of an update stream as a collector records it: who sent it
/// (the collector's peer), when, and what changed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Update {
    /// The peer announced (or re-announced, implicitly replacing) a route.
    Announce {
        /// Seconds since the start of the measurement window.
        ts: u64,
        /// The collector peer that sent the update.
        peer: Asn,
        /// The announcement itself.
        announcement: Announcement,
    },
    /// The peer withdrew its route for the prefix.
    Withdraw {
        /// Seconds since the start of the measurement window.
        ts: u64,
        /// The collector peer that sent the update.
        peer: Asn,
        /// The withdrawn prefix.
        prefix: Ipv4Prefix,
    },
}

impl Update {
    /// The message timestamp.
    pub fn ts(&self) -> u64 {
        match self {
            Update::Announce { ts, .. } | Update::Withdraw { ts, .. } => *ts,
        }
    }

    /// The collector peer that sent the message.
    pub fn peer(&self) -> Asn {
        match self {
            Update::Announce { peer, .. } | Update::Withdraw { peer, .. } => *peer,
        }
    }

    /// The affected prefix.
    pub fn prefix(&self) -> Ipv4Prefix {
        match self {
            Update::Announce { announcement, .. } => announcement.prefix,
            Update::Withdraw { prefix, .. } => *prefix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = Announcement::new(
            "10.0.0.0/8".parse().unwrap(),
            AsPath::from(vec![1, 2, 3]),
        );
        assert_eq!(a.origin(), Some(Asn(3)));

        let up = Update::Announce {
            ts: 42,
            peer: Asn(1),
            announcement: a.clone(),
        };
        assert_eq!(up.ts(), 42);
        assert_eq!(up.peer(), Asn(1));
        assert_eq!(up.prefix(), a.prefix);

        let wd = Update::Withdraw {
            ts: 43,
            peer: Asn(1),
            prefix: a.prefix,
        };
        assert_eq!(wd.ts(), 43);
        assert_eq!(wd.prefix(), a.prefix);
    }
}
