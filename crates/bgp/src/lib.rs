//! # spoofwatch-bgp
//!
//! The BGP substrate: everything the classifier needs to learn from
//! routing data, modelled after how the paper consumes RIPE RIS and
//! RouteViews feeds (§3.3):
//!
//! * [`AsPath`] — AS paths with prepending, loop detection, and adjacency
//!   extraction;
//! * [`Announcement`] / [`Update`] — route announcements and withdrawals;
//! * [`Rib`] — a per-peer routing information base with deterministic
//!   best-path selection;
//! * [`RouteCollector`] — a collector peering with a subset of ASes,
//!   producing table snapshots and update streams (the paper uses 34
//!   collectors plus an IXP route server; partial visibility is what
//!   creates the false-positive phenomenology of §4.4);
//! * [`SanityFilter`] — the paper's announcement hygiene: prefixes more
//!   specific than /24 or less specific than /8 are disregarded, as are
//!   paths with loops or reserved ASNs;
//! * [`RoutedTable`] — the merged multi-collector view: routed prefixes
//!   with their origin ASes (MOAS-aware) and on-path AS sets (the Naive
//!   method's raw material), plus the directed AS adjacency list (the
//!   Full Cone's raw material);
//! * [`mrt`] — a compact binary codec ("MRT-lite") for persisting and
//!   replaying collector data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Decode hot paths must surface faults through the ingest taxonomy, not
// panic; tests are exempt via cfg.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod announce;
mod collector;
mod filter;
pub mod mrt;
mod path;
mod rib;
mod table;

pub use announce::{Announcement, Update};
pub use collector::RouteCollector;
pub use filter::{FilterStats, SanityFilter};
pub use path::AsPath;
pub use rib::Rib;
pub use table::{RouteInfo, RoutedTable};
