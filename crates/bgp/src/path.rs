//! AS paths.

use serde::{Deserialize, Serialize};
use spoofwatch_net::Asn;
use std::fmt;

/// An AS path as carried in a BGP announcement: the sequence of ASes the
/// announcement traversed, *nearest first* — `path[0]` is the neighbor
/// that sent us the route and the last element is the origin AS.
///
/// Prepending (an AS repeating itself consecutively for traffic
/// engineering) is legal and preserved; the adjacency and validity
/// helpers collapse it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsPath(Vec<Asn>);

impl AsPath {
    /// Build from a nearest-first sequence.
    pub fn new(hops: Vec<Asn>) -> Self {
        AsPath(hops)
    }

    /// The empty path (only valid transiently, e.g. while originating).
    pub fn empty() -> Self {
        AsPath(Vec::new())
    }

    /// The hops, nearest first.
    pub fn hops(&self) -> &[Asn] {
        &self.0
    }

    /// Number of hops including prepending.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The origin AS (rightmost), if any.
    pub fn origin(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The AS the route was learned from (leftmost), if any.
    pub fn head(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// Whether `asn` appears anywhere on the path — the Naive method's
    /// membership test.
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// Path length with consecutive prepending collapsed — the metric for
    /// best-path selection.
    pub fn effective_len(&self) -> usize {
        self.dedup_hops().count()
    }

    /// Prepend an AS `count` times (as done when an AS propagates the
    /// route onward).
    pub fn prepend(&self, asn: Asn, count: usize) -> AsPath {
        let mut hops = Vec::with_capacity(self.0.len() + count);
        hops.extend(std::iter::repeat_n(asn, count));
        hops.extend_from_slice(&self.0);
        AsPath(hops)
    }

    /// Iterate hops with consecutive duplicates (prepending) collapsed.
    pub fn dedup_hops(&self) -> impl Iterator<Item = Asn> + '_ {
        let mut prev: Option<Asn> = None;
        self.0.iter().copied().filter(move |a| {
            let fresh = prev != Some(*a);
            prev = Some(*a);
            fresh
        })
    }

    /// Directed adjacency pairs `(left, right)` where `left` is upstream
    /// of `right` — the edges of the Full Cone graph (§3.2). Prepending is
    /// collapsed so no self-edges are produced by it.
    pub fn adjacencies(&self) -> Vec<(Asn, Asn)> {
        let hops: Vec<Asn> = self.dedup_hops().collect();
        hops.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// A path is loop-free iff no AS appears in two non-adjacent
    /// positions (consecutive repeats are prepending, not loops).
    pub fn has_loop(&self) -> bool {
        let hops: Vec<Asn> = self.dedup_hops().collect();
        let mut seen = std::collections::HashSet::with_capacity(hops.len());
        hops.iter().any(|a| !seen.insert(*a))
    }

    /// Whether any hop is a reserved/private ASN, which should have been
    /// stripped before reaching the global table.
    pub fn has_reserved_asn(&self) -> bool {
        self.0.iter().any(|a| a.is_reserved())
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.0 {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{}", a.0)?;
            first = false;
        }
        Ok(())
    }
}

impl From<Vec<u32>> for AsPath {
    fn from(v: Vec<u32>) -> Self {
        AsPath(v.into_iter().map(Asn).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(v: &[u32]) -> AsPath {
        AsPath::from(v.to_vec())
    }

    #[test]
    fn origin_and_head() {
        let p = path(&[100, 200, 300]);
        assert_eq!(p.head(), Some(Asn(100)));
        assert_eq!(p.origin(), Some(Asn(300)));
        assert!(AsPath::empty().origin().is_none());
    }

    #[test]
    fn prepending_is_not_a_loop() {
        let p = path(&[100, 200, 200, 200, 300]);
        assert!(!p.has_loop());
        assert_eq!(p.effective_len(), 3);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn real_loops_detected() {
        assert!(path(&[100, 200, 100]).has_loop());
        assert!(path(&[100, 200, 300, 200]).has_loop());
        assert!(!path(&[100, 200, 300]).has_loop());
    }

    #[test]
    fn adjacencies_collapse_prepending() {
        let p = path(&[100, 200, 200, 300]);
        assert_eq!(
            p.adjacencies(),
            vec![(Asn(100), Asn(200)), (Asn(200), Asn(300))]
        );
        assert!(path(&[100]).adjacencies().is_empty());
    }

    #[test]
    fn prepend_builds_propagation() {
        let p = path(&[300]); // origin announces
        let q = p.prepend(Asn(200), 1).prepend(Asn(100), 2);
        assert_eq!(q.hops(), &[Asn(100), Asn(100), Asn(200), Asn(300)]);
        assert_eq!(q.origin(), Some(Asn(300)));
    }

    #[test]
    fn reserved_asn_detection() {
        assert!(path(&[100, 64512, 300]).has_reserved_asn());
        assert!(path(&[100, 23456]).has_reserved_asn());
        assert!(!path(&[100, 200]).has_reserved_asn());
    }

    #[test]
    fn display() {
        assert_eq!(path(&[1, 2, 3]).to_string(), "1 2 3");
    }
}
