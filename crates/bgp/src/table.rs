//! The merged multi-collector view of the routed Internet.

use crate::{Announcement, SanityFilter};
use spoofwatch_net::{Asn, Ipv4Prefix};
use spoofwatch_trie::PrefixTrie;
use std::collections::{BTreeSet, HashSet};

/// Per-prefix routing knowledge accumulated across all collectors and all
/// snapshots/updates of the measurement window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteInfo {
    /// Origin ASes observed for this prefix (usually one; more indicates
    /// MOAS — multiple-origin AS — announcements).
    pub origins: Vec<Asn>,
    /// Every AS observed on any AS path of any announcement of this
    /// prefix — the Naive method's valid-source set (§3.2).
    pub on_path: Vec<Asn>,
}

impl RouteInfo {
    fn add_origin(&mut self, asn: Asn) {
        if let Err(pos) = self.origins.binary_search(&asn) {
            self.origins.insert(pos, asn);
        }
    }

    fn add_on_path(&mut self, asn: Asn) {
        if let Err(pos) = self.on_path.binary_search(&asn) {
            self.on_path.insert(pos, asn);
        }
    }

    /// Whether `asn` originated this prefix in some announcement.
    pub fn has_origin(&self, asn: Asn) -> bool {
        self.origins.binary_search(&asn).is_ok()
    }

    /// Whether `asn` appeared on any path of this prefix.
    pub fn has_on_path(&self, asn: Asn) -> bool {
        self.on_path.binary_search(&asn).is_ok()
    }
}

/// The global routed table: the union of everything every collector saw
/// during the window, after sanity filtering. "Routed" in the paper's
/// sense — an address not covered here is *unrouted*.
#[derive(Debug, Clone)]
pub struct RoutedTable {
    trie: PrefixTrie<RouteInfo>,
    edges: HashSet<(Asn, Asn)>,
    ases: BTreeSet<Asn>,
    /// Filter statistics from ingestion.
    pub filter_stats: crate::FilterStats,
}

impl RoutedTable {
    /// Build from an announcement stream (table dumps and updates from
    /// all collectors; withdrawals are irrelevant because the paper
    /// accumulates every announcement seen in the window to get an
    /// as-complete-as-possible picture).
    pub fn build<'a, I: IntoIterator<Item = &'a Announcement>>(announcements: I) -> Self {
        let mut filter = SanityFilter::new();
        let mut trie: PrefixTrie<RouteInfo> = PrefixTrie::new();
        let mut edges = HashSet::new();
        let mut ases = BTreeSet::new();
        for a in announcements {
            if !filter.accept(a) {
                continue;
            }
            let origin = a.path.origin().expect("filter rejects empty paths");
            if trie.get(&a.prefix).is_none() {
                trie.insert(a.prefix, RouteInfo::default());
            }
            let info = trie.get_mut(&a.prefix).expect("just inserted");
            info.add_origin(origin);
            for hop in a.path.dedup_hops() {
                info.add_on_path(hop);
                ases.insert(hop);
            }
            for edge in a.path.adjacencies() {
                edges.insert(edge);
            }
        }
        RoutedTable {
            trie,
            edges,
            ases,
            filter_stats: filter.stats,
        }
    }

    /// Longest-prefix match against the routed table.
    pub fn lookup(&self, addr: u32) -> Option<(Ipv4Prefix, &RouteInfo)> {
        self.trie.lookup(addr)
    }

    /// Whether any routed prefix covers the address.
    pub fn is_routed(&self, addr: u32) -> bool {
        self.trie.lookup(addr).is_some()
    }

    /// Routing info for an exact prefix.
    pub fn info(&self, prefix: &Ipv4Prefix) -> Option<&RouteInfo> {
        self.trie.get(prefix)
    }

    /// Number of routed prefixes.
    pub fn num_prefixes(&self) -> usize {
        self.trie.len()
    }

    /// Routed address space in /24 equivalents (union, no double count).
    pub fn routed_slash24(&self) -> f64 {
        self.trie.covered_units() as f64 / spoofwatch_net::UNITS_PER_SLASH24 as f64
    }

    /// Iterate `(prefix, info)` in ascending prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &RouteInfo)> {
        self.trie.iter()
    }

    /// The directed AS adjacency set: `(left, right)` for every adjacent
    /// pair on every observed path, left upstream of right. Input to the
    /// Full Cone computation.
    pub fn edges(&self) -> &HashSet<(Asn, Asn)> {
        &self.edges
    }

    /// Every AS observed on any path.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.ases.iter().copied()
    }

    /// Number of distinct ASes observed.
    pub fn num_ases(&self) -> usize {
        self.ases.len()
    }

    /// The origin ASes of all routed prefixes, with the /24-equivalent
    /// units each originates (used to size per-AS valid space).
    pub fn origin_units(&self) -> std::collections::HashMap<Asn, u64> {
        let mut map = std::collections::HashMap::new();
        // Nested prefixes with different origins both count toward their
        // origins — the paper's valid-space unions behave the same way
        // because a covering prefix legitimizes the space either way.
        for (prefix, info) in self.iter() {
            for o in &info.origins {
                *map.entry(*o).or_insert(0) += prefix.slash24_units();
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsPath;

    fn ann(prefix: &str, path: &[u32]) -> Announcement {
        Announcement::new(prefix.parse().unwrap(), AsPath::from(path.to_vec()))
    }

    fn table(anns: &[Announcement]) -> RoutedTable {
        RoutedTable::build(anns.iter())
    }

    #[test]
    fn accumulates_origins_and_paths() {
        let t = table(&[
            ann("10.0.0.0/8", &[1, 2, 3]),
            ann("10.0.0.0/8", &[4, 5, 3]),
            ann("192.0.2.0/24", &[1, 9]),
        ]);
        assert_eq!(t.num_prefixes(), 2);
        let info = t.info(&"10.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(info.origins, vec![Asn(3)]);
        assert_eq!(info.on_path, vec![Asn(1), Asn(2), Asn(3), Asn(4), Asn(5)]);
        assert!(info.has_on_path(Asn(4)));
        assert!(!info.has_on_path(Asn(9)));
    }

    #[test]
    fn moas_keeps_all_origins() {
        let t = table(&[
            ann("10.0.0.0/8", &[1, 3]),
            ann("10.0.0.0/8", &[1, 7]),
        ]);
        let info = t.info(&"10.0.0.0/8".parse().unwrap()).unwrap();
        assert_eq!(info.origins, vec![Asn(3), Asn(7)]);
        assert!(info.has_origin(Asn(3)));
        assert!(info.has_origin(Asn(7)));
    }

    #[test]
    fn lpm_and_routedness() {
        let t = table(&[ann("10.0.0.0/8", &[1, 3]), ann("10.1.0.0/16", &[1, 4])]);
        let (p, info) = t.lookup(0x0A01_0001).unwrap();
        assert_eq!(p, "10.1.0.0/16".parse().unwrap());
        assert_eq!(info.origins, vec![Asn(4)]);
        assert!(t.is_routed(0x0A02_0001));
        assert!(!t.is_routed(0x0B00_0001));
    }

    #[test]
    fn edges_are_directed_and_deduped() {
        let t = table(&[
            ann("10.0.0.0/8", &[1, 2, 3]),
            ann("11.0.0.0/8", &[1, 2, 4]),
        ]);
        assert!(t.edges().contains(&(Asn(1), Asn(2))));
        assert!(t.edges().contains(&(Asn(2), Asn(3))));
        assert!(!t.edges().contains(&(Asn(2), Asn(1))), "directed");
        assert_eq!(t.edges().len(), 3);
        assert_eq!(t.num_ases(), 4);
    }

    #[test]
    fn sanity_filter_applies() {
        let t = table(&[
            ann("10.0.0.0/8", &[1, 3]),
            ann("192.0.2.0/25", &[1, 3]), // too specific
            ann("11.0.0.0/8", &[1, 2, 1]), // loop
        ]);
        assert_eq!(t.num_prefixes(), 1);
        assert_eq!(t.filter_stats.accepted, 1);
        assert_eq!(t.filter_stats.too_specific, 1);
        assert_eq!(t.filter_stats.path_loop, 1);
    }

    #[test]
    fn routed_space_accounting() {
        let t = table(&[
            ann("10.0.0.0/8", &[1, 3]),
            ann("10.1.0.0/16", &[1, 4]), // nested, no extra space
            ann("192.0.2.0/24", &[1, 9]),
        ]);
        assert_eq!(t.routed_slash24(), 65536.0 + 1.0);
        let units = t.origin_units();
        assert_eq!(units[&Asn(3)], 1u64 << 24);
        assert_eq!(units[&Asn(4)], 1u64 << 16);
        assert_eq!(units[&Asn(9)], 256);
    }
}
