//! "MRT-lite": a compact binary format for persisting and replaying
//! collector data, in the spirit of the MRT dumps RIPE RIS and RouteViews
//! publish (RFC 6396), reduced to the fields this system consumes.
//!
//! Layout (all integers big-endian):
//!
//! ```text
//! file   := magic "MRTL" | version u16 | record*
//! record := body_len u32 | body
//! body   := type u8 | ts u64 | peer u32 | prefix(bits u32, len u8) | path?
//! path   := hop_count u16 | hop u32 *     (announce records only)
//! ```
//!
//! The reader validates framing, record types, prefix canonicality, and
//! declared-vs-actual body lengths; truncated or corrupt input yields an
//! error, never a panic or a phantom record.

use crate::{Announcement, AsPath, Update};
use bytes::{Buf, BufMut};
use spoofwatch_net::{Asn, FaultKind, IngestHealth, Ipv4Prefix};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"MRTL";
const VERSION: u16 = 1;
const TYPE_ANNOUNCE: u8 = 1;
const TYPE_WITHDRAW: u8 = 2;
/// Upper bound on hops: real paths rarely exceed ~30; anything beyond
/// this is corrupt data.
const MAX_HOPS: usize = 1024;
/// Upper bound on a record body (type + ts + peer + prefix + max path).
const MAX_BODY: usize = 1 + 8 + 4 + 5 + 2 + MAX_HOPS * 4;

/// MRT-lite decode errors.
#[derive(Debug)]
pub enum MrtError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Unknown record type byte.
    BadRecordType(u8),
    /// A declared length is impossible or the stream ended mid-record.
    Truncated,
    /// Prefix had host bits set or an impossible length.
    BadPrefix,
    /// Hop count exceeded the sanity bound (1024) or disagreed with the
    /// body length.
    BadPath,
}

impl fmt::Display for MrtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrtError::Io(e) => write!(f, "MRT-lite I/O error: {e}"),
            MrtError::BadMagic => f.write_str("MRT-lite: bad magic"),
            MrtError::BadVersion(v) => write!(f, "MRT-lite: unsupported version {v}"),
            MrtError::BadRecordType(t) => write!(f, "MRT-lite: unknown record type {t}"),
            MrtError::Truncated => f.write_str("MRT-lite: truncated record"),
            MrtError::BadPrefix => f.write_str("MRT-lite: malformed prefix"),
            MrtError::BadPath => f.write_str("MRT-lite: malformed AS path"),
        }
    }
}

impl std::error::Error for MrtError {}

impl From<io::Error> for MrtError {
    fn from(e: io::Error) -> Self {
        MrtError::Io(e)
    }
}

/// Streaming writer.
pub struct MrtWriter<W: Write> {
    inner: W,
}

impl<W: Write> MrtWriter<W> {
    /// Write the file header and return the writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(MAGIC)?;
        inner.write_all(&VERSION.to_be_bytes())?;
        Ok(MrtWriter { inner })
    }

    /// Append one update record.
    pub fn write_update(&mut self, update: &Update) -> io::Result<()> {
        let body = encode_body(update);
        self.inner.write_all(&(body.len() as u32).to_be_bytes())?;
        self.inner.write_all(&body)
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming reader.
pub struct MrtReader<R: Read> {
    inner: R,
}

impl<R: Read> MrtReader<R> {
    /// Read and validate the file header.
    pub fn new(mut inner: R) -> Result<Self, MrtError> {
        let mut magic = [0u8; 4];
        inner.read_exact(&mut magic).map_err(|_| MrtError::BadMagic)?;
        if &magic != MAGIC {
            return Err(MrtError::BadMagic);
        }
        let mut ver = [0u8; 2];
        inner.read_exact(&mut ver).map_err(|_| MrtError::Truncated)?;
        let version = u16::from_be_bytes(ver);
        if version != VERSION {
            return Err(MrtError::BadVersion(version));
        }
        Ok(MrtReader { inner })
    }

    /// Read the next record; `Ok(None)` at clean end-of-file.
    pub fn next_update(&mut self) -> Result<Option<Update>, MrtError> {
        // Length prefix, distinguishing clean EOF from a torn record.
        let mut len_buf = [0u8; 4];
        let mut got = 0usize;
        while got < 4 {
            match self.inner.read(&mut len_buf[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => return Err(MrtError::Truncated),
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        if len == 0 || len > MAX_BODY {
            return Err(MrtError::Truncated);
        }
        let mut body = vec![0u8; len];
        self.inner
            .read_exact(&mut body)
            .map_err(|_| MrtError::Truncated)?;
        decode_body(&body)
    }

    /// Drain remaining records into a vector.
    pub fn collect_updates(&mut self) -> Result<Vec<Update>, MrtError> {
        let mut out = Vec::new();
        while let Some(u) = self.next_update()? {
            out.push(u);
        }
        Ok(out)
    }
}

fn decode_body(mut body: &[u8]) -> Result<Option<Update>, MrtError> {
    if body.remaining() < 1 + 8 + 4 + 5 {
        return Err(MrtError::Truncated);
    }
    let rtype = body.get_u8();
    let ts = body.get_u64();
    let peer = Asn(body.get_u32());
    let bits = body.get_u32();
    let len = body.get_u8();
    let prefix = Ipv4Prefix::new(bits, len).map_err(|_| MrtError::BadPrefix)?;
    match rtype {
        TYPE_WITHDRAW => {
            if body.has_remaining() {
                return Err(MrtError::Truncated); // trailing junk
            }
            Ok(Some(Update::Withdraw { ts, peer, prefix }))
        }
        TYPE_ANNOUNCE => {
            if body.remaining() < 2 {
                return Err(MrtError::Truncated);
            }
            let hop_count = body.get_u16() as usize;
            if hop_count > MAX_HOPS || body.remaining() != hop_count * 4 {
                return Err(MrtError::BadPath);
            }
            let mut hops = Vec::with_capacity(hop_count);
            for _ in 0..hop_count {
                hops.push(Asn(body.get_u32()));
            }
            Ok(Some(Update::Announce {
                ts,
                peer,
                announcement: Announcement::new(prefix, AsPath::new(hops)),
            }))
        }
        t => Err(MrtError::BadRecordType(t)),
    }
}

/// Encode one record body (everything after the length prefix).
fn encode_body(update: &Update) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    match update {
        Update::Announce {
            ts,
            peer,
            announcement,
        } => {
            body.put_u8(TYPE_ANNOUNCE);
            body.put_u64(*ts);
            body.put_u32(peer.0);
            body.put_u32(announcement.prefix.bits());
            body.put_u8(announcement.prefix.len());
            let hops = announcement.path.hops();
            debug_assert!(hops.len() <= MAX_HOPS);
            body.put_u16(hops.len() as u16);
            for h in hops {
                body.put_u32(h.0);
            }
        }
        Update::Withdraw { ts, peer, prefix } => {
            body.put_u8(TYPE_WITHDRAW);
            body.put_u64(*ts);
            body.put_u32(peer.0);
            body.put_u32(prefix.bits());
            body.put_u8(prefix.len());
        }
    }
    body
}

/// Encode a batch of updates to an in-memory buffer.
pub fn encode(updates: &[Update]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + updates.len() * 32);
    out.put_slice(MAGIC);
    out.put_u16(VERSION);
    for u in updates {
        let body = encode_body(u);
        out.put_u32(body.len() as u32);
        out.put_slice(&body);
    }
    out
}

/// Decode a complete in-memory buffer.
pub fn decode(data: &[u8]) -> Result<Vec<Update>, MrtError> {
    MrtReader::new(data)?.collect_updates()
}

/// Try to decode a full, well-framed record starting at `pos`; returns
/// the update and its total encoded length (length prefix included).
fn try_record_at(data: &[u8], pos: usize) -> Option<(Update, usize)> {
    let rest = &data[pos..];
    if rest.len() < 4 {
        return None;
    }
    let blen = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if blen == 0 || blen > MAX_BODY || rest.len() < 4 + blen {
        return None;
    }
    match decode_body(&rest[4..4 + blen]) {
        Ok(Some(u)) => Some((u, 4 + blen)),
        _ => None,
    }
}

/// Why decoding could not proceed at `pos` (for quarantine labeling).
fn classify_fault_at(data: &[u8], pos: usize) -> FaultKind {
    let rest = &data[pos..];
    if rest.len() < 4 {
        return FaultKind::Truncated;
    }
    let blen = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if blen == 0 || blen > MAX_BODY {
        return FaultKind::BadRecord;
    }
    if rest.len() < 4 + blen {
        return FaultKind::Truncated;
    }
    FaultKind::BadRecord
}

/// Decode an in-memory buffer, recovering from corruption.
///
/// Unlike [`decode`], which fail-stops on the first malformed byte, this
/// quarantines bad spans and resynchronizes on the next offset where a
/// complete record decodes (length-framed resync: a candidate boundary
/// must carry a plausible `body_len` *and* a body that fully validates —
/// stray magic bytes or look-alike lengths inside a corrupt span do not
/// fool it). The returned [`IngestHealth`] accounts for every input
/// byte: `ok_bytes + quarantined_bytes == data.len()`.
///
/// A bad file header is unrecoverable — record framing cannot be
/// trusted without it — and quarantines the whole input.
pub fn decode_resilient(data: &[u8]) -> (Vec<Update>, IngestHealth) {
    let mut health = IngestHealth::new(data.len() as u64);
    let mut out = Vec::new();
    if data.len() < 4 || &data[..4] != MAGIC {
        health.abandon(FaultKind::BadMagic);
        health.record_metrics("mrt");
        return (out, health);
    }
    if data.len() < 6 {
        health.abandon(FaultKind::Truncated);
        health.record_metrics("mrt");
        return (out, health);
    }
    if u16::from_be_bytes([data[4], data[5]]) != VERSION {
        health.abandon(FaultKind::BadVersion);
        health.record_metrics("mrt");
        return (out, health);
    }
    health.credit_ok(6);
    let mut pos = 6usize;
    while pos < data.len() {
        if let Some((u, n)) = try_record_at(data, pos) {
            out.push(u);
            health.credit_record(n as u64);
            pos += n;
            continue;
        }
        let kind = classify_fault_at(data, pos);
        let mut next = pos + 1;
        while next < data.len() && try_record_at(data, next).is_none() {
            next += 1;
        }
        health.quarantine(pos as u64, (next - pos) as u64, kind);
        if next < data.len() {
            health.note_resync();
        }
        pos = next;
    }
    health.record_metrics("mrt");
    (out, health)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Update> {
        vec![
            Update::Announce {
                ts: 1000,
                peer: Asn(12),
                announcement: Announcement::new(
                    "10.0.0.0/8".parse().unwrap(),
                    AsPath::from(vec![12, 7, 7, 3]),
                ),
            },
            Update::Withdraw {
                ts: 1001,
                peer: Asn(12),
                prefix: "192.0.2.0/24".parse().unwrap(),
            },
            Update::Announce {
                ts: 1002,
                peer: Asn(9),
                announcement: Announcement::new(
                    "0.0.0.0/0".parse().unwrap(),
                    AsPath::from(vec![9]),
                ),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let updates = sample();
        let bytes = encode(&updates);
        assert_eq!(decode(&bytes).unwrap(), updates);
    }

    #[test]
    fn empty_file_roundtrip() {
        let bytes = encode(&[]);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn bad_magic() {
        assert!(matches!(decode(b"NOPE\x00\x01"), Err(MrtError::BadMagic)));
        assert!(matches!(decode(b""), Err(MrtError::BadMagic)));
    }

    #[test]
    fn bad_version() {
        let mut bytes = encode(&[]);
        bytes[5] = 99;
        assert!(matches!(decode(&bytes), Err(MrtError::BadVersion(99))));
    }

    #[test]
    fn truncation_at_every_cut() {
        let bytes = encode(&sample());
        for cut in 6..bytes.len() {
            match decode(&bytes[..cut]) {
                Err(_) => {}
                Ok(updates) => {
                    // A cut exactly between records decodes a clean prefix
                    // of the stream.
                    assert!(updates.len() < 3, "cut {cut} produced all records");
                    assert_eq!(updates[..], sample()[..updates.len()]);
                }
            }
        }
    }

    #[test]
    fn unknown_record_type() {
        let u = sample().remove(1);
        let mut bytes = encode(&[u]);
        bytes[10] = 77; // first body byte (after magic 4 + ver 2 + len 4)
        assert!(matches!(decode(&bytes), Err(MrtError::BadRecordType(77))));
    }

    #[test]
    fn noncanonical_prefix_rejected() {
        let u = Update::Withdraw {
            ts: 0,
            peer: Asn(1),
            prefix: "10.0.0.0/8".parse().unwrap(),
        };
        let mut bytes = encode(&[u]);
        // Body layout: type(1) ts(8) peer(4) bits(4) len(1); set a host
        // bit in the prefix bits.
        let bits_off = 4 + 2 + 4 + 1 + 8 + 4;
        bytes[bits_off + 3] |= 0x01;
        assert!(matches!(decode(&bytes), Err(MrtError::BadPrefix)));
    }

    #[test]
    fn oversized_hop_count_rejected() {
        let u = sample().remove(0);
        let mut bytes = encode(&[u]);
        // hop_count field offset: 4+2 (header) + 4 (len) + 1+8+4+4+1.
        let off = 4 + 2 + 4 + 18;
        bytes[off] = 0xFF;
        bytes[off + 1] = 0xFF;
        assert!(matches!(decode(&bytes), Err(MrtError::BadPath)));
    }

    #[test]
    fn resilient_matches_strict_on_clean_input() {
        let updates = sample();
        let bytes = encode(&updates);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got, updates);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
        assert!(health.reconciles());
        assert_eq!(health.ok_records, 3);
        assert_eq!(health.ok_bytes, bytes.len() as u64);
    }

    #[test]
    fn resilient_recovers_after_truncated_tail() {
        let updates = sample();
        let bytes = encode(&updates);
        // Cut mid-way through the last record.
        let cut = bytes.len() - 3;
        let (got, health) = decode_resilient(&bytes[..cut]);
        assert_eq!(got, updates[..2]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.events.len(), 1);
        assert_eq!(health.events[0].kind, FaultKind::Truncated);
        assert_eq!(health.resyncs, 0, "nothing decodable after a torn tail");
    }

    #[test]
    fn resilient_ignores_magic_inside_record() {
        // An announce whose hop values spell out the file magic; the
        // resync heuristic must not treat it as a record boundary.
        let magic_as_u32 = u32::from_be_bytes(*MAGIC);
        let updates = vec![
            Update::Announce {
                ts: 5,
                peer: Asn(1),
                announcement: Announcement::new(
                    "10.0.0.0/8".parse().unwrap(),
                    AsPath::from(vec![magic_as_u32, magic_as_u32]),
                ),
            },
            sample().remove(1),
        ];
        let bytes = encode(&updates);
        assert!(
            bytes.windows(4).filter(|w| w == MAGIC).count() >= 3,
            "magic bytes really do appear mid-record"
        );
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got, updates);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
    }

    #[test]
    fn resilient_decodes_duplicated_record() {
        let updates = sample();
        let bytes = encode(&updates);
        // Duplicate the middle (withdraw) record byte-for-byte.
        let start = 6 + (4 + 36); // header + first announce (body 20 + 4 hops)
        let wlen = 4 + 18; // withdraw: len prefix + body
        let mut dirty = bytes.clone();
        let dup: Vec<u8> = dirty[start..start + wlen].to_vec();
        dirty.splice(start..start, dup);
        let (got, health) = decode_resilient(&dirty);
        assert_eq!(got.len(), 4);
        assert_eq!(got[1], got[2], "both copies of the duplicate decode");
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
        assert!(health.reconciles());
    }

    #[test]
    fn resilient_resyncs_past_flipped_length() {
        let updates = sample();
        let bytes = encode(&updates);
        let mut dirty = bytes.clone();
        // Smash the first record's length prefix so its framing lies.
        dirty[6] = 0xFF;
        dirty[7] = 0xFF;
        let (got, health) = decode_resilient(&dirty);
        assert_eq!(got, updates[1..]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.resyncs, 1);
        assert_eq!(health.events[0].offset, 6);
    }

    #[test]
    fn resilient_abandons_bad_header() {
        let (got, health) = decode_resilient(b"NOPE\x00\x01rest of the file");
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert!(health.reconciles());

        let mut bytes = encode(&sample());
        bytes[5] = 99;
        let (got, health) = decode_resilient(&bytes);
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert!(health.reconciles());
        assert_eq!(health.events[0].kind, FaultKind::BadVersion);
    }

    #[test]
    fn trailing_junk_in_withdraw_rejected() {
        let u = Update::Withdraw {
            ts: 0,
            peer: Asn(1),
            prefix: "10.0.0.0/8".parse().unwrap(),
        };
        let mut bytes = encode(&[u]);
        // Grow the declared body length and append a junk byte.
        let len_off = 6;
        let old = u32::from_be_bytes(bytes[len_off..len_off + 4].try_into().unwrap());
        bytes[len_off..len_off + 4].copy_from_slice(&(old + 1).to_be_bytes());
        bytes.push(0xAB);
        assert!(matches!(decode(&bytes), Err(MrtError::Truncated)));
    }
}
