//! Property tests for the BGP substrate: codec round-trips, robustness to
//! garbage, and RIB semantics against a model.

use proptest::prelude::*;
use spoofwatch_bgp::{mrt, Announcement, AsPath, Rib, Update};
use spoofwatch_net::{AppliedFault, Asn, FaultInjector, Ipv4Prefix};
use std::collections::HashMap;

/// Byte span of every record in a clean MRT-lite stream (walked via the
/// length framing: 4-byte body length + body).
fn mrt_record_spans(clean: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 6;
    while pos + 4 <= clean.len() {
        let blen = u32::from_be_bytes([
            clean[pos],
            clean[pos + 1],
            clean[pos + 2],
            clean[pos + 3],
        ]) as usize;
        spans.push((pos, pos + 4 + blen));
        pos += 4 + blen;
    }
    spans
}

/// Clean-stream byte ranges a fault can have damaged.
fn damaged_ranges(fault: &AppliedFault, clean_len: usize) -> Vec<(usize, usize)> {
    match *fault {
        AppliedFault::BitFlip { offset, .. } => vec![(offset, offset + 1)],
        AppliedFault::Truncate { new_len } => vec![(new_len, clean_len)],
        AppliedFault::TornTail { torn } => vec![(clean_len - torn, clean_len)],
        AppliedFault::Duplicate { start, .. } => vec![(start.saturating_sub(1), start + 1)],
        AppliedFault::Garbage { offset, .. } => vec![(offset.saturating_sub(1), offset + 1)],
        AppliedFault::Reorder { a, b, len } => vec![(a, a + len), (b, b + len)],
    }
}

fn count_undamaged(spans: &[(usize, usize)], damaged: &[(usize, usize)]) -> usize {
    spans
        .iter()
        .filter(|&&(s, e)| damaged.iter().all(|&(ds, de)| e <= ds || de <= s))
        .count()
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::new_truncating(bits, len))
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(1u32..100_000, 0..12).prop_map(AsPath::from)
}

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (any::<u64>(), 1u32..1000, arb_prefix(), arb_path()).prop_map(|(ts, peer, prefix, path)| {
            Update::Announce {
                ts,
                peer: Asn(peer),
                announcement: Announcement::new(prefix, path),
            }
        }),
        (any::<u64>(), 1u32..1000, arb_prefix()).prop_map(|(ts, peer, prefix)| Update::Withdraw {
            ts,
            peer: Asn(peer),
            prefix,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MRT-lite encode→decode is the identity.
    #[test]
    fn mrt_roundtrip(updates in prop::collection::vec(arb_update(), 0..40)) {
        let bytes = mrt::encode(&updates);
        prop_assert_eq!(mrt::decode(&bytes).unwrap(), updates);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn mrt_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = mrt::decode(&data);
    }

    /// Single-byte corruption of a valid stream never panics and never
    /// silently decodes to the original stream with different bytes
    /// unless the flipped byte is genuinely a don't-care (there are none
    /// in this format except inside hop values/timestamps — which change
    /// the decoded value, still fine). We only require: no panic.
    #[test]
    fn mrt_corruption_never_panics(
        updates in prop::collection::vec(arb_update(), 1..10),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = mrt::encode(&updates);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let _ = mrt::decode(&bytes);
    }

    /// RIB state after an update sequence equals a HashMap model keyed by
    /// (prefix, peer).
    #[test]
    fn rib_matches_model(updates in prop::collection::vec(arb_update(), 0..60)) {
        let mut rib = Rib::new();
        let mut model: HashMap<(Ipv4Prefix, Asn), AsPath> = HashMap::new();
        for u in &updates {
            rib.apply(u);
            match u {
                Update::Announce { peer, announcement, .. } => {
                    model.insert((announcement.prefix, *peer), announcement.path.clone());
                }
                Update::Withdraw { peer, prefix, .. } => {
                    model.remove(&(*prefix, *peer));
                }
            }
        }
        prop_assert_eq!(rib.num_routes(), model.len());
        for ((prefix, peer), path) in &model {
            let routes = rib.routes_for(prefix).expect("prefix present");
            prop_assert_eq!(routes.get(peer), Some(path));
        }
    }

    /// Path algebra: prepending never changes the origin, never creates
    /// loops on a loop-free path, and adjacency endpoints are consistent.
    #[test]
    fn path_prepend_laws(
        base in prop::collection::vec(1u32..1000, 1..8),
        asn in 2000u32..3000,
        count in 1usize..4,
    ) {
        let p = AsPath::from(base);
        let q = p.prepend(Asn(asn), count);
        prop_assert_eq!(q.origin(), p.origin());
        prop_assert_eq!(q.head(), Some(Asn(asn)));
        if !p.has_loop() && !p.contains(Asn(asn)) {
            prop_assert!(!q.has_loop());
        }
        for (l, r) in q.adjacencies() {
            prop_assert_ne!(l, r, "prepending must not create self-edges");
        }
    }

    /// One injected fault of any kind loses at most the records in the
    /// faulted byte neighborhood; the byte accounting reconciles exactly.
    #[test]
    fn mrt_single_fault_loses_only_neighborhood(
        updates in prop::collection::vec(arb_update(), 3..40),
        seed in any::<u64>(),
    ) {
        let clean = mrt::encode(&updates);
        let mut dirty = clean.clone();
        let mut inj = FaultInjector::new(seed).protect_prefix(6);
        let fault = match inj.any_single(&mut dirty, 30) {
            Some(f) => f,
            None => return Ok(()),
        };
        let (recovered, health) = mrt::decode_resilient(&dirty);
        prop_assert!(
            health.reconciles(),
            "accounting broken under {fault:?}: {health}"
        );
        let spans = mrt_record_spans(&clean);
        let undamaged = count_undamaged(&spans, &damaged_ranges(&fault, clean.len()));
        prop_assert!(
            recovered.len() >= undamaged,
            "fault {:?}: recovered {} of {} undamaged records ({} total)",
            fault, recovered.len(), undamaged, updates.len()
        );
    }

    /// The resilient decoder never panics and always reconciles,
    /// whatever the input.
    #[test]
    fn mrt_resilient_reconciles_on_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let (_, health) = mrt::decode_resilient(&data);
        prop_assert!(health.reconciles(), "{health}");
    }
}

/// Acceptance: with 1% of bytes corrupted, the decoder recovers at least
/// 99% of the unaffected records (`n - hits` floors the unaffected
/// count) with exact byte accounting.
#[test]
fn mrt_one_percent_corruption_recovers_unaffected_records() {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(79);
    let n = 1_500usize;
    let updates: Vec<Update> = (0..n)
        .map(|_| {
            let prefix =
                Ipv4Prefix::new_truncating(rng.random(), rng.random_range(8..=24));
            if rng.random_bool(0.8) {
                let hops: Vec<u32> = (0..rng.random_range(1..6))
                    .map(|_| rng.random_range(1..60_000))
                    .collect();
                Update::Announce {
                    ts: rng.random(),
                    peer: Asn(rng.random_range(1..1000)),
                    announcement: Announcement::new(prefix, AsPath::from(hops)),
                }
            } else {
                Update::Withdraw {
                    ts: rng.random(),
                    peer: Asn(rng.random_range(1..1000)),
                    prefix,
                }
            }
        })
        .collect();
    let mut dirty = mrt::encode(&updates);
    let hits = FaultInjector::new(80)
        .protect_prefix(6)
        .corrupt_percent(&mut dirty, 1.0);
    assert!(hits > 0, "corruption must actually land");
    let (recovered, health) = mrt::decode_resilient(&dirty);
    assert!(health.reconciles(), "{health}");
    let unaffected = n - hits.min(n);
    assert!(
        recovered.len() as f64 >= 0.99 * unaffected as f64,
        "recovered {} of >= {} unaffected records ({hits} corrupted bytes): {health}",
        recovered.len(),
        unaffected,
    );
}
