//! Property tests for the BGP substrate: codec round-trips, robustness to
//! garbage, and RIB semantics against a model.

use proptest::prelude::*;
use spoofwatch_bgp::{mrt, Announcement, AsPath, Rib, Update};
use spoofwatch_net::{Asn, Ipv4Prefix};
use std::collections::HashMap;

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Ipv4Prefix::new_truncating(bits, len))
}

fn arb_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(1u32..100_000, 0..12).prop_map(AsPath::from)
}

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (any::<u64>(), 1u32..1000, arb_prefix(), arb_path()).prop_map(|(ts, peer, prefix, path)| {
            Update::Announce {
                ts,
                peer: Asn(peer),
                announcement: Announcement::new(prefix, path),
            }
        }),
        (any::<u64>(), 1u32..1000, arb_prefix()).prop_map(|(ts, peer, prefix)| Update::Withdraw {
            ts,
            peer: Asn(peer),
            prefix,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// MRT-lite encode→decode is the identity.
    #[test]
    fn mrt_roundtrip(updates in prop::collection::vec(arb_update(), 0..40)) {
        let bytes = mrt::encode(&updates);
        prop_assert_eq!(mrt::decode(&bytes).unwrap(), updates);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn mrt_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = mrt::decode(&data);
    }

    /// Single-byte corruption of a valid stream never panics and never
    /// silently decodes to the original stream with different bytes
    /// unless the flipped byte is genuinely a don't-care (there are none
    /// in this format except inside hop values/timestamps — which change
    /// the decoded value, still fine). We only require: no panic.
    #[test]
    fn mrt_corruption_never_panics(
        updates in prop::collection::vec(arb_update(), 1..10),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = mrt::encode(&updates);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let _ = mrt::decode(&bytes);
    }

    /// RIB state after an update sequence equals a HashMap model keyed by
    /// (prefix, peer).
    #[test]
    fn rib_matches_model(updates in prop::collection::vec(arb_update(), 0..60)) {
        let mut rib = Rib::new();
        let mut model: HashMap<(Ipv4Prefix, Asn), AsPath> = HashMap::new();
        for u in &updates {
            rib.apply(u);
            match u {
                Update::Announce { peer, announcement, .. } => {
                    model.insert((announcement.prefix, *peer), announcement.path.clone());
                }
                Update::Withdraw { peer, prefix, .. } => {
                    model.remove(&(*prefix, *peer));
                }
            }
        }
        prop_assert_eq!(rib.num_routes(), model.len());
        for ((prefix, peer), path) in &model {
            let routes = rib.routes_for(prefix).expect("prefix present");
            prop_assert_eq!(routes.get(peer), Some(path));
        }
    }

    /// Path algebra: prepending never changes the origin, never creates
    /// loops on a loop-free path, and adjacency endpoints are consistent.
    #[test]
    fn path_prepend_laws(
        base in prop::collection::vec(1u32..1000, 1..8),
        asn in 2000u32..3000,
        count in 1usize..4,
    ) {
        let p = AsPath::from(base);
        let q = p.prepend(Asn(asn), count);
        prop_assert_eq!(q.origin(), p.origin());
        prop_assert_eq!(q.head(), Some(Asn(asn)));
        if !p.has_loop() && !p.contains(Asn(asn)) {
            prop_assert!(!q.has_loop());
        }
        for (l, r) in q.adjacencies() {
            prop_assert_ne!(l, r, "prepending must not create self-edges");
        }
    }
}
