//! # spoofwatch-spoofer
//!
//! An active spoofability measurement platform in the style of the CAIDA
//! Spoofer project, plus the paper's §4.5 cross-check of active results
//! against passive classification.
//!
//! A crowd-sourced probe inside an AS crafts packets with several kinds
//! of forged sources (private, unrouted, routed-but-foreign) and sends
//! them toward a measurement server; the server records which kinds
//! arrive. A packet must survive the *egress* filtering of the probe's
//! AS and any *transit policing* on the AS path — which is why active
//! measurements are "a lower bound on spoofability" (§4.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crosscheck;
pub mod probe;

pub use crosscheck::{crosscheck, CrossCheck};
pub use probe::{ProbeResult, SpoofKind, SpooferCampaign};
