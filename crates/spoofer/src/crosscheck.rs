//! The §4.5 cross-check: passive classification vs. active spoofability.

use crate::SpooferCampaign;
use serde::Serialize;
use spoofwatch_net::Asn;
use std::collections::HashSet;

/// The comparison the paper reports in §4.5.
#[derive(Debug, Clone, Serialize)]
pub struct CrossCheck {
    /// ASes probed by the active campaign that are also IXP members with
    /// observed traffic (the paper's 97 overlapping ASes).
    pub overlap: usize,
    /// Of the overlap: fraction where the passive method saw spoofed
    /// (Invalid or Unrouted) traffic (paper: 74%).
    pub passive_detected_fraction: f64,
    /// Of the overlap: fraction the active campaign found spoofable
    /// (paper: 30%).
    pub active_spoofable_fraction: f64,
    /// Of the passively-detected: fraction also active-spoofable
    /// (paper: ~28%).
    pub active_confirms_passive: f64,
    /// Of the active-spoofable: fraction with passive detections
    /// (paper: 69%).
    pub passive_confirms_active: f64,
}

/// Compare an active campaign with the set of members that passively
/// contributed Invalid or Unrouted traffic.
pub fn crosscheck(
    campaign: &SpooferCampaign,
    members_with_traffic: &HashSet<Asn>,
    members_with_spoofed: &HashSet<Asn>,
) -> CrossCheck {
    // Only direct (non-NAT) probes count, per the paper's footnote 5.
    let overlap: Vec<Asn> = campaign
        .direct_results()
        .map(|r| r.asn)
        .filter(|a| members_with_traffic.contains(a))
        .collect();
    let spoofable: HashSet<Asn> = campaign
        .direct_results()
        .filter(|r| r.spoofable())
        .map(|r| r.asn)
        .filter(|a| members_with_traffic.contains(a))
        .collect();
    let passive: HashSet<Asn> = overlap
        .iter()
        .copied()
        .filter(|a| members_with_spoofed.contains(a))
        .collect();
    let n = overlap.len();
    let frac = |x: usize, of: usize| if of == 0 { 0.0 } else { x as f64 / of as f64 };
    CrossCheck {
        overlap: n,
        passive_detected_fraction: frac(passive.len(), n),
        active_spoofable_fraction: frac(spoofable.len(), n),
        active_confirms_passive: frac(passive.intersection(&spoofable).count(), passive.len()),
        passive_confirms_active: frac(
            spoofable.intersection(&passive).count(),
            spoofable.len(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ProbeResult, SpoofKind};
    use std::collections::HashMap;

    fn result(asn: u32, spoofable: bool) -> ProbeResult {
        let mut received = HashMap::new();
        received.insert(SpoofKind::Private, spoofable);
        received.insert(SpoofKind::Unrouted, false);
        received.insert(SpoofKind::RoutedForeign, false);
        ProbeResult {
            asn: Asn(asn),
            behind_nat: false,
            received,
        }
    }

    #[test]
    fn fractions() {
        let campaign = SpooferCampaign {
            results: vec![
                result(1, true),  // member, passive-detected → both agree
                result(2, true),  // member, no passive detection
                result(3, false), // member, passive-detected only
                result(4, false), // member, neither
                result(9, true),  // not a member: excluded from overlap
            ],
        };
        let traffic: HashSet<Asn> = [1, 2, 3, 4].into_iter().map(Asn).collect();
        let spoofed: HashSet<Asn> = [1, 3].into_iter().map(Asn).collect();
        let cc = crosscheck(&campaign, &traffic, &spoofed);
        assert_eq!(cc.overlap, 4);
        assert_eq!(cc.passive_detected_fraction, 0.5);
        assert_eq!(cc.active_spoofable_fraction, 0.5);
        assert_eq!(cc.active_confirms_passive, 0.5);
        assert_eq!(cc.passive_confirms_active, 0.5);
    }

    #[test]
    fn empty_overlap() {
        let campaign = SpooferCampaign {
            results: vec![result(9, true)],
        };
        let cc = crosscheck(&campaign, &HashSet::new(), &HashSet::new());
        assert_eq!(cc.overlap, 0);
        assert_eq!(cc.passive_detected_fraction, 0.0);
    }
}
