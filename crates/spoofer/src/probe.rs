//! The probe campaign.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use spoofwatch_internet::{Internet, Tier};
use spoofwatch_net::Asn;
use spoofwatch_packet::craft;
use std::collections::HashMap;

/// The kinds of forged sources a probe crafts (mirroring the Spoofer
/// client's test set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum SpoofKind {
    /// RFC1918-style private source.
    Private,
    /// Routable but unannounced source.
    Unrouted,
    /// A routed source belonging to an unrelated AS.
    RoutedForeign,
}

impl SpoofKind {
    /// All kinds probed.
    pub const ALL: [SpoofKind; 3] = [SpoofKind::Private, SpoofKind::Unrouted, SpoofKind::RoutedForeign];
}

/// Outcome for one probed AS.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeResult {
    /// The AS hosting the probe.
    pub asn: Asn,
    /// Whether the probe host sat behind a NAT. The paper's §4.5
    /// cross-check "only consider\[s\] ASes in which the Spoofer project
    /// conducted direct measurements, i.e., the probes were not located
    /// behind a NAT" — NATed probes rewrite the forged source, making
    /// the result meaningless.
    pub behind_nat: bool,
    /// Which spoof kinds reached the measurement server.
    pub received: HashMap<SpoofKind, bool>,
}

impl ProbeResult {
    /// Whether any spoofed packet got through — the Spoofer project's
    /// "spoofing is possible in this AS".
    pub fn spoofable(&self) -> bool {
        self.received.values().any(|v| *v)
    }
}

/// A full campaign: results per probed AS.
#[derive(Debug, Clone, Serialize)]
pub struct SpooferCampaign {
    /// One result per probed AS.
    pub results: Vec<ProbeResult>,
}

impl SpooferCampaign {
    /// Run probes from `num_probes` randomly selected ASes toward a
    /// measurement server homed in the highest-degree tier-1 AS.
    ///
    /// Egress filtering uses the probe AS's ground-truth profile; each
    /// transit AS on the forward path additionally polices spoofed
    /// customer traffic (uRPF-style) with probability
    /// `transit_police_prob`.
    pub fn run(net: &Internet, seed: u64, num_probes: usize, transit_police_prob: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5b00f);
        let ases: Vec<Asn> = net.topology.ases().map(|a| a.asn).collect();
        // Server inside the first tier-1 AS.
        let server_as = net
            .topology
            .ases()
            .find(|a| a.tier == Tier::Tier1)
            .map(|a| a.asn)
            .expect("topology has a tier-1");
        let server_addr = {
            let mut r = StdRng::seed_from_u64(seed);
            net.random_addr_of(&mut r, server_as)
                .expect("tier-1 has prefixes")
        };
        let router = net.router();
        let routes = router.routes_from(server_as); // paths toward the server

        let mut results = Vec::with_capacity(num_probes);
        let mut probed = std::collections::HashSet::new();
        let mut guard = 0;
        while results.len() < num_probes && guard < num_probes * 20 {
            guard += 1;
            let asn = ases[rng.random_range(0..ases.len())];
            if asn == server_as || !probed.insert(asn) {
                continue;
            }
            let info = net.topology.info(asn).expect("known");
            if info.prefixes.is_empty() {
                continue;
            }
            // The forward traffic path probe → server is the reverse of
            // the server's route toward the probe's AS.
            let Some(path) = routes.traffic_path_to(asn).map(|mut p| {
                p.reverse(); // probe … server
                p
            }) else {
                continue;
            };
            // Transit policing is a static configuration of the on-path
            // networks (uRPF / customer ingress ACLs, which any provider
            // may deploy regardless of its own egress hygiene): decide
            // once per probe which hop (if any) drops spoofed traffic,
            // identically for every spoof kind.
            let path_policed = path[1..path.len().saturating_sub(1)].iter().any(|hop| {
                let hop_info = net.topology.info(*hop).expect("on-path AS");
                hop_info.tier != Tier::Stub && rng.random_bool(transit_police_prob)
            });
            // Crowd-sourced probes often run on home machines behind CPE
            // NAT; the NAT rewrites the forged source, so such runs are
            // recorded but excluded from cross-checks.
            let behind_nat = rng.random_bool(0.3);
            let mut received = HashMap::new();
            for kind in SpoofKind::ALL {
                let src = match kind {
                    SpoofKind::Private => 0x0A00_0000 | (rng.random::<u32>() & 0x00FF_FFFF),
                    SpoofKind::Unrouted => loop {
                        let a: u32 = rng.random();
                        let routed = net
                            .topology
                            .ases()
                            .any(|i| i.prefixes.iter().any(|p| p.contains(a)));
                        if !routed
                            && !spoofwatch_internet::bogon::bogon_set().contains_addr(a)
                        {
                            break a;
                        }
                    },
                    SpoofKind::RoutedForeign => loop {
                        let other = ases[rng.random_range(0..ases.len())];
                        if other != asn && !net.legitimately_carries(asn, other) {
                            if let Some(a) = net.random_addr_of(&mut rng, other) {
                                break a;
                            }
                        }
                    },
                };
                // The probe literally crafts the packet (exercising the
                // wire-format path end to end).
                let pkt = craft::udp(src, server_addr, 53_000, 53_000, b"spoofer-probe");
                debug_assert!(spoofwatch_packet::flow::extract_flow(&pkt).is_ok());

                // Egress filtering at the probe's own AS.
                let prof = info.filtering;
                let escapes = match kind {
                    SpoofKind::Private => !prof.filters_bogon,
                    SpoofKind::Unrouted => !prof.filters_unrouted,
                    SpoofKind::RoutedForeign => !prof.filters_invalid,
                };
                if !escapes {
                    received.insert(kind, false);
                    continue;
                }
                received.insert(kind, !path_policed && !behind_nat);
            }
            results.push(ProbeResult {
                asn,
                behind_nat,
                received,
            });
        }
        SpooferCampaign { results }
    }

    /// ASes where spoofing (any kind) succeeded.
    pub fn spoofable_ases(&self) -> Vec<Asn> {
        self.results
            .iter()
            .filter(|r| r.spoofable())
            .map(|r| r.asn)
            .collect()
    }

    /// Results from direct (non-NAT) probes only — the subset §4.5
    /// cross-checks against.
    pub fn direct_results(&self) -> impl Iterator<Item = &ProbeResult> {
        self.results.iter().filter(|r| !r.behind_nat)
    }

    /// Fraction of probed ASes found spoofable.
    pub fn spoofable_fraction(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.spoofable_ases().len() as f64 / self.results.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_internet::InternetConfig;

    fn net() -> Internet {
        Internet::generate(InternetConfig::tiny(33))
    }

    #[test]
    fn campaign_is_deterministic() {
        let n = net();
        let a = SpooferCampaign::run(&n, 5, 40, 0.25);
        let b = SpooferCampaign::run(&n, 5, 40, 0.25);
        assert_eq!(a.spoofable_ases(), b.spoofable_ases());
        assert_eq!(a.results.len(), 40);
    }

    #[test]
    fn clean_ases_never_spoof() {
        let n = net();
        let campaign = SpooferCampaign::run(&n, 7, 60, 0.25);
        for r in &campaign.results {
            let prof = n.topology.info(r.asn).expect("probed AS").filtering;
            if prof.is_clean() {
                assert!(!r.spoofable(), "{} is clean yet spoofable", r.asn);
            }
        }
    }

    #[test]
    fn policing_lowers_success() {
        let n = net();
        let lax = SpooferCampaign::run(&n, 9, 80, 0.0);
        let strict = SpooferCampaign::run(&n, 9, 80, 0.95);
        assert!(
            strict.spoofable_fraction() <= lax.spoofable_fraction(),
            "policing must not increase spoofability"
        );
        // Some leaky networks exist, so with no policing the fraction is
        // meaningfully positive (the paper finds ~30%+).
        assert!(lax.spoofable_fraction() > 0.2, "{}", lax.spoofable_fraction());
    }

    #[test]
    fn per_kind_outcomes_follow_policy() {
        let n = net();
        let campaign = SpooferCampaign::run(&n, 11, 60, 0.0);
        for r in &campaign.results {
            let prof = n.topology.info(r.asn).expect("probed AS").filtering;
            if prof.filters_bogon {
                assert!(!r.received[&SpoofKind::Private]);
            }
            if prof.filters_unrouted {
                assert!(!r.received[&SpoofKind::Unrouted]);
            }
            if prof.filters_invalid {
                assert!(!r.received[&SpoofKind::RoutedForeign]);
            }
        }
    }
}
