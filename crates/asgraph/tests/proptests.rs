//! Property tests: the cone engine against brute-force reachability.

use proptest::prelude::*;
use spoofwatch_asgraph::{scc, ReachCones};
use spoofwatch_net::Asn;
use std::collections::{HashMap, HashSet};

/// Brute-force reachability closure (including self) by DFS.
fn brute_reach(n: u32, edges: &[(u32, u32)], from: u32) -> HashSet<u32> {
    let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
    for (a, b) in edges {
        adj.entry(*a).or_default().push(*b);
    }
    let mut seen = HashSet::new();
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if !seen.insert(v) {
            continue;
        }
        if let Some(next) = adj.get(&v) {
            stack.extend(next.iter().copied().filter(|w| *w < n));
        }
    }
    seen
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2u32..25).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..60);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cone membership must equal DFS reachability on random digraphs
    /// (with every node an origin).
    #[test]
    fn cones_equal_dfs_reachability((n, raw_edges) in arb_graph()) {
        let edges: Vec<(Asn, Asn)> =
            raw_edges.iter().map(|(a, b)| (Asn(*a), Asn(*b))).collect();
        let units: HashMap<Asn, u64> = (0..n).map(|i| (Asn(i), 1 + i as u64)).collect();
        let cones = ReachCones::compute(&edges, &units);
        for from in 0..n {
            let want = brute_reach(n, &raw_edges, from);
            let mut expected_units = 0u64;
            for to in 0..n {
                let expect = want.contains(&to) || from == to;
                prop_assert_eq!(
                    cones.is_valid_source(Asn(from), Asn(to)),
                    expect,
                    "from {} to {}", from, to
                );
            }
            for &to in &want {
                expected_units += 1 + to as u64;
            }
            prop_assert_eq!(cones.valid_units(Asn(from)), expected_units);
            prop_assert_eq!(cones.cone_origin_count(Asn(from)), want.len());
        }
    }

    /// SCC: two vertices share a component iff mutually reachable, and
    /// component ids are in reverse topological order.
    #[test]
    fn scc_matches_mutual_reachability((n, raw_edges) in arb_graph()) {
        let adj = scc::adjacency(n as usize, raw_edges.iter().copied());
        let cond = scc::tarjan(&adj);
        for a in 0..n {
            for b in 0..n {
                let ab = brute_reach(n, &raw_edges, a).contains(&b);
                let ba = brute_reach(n, &raw_edges, b).contains(&a);
                prop_assert_eq!(
                    cond.comp[a as usize] == cond.comp[b as usize],
                    ab && ba,
                    "vertices {} and {}", a, b
                );
            }
        }
        // Reverse topological: every DAG edge goes to a smaller id.
        for (ca, cb) in cond.dag_edges(raw_edges.iter().copied()) {
            prop_assert!(cb < ca, "edge {} -> {} violates completion order", ca, cb);
        }
    }
}
