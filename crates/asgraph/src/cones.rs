//! The cone/reachability engine shared by Full Cone and Customer Cone.

use crate::{scc, As2Org, AsIndexer, BitSet};
use spoofwatch_net::Asn;
use std::collections::HashMap;

/// Per-AS reachable-origin sets: for every AS `A`, the set of origin ASes
/// whose prefixes `A` may legitimately source.
///
/// Feed it different edge sets to get the paper's two cone methods:
///
/// * **Full Cone** (§3.2): one directed edge `left → right` for every
///   adjacent pair on every observed AS path ("the left AS is considered
///   upstream of the right AS"); the reachable set is the transitive
///   closure *including the AS itself*.
/// * **Customer Cone**: one edge `provider → customer` per inferred
///   transit relationship; reachability then yields the CAIDA-style
///   customer cone.
///
/// The graph may contain cycles (mutual transit, sibling meshes); SCCs
/// are condensed first, then reachable sets are computed bottom-up over
/// the condensation DAG with bitsets over *origin indices* (only ASes
/// that originate prefixes occupy bits, which keeps memory proportional
/// to `#ASes × #origin-ASes / 8` bytes).
#[derive(Debug, Clone)]
pub struct ReachCones {
    indexer: AsIndexer,
    comp: Vec<u32>,
    reach: Vec<BitSet>,
    origin_index: HashMap<Asn, u32>,
    origin_units: Vec<u64>,
    origin_asns: Vec<Asn>,
}

impl ReachCones {
    /// Compute cones.
    ///
    /// * `edges` — directed `(upstream, downstream)` pairs in ASN space;
    /// * `origin_units` — for every origin AS, the /24-equivalent units
    ///   (in address counts, see [`spoofwatch_net::UNITS_PER_SLASH24`])
    ///   of address space it originates. ASes appearing only here (stub
    ///   origins never seen on an edge) are still indexed, and every AS
    ///   always reaches its own origins.
    pub fn compute(edges: &[(Asn, Asn)], origin_units: &HashMap<Asn, u64>) -> Self {
        let mut indexer = AsIndexer::new();
        for (a, b) in edges {
            indexer.insert(*a);
            indexer.insert(*b);
        }
        let mut origins: Vec<Asn> = origin_units.keys().copied().collect();
        origins.sort_unstable();
        for o in &origins {
            indexer.insert(*o);
        }
        let n = indexer.len();

        // Dense edge list and condensation.
        let dense: Vec<(u32, u32)> = edges
            .iter()
            .map(|(a, b)| {
                (
                    indexer.index(*a).expect("edge endpoint indexed"),
                    indexer.index(*b).expect("edge endpoint indexed"),
                )
            })
            .collect();
        let adj = scc::adjacency(n, dense.iter().copied());
        let cond = scc::tarjan(&adj);

        // Origin indexing.
        let mut origin_index = HashMap::with_capacity(origins.len());
        let mut units = Vec::with_capacity(origins.len());
        for (i, o) in origins.iter().enumerate() {
            origin_index.insert(*o, i as u32);
            units.push(origin_units[o]);
        }
        let k = origins.len();

        // Own origins per component.
        let mut reach: Vec<BitSet> = (0..cond.num_comps).map(|_| BitSet::new(k)).collect();
        for (asn, &oi) in &origin_index {
            let node = indexer.index(*asn).expect("origins indexed");
            reach[cond.comp[node as usize] as usize].set(oi as usize);
        }

        // Condensation DAG, children lists.
        let mut dag_children: Vec<Vec<u32>> = vec![Vec::new(); cond.num_comps];
        for (from, to) in cond.dag_edges(dense.iter().copied()) {
            dag_children[from as usize].push(to);
        }

        // Component ids are in completion order: every component a
        // component can reach has a smaller id, so a single ascending
        // pass closes the reachability sets.
        #[allow(clippy::needless_range_loop)] // index drives split_at_mut
        for c in 0..cond.num_comps {
            // Split-borrow: children always have smaller ids than c.
            let (done, rest) = reach.split_at_mut(c);
            let me = &mut rest[0];
            for &child in &dag_children[c] {
                debug_assert!((child as usize) < c);
                me.union_with(&done[child as usize]);
            }
        }

        ReachCones {
            indexer,
            comp: cond.comp,
            reach,
            origin_index,
            origin_units: units,
            origin_asns: origins,
        }
    }

    fn reach_of(&self, member: Asn) -> Option<&BitSet> {
        let node = self.indexer.index(member)?;
        Some(&self.reach[self.comp[node as usize] as usize])
    }

    /// Whether `member` is a legitimate source for prefixes originated by
    /// `origin`. An AS is always a valid source for itself, even if it
    /// never appeared in the graph.
    pub fn is_valid_source(&self, member: Asn, origin: Asn) -> bool {
        if member == origin {
            return true;
        }
        let (Some(set), Some(&oi)) = (self.reach_of(member), self.origin_index.get(&origin))
        else {
            return false;
        };
        set.get(oi as usize)
    }

    /// Whether `member` may source a prefix with the given origin set
    /// (MOAS prefixes are valid if *any* origin is reachable).
    pub fn is_valid_source_any(&self, member: Asn, origins: &[Asn]) -> bool {
        origins.iter().any(|o| self.is_valid_source(member, *o))
    }

    /// Size of the member's valid address space in /24-equivalent units
    /// (sum of reachable origins' exclusively-attributed space).
    pub fn valid_units(&self, member: Asn) -> u64 {
        let Some(set) = self.reach_of(member) else {
            // Unknown AS: only its own space, which (being unknown) is
            // not in the table — zero.
            return 0;
        };
        set.iter_ones().map(|i| self.origin_units[i]).sum()
    }

    /// Number of distinct origin ASes in the member's cone.
    pub fn cone_origin_count(&self, member: Asn) -> usize {
        self.reach_of(member).map_or(0, BitSet::count_ones)
    }

    /// All ASes known to the cone structure.
    pub fn ases(&self) -> impl Iterator<Item = Asn> + '_ {
        self.indexer.iter().map(|(_, a)| a)
    }

    /// Number of indexed ASes.
    pub fn num_ases(&self) -> usize {
        self.indexer.len()
    }

    /// Number of origin ASes (bit width of the reach sets).
    pub fn num_origins(&self) -> usize {
        self.origin_units.len()
    }

    /// The origin ASes in `member`'s cone, ascending. The member itself
    /// is included when it originates space.
    pub fn cone_origins(&self, member: Asn) -> Vec<Asn> {
        match self.reach_of(member) {
            None => {
                // Unknown AS: only itself, if it is an origin.
                if self.origin_index.contains_key(&member) {
                    vec![member]
                } else {
                    Vec::new()
                }
            }
            Some(set) => set.iter_ones().map(|i| self.origin_asns[i]).collect(),
        }
    }
}

/// Add the multi-AS-organization full mesh to an edge list: for every
/// organization with ≥2 ASes, a bidirectional edge between every pair, so
/// "the joint cones and IP address space of each organization is … shared
/// with each constituent AS" (§3.2).
pub fn augment_with_orgs(edges: &mut Vec<(Asn, Asn)>, orgs: &As2Org) {
    for (_, members) in orgs.multi_as_orgs() {
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                edges.push((a, b));
                edges.push((b, a));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn units(list: &[(u32, u64)]) -> HashMap<Asn, u64> {
        list.iter().map(|(a, u)| (Asn(*a), *u)).collect()
    }

    fn edges(list: &[(u32, u32)]) -> Vec<(Asn, Asn)> {
        list.iter().map(|(a, b)| (Asn(*a), Asn(*b))).collect()
    }

    /// Paper Figure 1b: ASC (customer) under ASP (provider), ASP peering
    /// with ASX. On the directed path graph, routes from C are seen as
    /// "… P C", routes from P as "… P", so edges X→P (X hears P's
    /// announcements through peering: path at X is "P C"/"P").
    #[test]
    fn figure_1b_transit_and_peering() {
        // Directed AS-path graph edges extracted from observed paths:
        //   path "P C"  seen by X  → edges X→P→C when X prepends? No:
        // the *path* is what the announcement traversed. We model the
        // edge extraction directly: announcement of C's prefix reaches a
        // collector via X with path "X P C" → edges X→P, P→C.
        let e = edges(&[(3, 2), (2, 1)]); // X=3, P=2, C=1
        let u = units(&[(1, 10), (2, 20), (3, 30)]);
        let cones = ReachCones::compute(&e, &u);
        // P may source its own and C's space.
        assert!(cones.is_valid_source(Asn(2), Asn(2)));
        assert!(cones.is_valid_source(Asn(2), Asn(1)));
        assert!(!cones.is_valid_source(Asn(2), Asn(3)), "P must not source X");
        // C sources only itself.
        assert!(cones.is_valid_source(Asn(1), Asn(1)));
        assert!(!cones.is_valid_source(Asn(1), Asn(2)));
        // X reaches everyone.
        assert_eq!(cones.cone_origin_count(Asn(3)), 3);
        assert_eq!(cones.valid_units(Asn(3)), 60);
        assert_eq!(cones.valid_units(Asn(2)), 30);
        assert_eq!(cones.valid_units(Asn(1)), 10);
    }

    /// Paper Figure 1c: A and B peer; C is A's customer, D is B's
    /// customer and originates p2. The customer cone of A is {A, C} — it
    /// misses D. The full cone, built from observed paths like
    /// "C A B D", includes D.
    #[test]
    fn figure_1c_full_cone_covers_peering() {
        const A: u32 = 1;
        const B: u32 = 2;
        const C: u32 = 3;
        const D: u32 = 4;
        let u = units(&[(A, 1), (B, 1), (C, 1), (D, 5)]);

        // Customer cone: provider→customer edges only.
        let cc = ReachCones::compute(&edges(&[(A, C), (B, D)]), &u);
        assert!(!cc.is_valid_source(Asn(A), Asn(D)), "CC misses the peer's customer");
        assert!(cc.is_valid_source(Asn(A), Asn(C)));

        // Full cone: directed path-graph edges. Observed paths:
        //   at a collector behind C: "C A B D" → C→A, A→B, B→D
        //   at a collector behind D: "D B A C" → D→B, B→A, A→C
        let full = ReachCones::compute(
            &edges(&[(C, A), (A, B), (B, D), (D, B), (B, A), (A, C)]),
            &u,
        );
        assert!(full.is_valid_source(Asn(A), Asn(D)), "full cone covers it");
        assert!(full.is_valid_source(Asn(B), Asn(C)));
        // A and B are mutually reachable (an SCC): identical cones.
        assert_eq!(full.valid_units(Asn(A)), full.valid_units(Asn(B)));
        assert_eq!(full.valid_units(Asn(A)), 8);
    }

    #[test]
    fn self_is_always_valid() {
        let cones = ReachCones::compute(&[], &units(&[(7, 3)]));
        assert!(cones.is_valid_source(Asn(7), Asn(7)));
        assert!(cones.is_valid_source(Asn(99), Asn(99)), "even unknown ASes");
        assert!(!cones.is_valid_source(Asn(99), Asn(7)));
        assert_eq!(cones.valid_units(Asn(7)), 3);
        assert_eq!(cones.valid_units(Asn(99)), 0);
    }

    #[test]
    fn moas_any_origin_suffices() {
        let cones = ReachCones::compute(&edges(&[(1, 2)]), &units(&[(2, 1), (3, 1)]));
        assert!(cones.is_valid_source_any(Asn(1), &[Asn(3), Asn(2)]));
        assert!(!cones.is_valid_source_any(Asn(1), &[Asn(3)]));
        assert!(!cones.is_valid_source_any(Asn(1), &[]));
    }

    #[test]
    fn cycles_share_cones() {
        // 1 ⇄ 2 mutual transit, 2 → 3.
        let cones = ReachCones::compute(
            &edges(&[(1, 2), (2, 1), (2, 3)]),
            &units(&[(1, 1), (2, 2), (3, 4)]),
        );
        assert_eq!(cones.valid_units(Asn(1)), 7);
        assert_eq!(cones.valid_units(Asn(2)), 7);
        assert_eq!(cones.valid_units(Asn(3)), 4);
    }

    #[test]
    fn org_augmentation_adds_full_mesh() {
        let orgs = As2Org::from_pairs([(Asn(1), 5), (Asn(2), 5), (Asn(3), 5), (Asn(9), 6)]);
        let mut e: Vec<(Asn, Asn)> = Vec::new();
        augment_with_orgs(&mut e, &orgs);
        assert_eq!(e.len(), 6, "3 pairs × 2 directions");
        assert!(e.contains(&(Asn(1), Asn(3))));
        assert!(e.contains(&(Asn(3), Asn(1))));
    }

    /// §3.2 "Multi-AS Organizations": an org's ASes share address space
    /// even without BGP-visible links between them.
    #[test]
    fn org_adjustment_changes_validity() {
        let u = units(&[(1, 10), (2, 20)]);
        let plain = ReachCones::compute(&[], &u);
        assert!(!plain.is_valid_source(Asn(1), Asn(2)));

        let orgs = As2Org::from_pairs([(Asn(1), 5), (Asn(2), 5)]);
        let mut e: Vec<(Asn, Asn)> = Vec::new();
        augment_with_orgs(&mut e, &orgs);
        let adjusted = ReachCones::compute(&e, &u);
        assert!(adjusted.is_valid_source(Asn(1), Asn(2)));
        assert!(adjusted.is_valid_source(Asn(2), Asn(1)));
        assert_eq!(adjusted.valid_units(Asn(1)), 30);
    }

    /// The paper's §3.4 containment observation: the Full Cone always
    /// contains the Customer Cone when built from consistent data.
    #[test]
    fn customer_cone_contained_in_full_cone() {
        // Small hierarchy: 1 and 2 are tier-1 peers; 3,4 customers.
        let u = units(&[(1, 1), (2, 1), (3, 1), (4, 1)]);
        let cc = ReachCones::compute(&edges(&[(1, 3), (2, 4)]), &u);
        let full = ReachCones::compute(
            &edges(&[(1, 3), (2, 4), (1, 2), (2, 1), (3, 1), (4, 2)]),
            &u,
        );
        for m in [1u32, 2, 3, 4] {
            for o in [1u32, 2, 3, 4] {
                if cc.is_valid_source(Asn(m), Asn(o)) {
                    assert!(
                        full.is_valid_source(Asn(m), Asn(o)),
                        "CC ⊆ FULL violated at ({m},{o})"
                    );
                }
            }
        }
    }
}
