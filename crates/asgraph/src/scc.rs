//! Iterative Tarjan strongly-connected components.
//!
//! The Full Cone is a transitive closure over a directed graph that "may
//! indeed contain loops" (§3.2) — mutual transit, sibling meshes, and
//! path-observation artifacts all create cycles. Condensing SCCs first
//! makes the closure a DAG problem. The implementation is iterative
//! (explicit stack) so deep provider chains cannot overflow the call
//! stack.

/// Result of an SCC condensation.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// `comp[v]` is the component id of vertex `v`. Component ids are
    /// assigned in **completion order**: every component a component can
    /// reach has a *smaller* id (reverse topological order of the DAG).
    pub comp: Vec<u32>,
    /// Number of components.
    pub num_comps: usize,
}

impl Condensation {
    /// Members of each component, indexed by component id.
    pub fn members(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_comps];
        for (v, &c) in self.comp.iter().enumerate() {
            out[c as usize].push(v as u32);
        }
        out
    }

    /// Deduplicated condensation DAG edges `(from_comp, to_comp)` derived
    /// from the original edge list (self-loops dropped).
    pub fn dag_edges(&self, edges: impl Iterator<Item = (u32, u32)>) -> Vec<(u32, u32)> {
        let mut set = std::collections::HashSet::new();
        for (a, b) in edges {
            let (ca, cb) = (self.comp[a as usize], self.comp[b as usize]);
            if ca != cb {
                set.insert((ca, cb));
            }
        }
        let mut v: Vec<_> = set.into_iter().collect();
        v.sort_unstable();
        v
    }
}

/// Tarjan's algorithm over an adjacency list (`adj[v]` = successors of
/// `v`), iterative.
pub fn tarjan(adj: &[Vec<u32>]) -> Condensation {
    let n = adj.len();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery index
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_comps = 0u32;

    // Explicit DFS frames: (vertex, next child position).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut child_pos)) = frames.last_mut() {
            if *child_pos < adj[v as usize].len() {
                let w = adj[v as usize][*child_pos];
                *child_pos += 1;
                if index[w as usize] == UNSET {
                    // Tree edge: descend.
                    index[w as usize] = next_index;
                    low[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                // v is finished.
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    // v is an SCC root: pop its component.
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        comp[w as usize] = num_comps;
                        if w == v {
                            break;
                        }
                    }
                    num_comps += 1;
                }
            }
        }
    }

    Condensation {
        comp,
        num_comps: num_comps as usize,
    }
}

/// Build an adjacency list from an edge list over `0..n`.
pub fn adjacency(n: usize, edges: impl Iterator<Item = (u32, u32)>) -> Vec<Vec<u32>> {
    let mut adj = vec![Vec::new(); n];
    for (a, b) in edges {
        adj[a as usize].push(b);
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;

    fn condense(n: usize, edges: &[(u32, u32)]) -> Condensation {
        tarjan(&adjacency(n, edges.iter().copied()))
    }

    #[test]
    fn singletons_without_edges() {
        let c = condense(3, &[]);
        assert_eq!(c.num_comps, 3);
        let mut comps: Vec<_> = c.comp.clone();
        comps.sort_unstable();
        comps.dedup();
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn chain_is_reverse_topological() {
        // 0 → 1 → 2: completion order must give 2 the smallest id.
        let c = condense(3, &[(0, 1), (1, 2)]);
        assert_eq!(c.num_comps, 3);
        assert!(c.comp[2] < c.comp[1]);
        assert!(c.comp[1] < c.comp[0]);
    }

    #[test]
    fn cycle_collapses() {
        let c = condense(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(c.num_comps, 2);
        assert_eq!(c.comp[0], c.comp[1]);
        assert_eq!(c.comp[1], c.comp[2]);
        assert_ne!(c.comp[3], c.comp[0]);
        assert!(c.comp[3] < c.comp[0], "sink completes first");
        assert_eq!(c.dag_edges([(0, 1), (1, 2), (2, 0), (2, 3)].into_iter()),
                   vec![(c.comp[2], c.comp[3])]);
    }

    #[test]
    fn two_cycles_bridged() {
        // {0,1} → {2,3}
        let edges = [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)];
        let c = condense(4, &edges);
        assert_eq!(c.num_comps, 2);
        assert_eq!(c.comp[0], c.comp[1]);
        assert_eq!(c.comp[2], c.comp[3]);
        assert!(c.comp[2] < c.comp[0]);
        let members = c.members();
        assert_eq!(members.iter().map(|m| m.len()).sum::<usize>(), 4);
    }

    #[test]
    fn self_loop_is_singleton() {
        let c = condense(2, &[(0, 0), (0, 1)]);
        assert_eq!(c.num_comps, 2);
        assert!(c.dag_edges([(0, 0), (0, 1)].into_iter()).len() == 1);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-vertex path — a recursive Tarjan would blow the stack.
        let n = 100_000;
        let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        let c = condense(n, &edges);
        assert_eq!(c.num_comps, n);
    }

    #[test]
    fn big_cycle_collapses() {
        let n = 50_000;
        let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        let c = condense(n, &edges);
        assert_eq!(c.num_comps, 1);
    }
}
