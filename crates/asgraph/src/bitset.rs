//! A chunked `u64` bitset sized for reachability computations.

/// A fixed-capacity bitset over `0..len` backed by `u64` chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    chunks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An all-zero bitset with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            chunks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Bit capacity.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.chunks.iter().all(|&c| c == 0)
    }

    /// Set bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` (an index bug, not a data condition).
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.chunks[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.chunks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i` (out-of-range reads are `false`).
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.chunks[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`.
    ///
    /// # Panics
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.chunks.iter_mut().zip(&other.chunks) {
            *a |= *b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.chunks.iter().map(|c| c.count_ones() as usize).sum()
    }

    /// Iterate indices of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.chunks.iter().enumerate().flat_map(|(ci, &chunk)| {
            let mut c = chunk;
            std::iter::from_fn(move || {
                if c == 0 {
                    None
                } else {
                    let bit = c.trailing_zeros() as usize;
                    c &= c - 1;
                    Some(ci * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = BitSet::new(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        for i in [0, 63, 64, 129] {
            assert!(b.get(i), "bit {i}");
        }
        assert!(!b.get(1));
        assert!(!b.get(500), "out of range reads false");
        assert_eq!(b.count_ones(), 4);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(1);
        b.set(99);
        b.set(1);
        a.union_with(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 99]);
    }

    #[test]
    fn iter_ones_crosses_chunks() {
        let mut b = BitSet::new(200);
        let want = vec![0, 5, 63, 64, 65, 127, 128, 199];
        for &i in &want {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), want);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitSet::new(10).set(10);
    }

    #[test]
    fn zero_capacity() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}
