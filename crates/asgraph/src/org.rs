//! AS-to-Organization mapping (the CAIDA AS2Org analog of §3.2).

use serde::{Deserialize, Serialize};
use spoofwatch_net::Asn;
use std::collections::HashMap;

/// Maps ASes to organizations so that multi-AS organizations can be
/// treated as one routing entity: the paper adds "a full mesh of links
/// between all ASes within each set", sharing cones and address space.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct As2Org {
    org_of: HashMap<Asn, u32>,
    members: HashMap<u32, Vec<Asn>>,
}

impl As2Org {
    /// An empty mapping (every AS is its own organization).
    pub fn new() -> Self {
        As2Org::default()
    }

    /// Build from `(asn, org_id)` pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Asn, u32)>>(pairs: I) -> Self {
        let mut m = As2Org::new();
        for (asn, org) in pairs {
            m.assign(asn, org);
        }
        m
    }

    /// Assign an AS to an organization (reassignment moves it).
    pub fn assign(&mut self, asn: Asn, org: u32) {
        if let Some(old) = self.org_of.insert(asn, org) {
            if old != org {
                if let Some(v) = self.members.get_mut(&old) {
                    v.retain(|a| *a != asn);
                }
            } else {
                return;
            }
        }
        self.members.entry(org).or_default().push(asn);
    }

    /// The organization of an AS, if recorded.
    pub fn org(&self, asn: Asn) -> Option<u32> {
        self.org_of.get(&asn).copied()
    }

    /// Whether two ASes belong to the same recorded organization.
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        match (self.org(a), self.org(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All recorded sibling ASes of `asn` (excluding itself).
    pub fn siblings(&self, asn: Asn) -> Vec<Asn> {
        match self.org(asn) {
            None => Vec::new(),
            Some(org) => self.members[&org]
                .iter()
                .copied()
                .filter(|a| *a != asn)
                .collect(),
        }
    }

    /// Iterate organizations with at least two ASes — the only ones that
    /// matter for cone adjustment.
    pub fn multi_as_orgs(&self) -> impl Iterator<Item = (u32, &[Asn])> {
        self.members
            .iter()
            .filter(|(_, v)| v.len() >= 2)
            .map(|(k, v)| (*k, v.as_slice()))
    }

    /// Number of ASes with a recorded organization.
    pub fn len(&self) -> usize {
        self.org_of.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.org_of.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping() {
        let m = As2Org::from_pairs([
            (Asn(1), 10),
            (Asn(2), 10),
            (Asn(3), 11),
            (Asn(4), 10),
        ]);
        assert!(m.same_org(Asn(1), Asn(2)));
        assert!(m.same_org(Asn(1), Asn(4)));
        assert!(!m.same_org(Asn(1), Asn(3)));
        assert!(!m.same_org(Asn(1), Asn(99)), "unknown AS is never same-org");
        let mut sib = m.siblings(Asn(1));
        sib.sort();
        assert_eq!(sib, vec![Asn(2), Asn(4)]);
        assert!(m.siblings(Asn(3)).is_empty());
        assert!(m.siblings(Asn(99)).is_empty());
    }

    #[test]
    fn multi_as_orgs_filter() {
        let m = As2Org::from_pairs([(Asn(1), 10), (Asn(2), 10), (Asn(3), 11)]);
        let multi: Vec<_> = m.multi_as_orgs().collect();
        assert_eq!(multi.len(), 1);
        assert_eq!(multi[0].0, 10);
        assert_eq!(multi[0].1.len(), 2);
    }

    #[test]
    fn reassignment_moves() {
        let mut m = As2Org::from_pairs([(Asn(1), 10), (Asn(2), 10)]);
        m.assign(Asn(1), 11);
        assert!(!m.same_org(Asn(1), Asn(2)));
        assert_eq!(m.multi_as_orgs().count(), 0);
        assert_eq!(m.len(), 2);
        // Idempotent re-assign must not duplicate membership.
        m.assign(Asn(1), 11);
        assert_eq!(m.siblings(Asn(1)).len(), 0);
    }
}
