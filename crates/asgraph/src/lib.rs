//! # spoofwatch-asgraph
//!
//! AS-level topology algebra: the data structures and graph algorithms
//! behind the paper's three valid-address-space inference methods (§3.2).
//!
//! * [`AsIndexer`] — dense `Asn ↔ u32` indexing for array/bitset-backed
//!   algorithms;
//! * [`BitSet`] — a chunked `u64` bitset used for reachability sets;
//! * [`scc`] — iterative Tarjan strongly-connected-components, needed
//!   because the directed AS-path graph "may indeed contain loops"
//!   (paper, §3.2);
//! * [`As2Org`] — the AS-to-Organization mapping (CAIDA-style) with
//!   union-find grouping, used to add full-mesh links between ASes of the
//!   same multi-AS organization;
//! * [`ReachCones`] — the reachability engine computing, for every AS,
//!   the set of *origin ASes* whose prefixes it may legitimately source:
//!   run it over the directed AS-path graph for the **Full Cone**, or
//!   over provider→customer edges for the **Customer Cone**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod cones;
mod index;
mod org;
pub mod scc;

pub use bitset::BitSet;
pub use cones::{augment_with_orgs, ReachCones};
pub use index::AsIndexer;
pub use org::As2Org;
