//! Dense indexing of ASNs.

use spoofwatch_net::Asn;
use std::collections::HashMap;

/// A bijection between a set of ASNs and the dense range `0..n`, the
/// substrate for bitset- and array-backed graph algorithms.
#[derive(Debug, Clone, Default)]
pub struct AsIndexer {
    to_index: HashMap<Asn, u32>,
    to_asn: Vec<Asn>,
}

impl FromIterator<Asn> for AsIndexer {
    /// Build from an iterator, indexing ASNs in first-seen order.
    fn from_iter<I: IntoIterator<Item = Asn>>(ases: I) -> Self {
        let mut idx = AsIndexer::new();
        for a in ases {
            idx.insert(a);
        }
        idx
    }
}

impl AsIndexer {
    /// An empty indexer.
    pub fn new() -> Self {
        AsIndexer::default()
    }


    /// Index `asn`, allocating a new index if unseen. Returns its index.
    pub fn insert(&mut self, asn: Asn) -> u32 {
        if let Some(&i) = self.to_index.get(&asn) {
            return i;
        }
        let i = self.to_asn.len() as u32;
        self.to_asn.push(asn);
        self.to_index.insert(asn, i);
        i
    }

    /// Look up the index of a known ASN.
    pub fn index(&self, asn: Asn) -> Option<u32> {
        self.to_index.get(&asn).copied()
    }

    /// Look up the ASN at an index.
    pub fn asn(&self, index: u32) -> Option<Asn> {
        self.to_asn.get(index as usize).copied()
    }

    /// Number of indexed ASNs.
    pub fn len(&self) -> usize {
        self.to_asn.len()
    }

    /// Whether nothing has been indexed.
    pub fn is_empty(&self) -> bool {
        self.to_asn.is_empty()
    }

    /// Iterate `(index, asn)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Asn)> + '_ {
        self.to_asn.iter().enumerate().map(|(i, a)| (i as u32, *a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_stable() {
        let mut idx = AsIndexer::new();
        assert_eq!(idx.insert(Asn(100)), 0);
        assert_eq!(idx.insert(Asn(7)), 1);
        assert_eq!(idx.insert(Asn(100)), 0, "re-insert is idempotent");
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.index(Asn(7)), Some(1));
        assert_eq!(idx.index(Asn(8)), None);
        assert_eq!(idx.asn(0), Some(Asn(100)));
        assert_eq!(idx.asn(2), None);
    }

    #[test]
    fn from_iterator() {
        let idx: AsIndexer = [Asn(5), Asn(3), Asn(5)].into_iter().collect();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.iter().collect::<Vec<_>>(), vec![(0, Asn(5)), (1, Asn(3))]);
    }
}
