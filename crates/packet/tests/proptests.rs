//! Property tests: codec round-trips and total robustness to garbage.

use proptest::prelude::*;
use spoofwatch_packet::flow::extract_flow;
use spoofwatch_packet::{craft, PcapPacket, PcapReader, PcapWriter};
use std::io::Cursor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Crafted packets always parse back to their own flow fields.
    #[test]
    fn craft_extract_roundtrip(
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..600),
        kind in 0usize..4,
    ) {
        let pkt = match kind {
            0 => craft::tcp_syn(src, dst, sport, dport, 7),
            1 => craft::udp(src, dst, sport, dport, &payload),
            2 => craft::tcp_data(src, dst, sport, dport, 9, &payload),
            _ => craft::icmp_echo(src, dst, sport, 1, &payload),
        };
        let f = extract_flow(&pkt).unwrap();
        prop_assert_eq!(f.src, src);
        prop_assert_eq!(f.dst, dst);
        prop_assert_eq!(f.size as usize, pkt.len());
        if kind < 3 {
            prop_assert_eq!((f.sport, f.dport), (sport, dport));
        }
    }

    /// Arbitrary byte soup must never panic the parser — only return
    /// errors or, rarely, a structurally valid packet.
    #[test]
    fn extract_flow_never_panics(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = extract_flow(&data);
    }

    /// Arbitrary byte soup must never panic the pcap reader.
    #[test]
    fn pcap_reader_never_panics(data in prop::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(mut r) = PcapReader::new(Cursor::new(data)) {
            // Bounded: each iteration consumes ≥16 bytes or errors.
            for _ in 0..64 {
                match r.next_packet() {
                    Ok(Some(_)) => continue,
                    _ => break,
                }
            }
        }
    }

    /// Pcap write→read round-trips arbitrary packet sets byte-exactly.
    #[test]
    fn pcap_roundtrip(
        pkts in prop::collection::vec(
            (any::<u32>(), 0u32..1_000_000, prop::collection::vec(any::<u8>(), 0..100)),
            0..20,
        )
    ) {
        let pkts: Vec<PcapPacket> = pkts
            .into_iter()
            .map(|(s, us, d)| PcapPacket::full(s, us, d))
            .collect();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let got = r.collect_packets().unwrap();
        prop_assert_eq!(got, pkts);
    }

    /// Truncating a valid capture anywhere must yield an error or a clean
    /// shorter read — never a panic, never phantom packets.
    #[test]
    fn pcap_truncation_safe(cut_frac in 0.0f64..1.0) {
        let pkts = vec![
            PcapPacket::full(1, 2, vec![1; 30]),
            PcapPacket::full(3, 4, vec![2; 50]),
        ];
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        let bytes = w.finish().unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        match PcapReader::new(Cursor::new(&bytes[..cut])) {
            Err(_) => {}
            Ok(mut r) => {
                let mut n = 0;
                while let Ok(Some(p)) = r.next_packet() {
                    prop_assert_eq!(&p, &pkts[n]);
                    n += 1;
                }
                prop_assert!(n <= pkts.len());
            }
        }
    }
}
