//! Property tests: codec round-trips, total robustness to garbage, and
//! fault-injection recovery for the resilient pcap decoder.

use proptest::prelude::*;
use spoofwatch_net::{AppliedFault, FaultInjector};
use spoofwatch_packet::flow::extract_flow;
use spoofwatch_packet::{craft, pcap, PcapPacket, PcapReader, PcapWriter};
use std::io::Cursor;

/// Byte span of every record in a clean classic-pcap stream
/// (24-byte global header, then 16-byte record headers + bodies).
fn pcap_record_spans(clean: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 24;
    while pos + 16 <= clean.len() {
        let incl = u32::from_le_bytes([
            clean[pos + 8],
            clean[pos + 9],
            clean[pos + 10],
            clean[pos + 11],
        ]) as usize;
        spans.push((pos, pos + 16 + incl));
        pos += 16 + incl;
    }
    spans
}

/// Clean-stream byte ranges a fault can have damaged.
fn damaged_ranges(fault: &AppliedFault, clean_len: usize) -> Vec<(usize, usize)> {
    match *fault {
        AppliedFault::BitFlip { offset, .. } => vec![(offset, offset + 1)],
        AppliedFault::Truncate { new_len } => vec![(new_len, clean_len)],
        AppliedFault::TornTail { torn } => vec![(clean_len - torn, clean_len)],
        AppliedFault::Duplicate { start, .. } => vec![(start.saturating_sub(1), start + 1)],
        AppliedFault::Garbage { offset, .. } => vec![(offset.saturating_sub(1), offset + 1)],
        AppliedFault::Reorder { a, b, len } => vec![(a, a + len), (b, b + len)],
    }
}

fn count_undamaged(spans: &[(usize, usize)], damaged: &[(usize, usize)]) -> usize {
    spans
        .iter()
        .filter(|&&(s, e)| damaged.iter().all(|&(ds, de)| e <= ds || de <= s))
        .count()
}

fn write_capture(pkts: &[PcapPacket]) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).expect("vec write");
    for p in pkts {
        w.write_packet(p).expect("vec write");
    }
    w.finish().expect("vec write")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Crafted packets always parse back to their own flow fields.
    #[test]
    fn craft_extract_roundtrip(
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..600),
        kind in 0usize..4,
    ) {
        let pkt = match kind {
            0 => craft::tcp_syn(src, dst, sport, dport, 7),
            1 => craft::udp(src, dst, sport, dport, &payload),
            2 => craft::tcp_data(src, dst, sport, dport, 9, &payload),
            _ => craft::icmp_echo(src, dst, sport, 1, &payload),
        };
        let f = extract_flow(&pkt).unwrap();
        prop_assert_eq!(f.src, src);
        prop_assert_eq!(f.dst, dst);
        prop_assert_eq!(f.size as usize, pkt.len());
        if kind < 3 {
            prop_assert_eq!((f.sport, f.dport), (sport, dport));
        }
    }

    /// Arbitrary byte soup must never panic the parser — only return
    /// errors or, rarely, a structurally valid packet.
    #[test]
    fn extract_flow_never_panics(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = extract_flow(&data);
    }

    /// Arbitrary byte soup must never panic the pcap reader.
    #[test]
    fn pcap_reader_never_panics(data in prop::collection::vec(any::<u8>(), 0..400)) {
        if let Ok(mut r) = PcapReader::new(Cursor::new(data)) {
            // Bounded: each iteration consumes ≥16 bytes or errors.
            for _ in 0..64 {
                match r.next_packet() {
                    Ok(Some(_)) => continue,
                    _ => break,
                }
            }
        }
    }

    /// Pcap write→read round-trips arbitrary packet sets byte-exactly.
    #[test]
    fn pcap_roundtrip(
        pkts in prop::collection::vec(
            (any::<u32>(), 0u32..1_000_000, prop::collection::vec(any::<u8>(), 0..100)),
            0..20,
        )
    ) {
        let pkts: Vec<PcapPacket> = pkts
            .into_iter()
            .map(|(s, us, d)| PcapPacket::full(s, us, d))
            .collect();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        let bytes = w.finish().unwrap();
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        let got = r.collect_packets().unwrap();
        prop_assert_eq!(got, pkts);
    }

    /// Truncating a valid capture anywhere must yield an error or a clean
    /// shorter read — never a panic, never phantom packets.
    #[test]
    fn pcap_truncation_safe(cut_frac in 0.0f64..1.0) {
        let pkts = vec![
            PcapPacket::full(1, 2, vec![1; 30]),
            PcapPacket::full(3, 4, vec![2; 50]),
        ];
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in &pkts {
            w.write_packet(p).unwrap();
        }
        let bytes = w.finish().unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        match PcapReader::new(Cursor::new(&bytes[..cut])) {
            Err(_) => {}
            Ok(mut r) => {
                let mut n = 0;
                while let Ok(Some(p)) = r.next_packet() {
                    prop_assert_eq!(&p, &pkts[n]);
                    n += 1;
                }
                prop_assert!(n <= pkts.len());
            }
        }
    }

    /// One injected fault of any kind loses at most the records in the
    /// faulted byte neighborhood; the byte accounting reconciles exactly.
    /// Bodies are printable bytes so a body window cannot masquerade as a
    /// record header during resync.
    #[test]
    fn pcap_single_fault_loses_only_neighborhood(
        pkts in prop::collection::vec(
            (any::<u32>(), 0u32..1_000_000, prop::collection::vec(0x20u8..0x7f, 8..120)),
            3..25,
        ),
        seed in any::<u64>(),
    ) {
        let pkts: Vec<PcapPacket> = pkts
            .into_iter()
            .map(|(s, us, d)| PcapPacket::full(s, us, d))
            .collect();
        let clean = write_capture(&pkts);
        let mut dirty = clean.clone();
        let mut inj = FaultInjector::new(seed).protect_prefix(24);
        let fault = match inj.any_single(&mut dirty, 60) {
            Some(f) => f,
            None => return Ok(()),
        };
        let (recovered, health) = pcap::decode_resilient(&dirty);
        prop_assert!(
            health.reconciles(),
            "accounting broken under {fault:?}: {health}"
        );
        let spans = pcap_record_spans(&clean);
        let undamaged = count_undamaged(&spans, &damaged_ranges(&fault, clean.len()));
        prop_assert!(
            recovered.len() >= undamaged,
            "fault {:?}: recovered {} of {} undamaged records ({} total)",
            fault, recovered.len(), undamaged, pkts.len()
        );
    }

    /// The resilient decoder never panics and always reconciles,
    /// whatever the input.
    #[test]
    fn pcap_resilient_reconciles_on_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let (_, health) = pcap::decode_resilient(&data);
        prop_assert!(health.reconciles(), "{health}");
    }
}

/// Acceptance: with 1% of bytes corrupted, the decoder recovers at least
/// 99% of the unaffected records (`n - hits` floors the unaffected
/// count) with exact byte accounting.
#[test]
fn pcap_one_percent_corruption_recovers_unaffected_records() {
    let n = 5_000usize;
    let pkts: Vec<PcapPacket> = (0..n)
        .map(|i| {
            let i = i as u32;
            let body: Vec<u8> = (0..20 + (i as usize * 13) % 60)
                .map(|j| (0x20 + ((i as usize + j) % 90)) as u8)
                .collect();
            PcapPacket::full(i, i % 1_000_000, body)
        })
        .collect();
    let mut dirty = write_capture(&pkts);
    let hits = FaultInjector::new(81)
        .protect_prefix(24)
        .corrupt_percent(&mut dirty, 1.0);
    assert!(hits > 0, "corruption must actually land");
    let (recovered, health) = pcap::decode_resilient(&dirty);
    assert!(health.reconciles(), "{health}");
    let unaffected = n - hits.min(n);
    assert!(
        recovered.len() as f64 >= 0.99 * unaffected as f64,
        "recovered {} of >= {} unaffected records ({hits} corrupted bytes): {health}",
        recovered.len(),
        unaffected,
    );
}
