//! Flow extraction: packet bytes → the fields a flow record carries.

use crate::ipv4::Ipv4Header;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use crate::PacketError;
use spoofwatch_net::Proto;

/// The flow-relevant fields of one packet, as extracted from its headers.
/// This is the packet-level precursor of [`spoofwatch_net::FlowRecord`]
/// (which additionally aggregates counts and knows the ingress member).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketFlow {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Transport protocol.
    pub proto: Proto,
    /// Source port (0 when the protocol has none).
    pub sport: u16,
    /// Destination port (0 when the protocol has none).
    pub dport: u16,
    /// Total IP packet size in bytes.
    pub size: u16,
    /// IP time-to-live as seen on the wire.
    pub ttl: u8,
}

/// Parse a raw IPv4 packet and pull out its flow fields, validating every
/// checksum on the way. Transport parsing failures surface as errors —
/// the sampler decides whether to count or drop malformed packets.
pub fn extract_flow(packet: &[u8]) -> Result<PacketFlow, PacketError> {
    let (ip, payload) = Ipv4Header::parse(packet)?;
    let (sport, dport) = match ip.proto {
        6 => {
            let (tcp, _) = TcpHeader::parse(payload, ip.src, ip.dst)?;
            (tcp.sport, tcp.dport)
        }
        17 => {
            let (udp, _) = UdpHeader::parse(payload, ip.src, ip.dst)?;
            (udp.sport, udp.dport)
        }
        _ => (0, 0),
    };
    Ok(PacketFlow {
        src: ip.src,
        dst: ip.dst,
        proto: Proto::from_number(ip.proto),
        sport,
        dport,
        size: ip.total_len,
        ttl: ip.ttl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::craft;

    #[test]
    fn udp_flow() {
        let pkt = craft::udp(0x01020304, 0x05060708, 1000, 2000, b"hello");
        let f = extract_flow(&pkt).unwrap();
        assert_eq!(
            f,
            PacketFlow {
                src: 0x01020304,
                dst: 0x05060708,
                proto: Proto::Udp,
                sport: 1000,
                dport: 2000,
                size: (20 + 8 + 5) as u16,
                ttl: 64,
            }
        );
    }

    #[test]
    fn non_transport_protocols_have_no_ports() {
        // Craft a protocol-47 (GRE) packet by hand.
        let mut pkt = Vec::new();
        Ipv4Header::simple(1, 2, 47, 4).emit(&mut pkt);
        pkt.extend_from_slice(&[0u8; 4]);
        let f = extract_flow(&pkt).unwrap();
        assert_eq!(f.proto, Proto::Other(47));
        assert_eq!((f.sport, f.dport), (0, 0));
    }

    #[test]
    fn corrupt_transport_is_an_error() {
        let mut pkt = craft::udp(1, 2, 3, 4, b"data");
        let last = pkt.len() - 1;
        pkt[last] ^= 0xFF; // corrupt payload → UDP checksum fails
        assert_eq!(extract_flow(&pkt), Err(PacketError::BadChecksum));
    }

    #[test]
    fn truncated_packet_is_an_error() {
        let pkt = craft::tcp_syn(1, 2, 3, 4, 5);
        assert!(extract_flow(&pkt[..12]).is_err());
    }
}
