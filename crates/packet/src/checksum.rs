//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header.

/// Sum a byte slice as 16-bit big-endian words into a 32-bit accumulator
/// (without folding). Odd trailing bytes are padded with zero on the right,
/// as the RFC specifies.
pub fn sum(data: &[u8]) -> u32 {
    let mut acc = 0u32;
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold a 32-bit accumulator to 16 bits and complement it.
pub fn finish(mut acc: u32) -> u16 {
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

/// One-shot checksum of a contiguous buffer.
pub fn checksum(data: &[u8]) -> u16 {
    finish(sum(data))
}

/// Verify a buffer whose checksum field is already in place: the folded
/// sum over the whole buffer must be zero.
pub fn verify(data: &[u8]) -> bool {
    finish(sum(data)) == 0
}

/// The IPv4 pseudo-header contribution for TCP/UDP checksums:
/// source, destination, zero+protocol, and transport length.
pub fn pseudo_header(src: u32, dst: u32, proto: u8, len: u16) -> u32 {
    (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF) + u32::from(proto) + u32::from(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The worked example from RFC 1071 §3: words 0x0001 0xf203 0xf4f5 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let acc = sum(&data);
        assert_eq!(acc, 0x2_DDF0);
        assert_eq!(finish(acc), !0xDDF2u16);
    }

    #[test]
    fn odd_length_pads_right() {
        assert_eq!(sum(&[0xAB]), 0xAB00);
        assert_eq!(sum(&[0x12, 0x34, 0x56]), 0x1234 + 0x5600);
    }

    #[test]
    fn verify_roundtrip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x00, 0x00, 0x00, 0x00, 0x40, 0x11, 0x00,
                            0x00, 0x0a, 0x00, 0x00, 0x01, 0x0a, 0x00, 0x00, 0x02];
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = c as u8;
        assert!(verify(&data));
        data[12] ^= 0x01;
        assert!(!verify(&data), "corruption must be caught");
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(checksum(&[]), 0xFFFF);
    }

    #[test]
    fn pseudo_header_contribution() {
        // Symmetric in src/dst.
        assert_eq!(
            pseudo_header(0x0A000001, 0x0A000002, 17, 8),
            pseudo_header(0x0A000002, 0x0A000001, 17, 8)
        );
    }
}
