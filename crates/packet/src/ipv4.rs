//! IPv4 header encoding and validated parsing.

use crate::checksum;
use crate::PacketError;
use bytes::BufMut;

/// Minimum (and, in everything we emit, actual) IPv4 header length.
pub const HEADER_LEN: usize = 20;

/// A parsed or to-be-encoded IPv4 header (no options — options are
/// accepted on parse and skipped, never generated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Total packet length (header + payload), bytes.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Flags (3 bits) and fragment offset (13 bits), as one field.
    pub flags_frag: u16,
    /// Time to live.
    pub ttl: u8,
    /// IP protocol number (1 = ICMP, 6 = TCP, 17 = UDP).
    pub proto: u8,
    /// Source address, host byte order.
    pub src: u32,
    /// Destination address, host byte order.
    pub dst: u32,
}

impl Ipv4Header {
    /// A conventional header for a locally crafted packet.
    pub fn simple(src: u32, dst: u32, proto: u8, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (HEADER_LEN + payload_len) as u16,
            ident: 0,
            flags_frag: 0x4000, // don't fragment
            ttl: 64,
            proto,
            src,
            dst,
        }
    }

    /// Header length in bytes (always 20 for headers we build; parsed
    /// headers report their real IHL through [`Ipv4Header::parse`]'s
    /// returned payload slice instead).
    pub fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Payload length implied by `total_len`.
    pub fn payload_len(&self) -> usize {
        self.total_len as usize - HEADER_LEN
    }

    /// Append the 20-byte header, with correct checksum, to `buf`.
    pub fn emit<B: BufMut>(&self, buf: &mut B) {
        let mut hdr = [0u8; HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[1] = self.dscp_ecn;
        hdr[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        hdr[4..6].copy_from_slice(&self.ident.to_be_bytes());
        hdr[6..8].copy_from_slice(&self.flags_frag.to_be_bytes());
        hdr[8] = self.ttl;
        hdr[9] = self.proto;
        // hdr[10..12] checksum, zero for computation
        hdr[12..16].copy_from_slice(&self.src.to_be_bytes());
        hdr[16..20].copy_from_slice(&self.dst.to_be_bytes());
        let c = checksum::checksum(&hdr);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());
        buf.put_slice(&hdr);
    }

    /// Parse and validate an IPv4 packet, returning the header and the
    /// payload slice (options skipped).
    ///
    /// Validation: version, IHL, total length vs. buffer, and the header
    /// checksum.
    pub fn parse(data: &[u8]) -> Result<(Ipv4Header, &[u8]), PacketError> {
        if data.len() < HEADER_LEN {
            return Err(PacketError::Truncated);
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(PacketError::BadVersion(version));
        }
        let ihl = (data[0] & 0x0F) as usize * 4;
        if !(HEADER_LEN..=60).contains(&ihl) || data.len() < ihl {
            return Err(PacketError::BadHeaderLen(data[0] & 0x0F));
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || data.len() < total_len {
            return Err(PacketError::Truncated);
        }
        if !checksum::verify(&data[..ihl]) {
            return Err(PacketError::BadChecksum);
        }
        let hdr = Ipv4Header {
            dscp_ecn: data[1],
            total_len: total_len as u16,
            ident: u16::from_be_bytes([data[4], data[5]]),
            flags_frag: u16::from_be_bytes([data[6], data[7]]),
            ttl: data[8],
            proto: data[9],
            src: u32::from_be_bytes([data[12], data[13], data[14], data[15]]),
            dst: u32::from_be_bytes([data[16], data[17], data[18], data[19]]),
        };
        Ok((hdr, &data[ihl..total_len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::simple(0x0A000001, 0xC0000201, 17, 8)
    }

    #[test]
    fn emit_parse_roundtrip() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.emit(&mut buf);
        buf.extend_from_slice(&[0u8; 8]); // payload
        let (parsed, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload.len(), 8);
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.emit(&mut buf);
        buf.extend_from_slice(&[0u8; 8]);
        for cut in 0..buf.len() {
            assert!(
                Ipv4Header::parse(&buf[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf.extend_from_slice(&[0u8; 8]);
        buf[0] = 0x65; // version 6
        assert_eq!(Ipv4Header::parse(&buf), Err(PacketError::BadVersion(6)));
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf.extend_from_slice(&[0u8; 8]);
        buf[0] = 0x44; // IHL 4 → 16 bytes, below minimum
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(PacketError::BadHeaderLen(4))
        ));
    }

    #[test]
    fn detects_corruption_via_checksum() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf.extend_from_slice(&[0u8; 8]);
        for byte in 0..HEADER_LEN {
            let mut bad = buf.clone();
            bad[byte] ^= 0x01;
            // Any single-bit header flip must be rejected (by checksum or
            // by a stricter structural check that fires first).
            assert!(Ipv4Header::parse(&bad).is_err(), "flip at {byte} accepted");
        }
    }

    #[test]
    fn options_are_skipped() {
        // Hand-build a 24-byte header (IHL 6) with one NOP option word.
        let mut hdr = [0u8; 24];
        hdr[0] = 0x46;
        hdr[2..4].copy_from_slice(&28u16.to_be_bytes()); // total 28 = 24 + 4
        hdr[8] = 64;
        hdr[9] = 17;
        hdr[12..16].copy_from_slice(&0x0A000001u32.to_be_bytes());
        hdr[16..20].copy_from_slice(&0x0A000002u32.to_be_bytes());
        hdr[20] = 0x01; // NOP
        let c = crate::checksum::checksum(&hdr);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());
        let mut buf = hdr.to_vec();
        buf.extend_from_slice(&[0xAA; 4]);
        let (parsed, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.src, 0x0A000001);
        assert_eq!(payload, &[0xAA; 4]);
    }

    #[test]
    fn trailing_bytes_beyond_total_len_ignored() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.emit(&mut buf);
        buf.extend_from_slice(&[0u8; 8]);
        buf.extend_from_slice(&[0xFF; 10]); // e.g. Ethernet padding
        let (_, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(payload.len(), 8);
    }
}
