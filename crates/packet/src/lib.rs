//! # spoofwatch-packet
//!
//! Wire formats for the packet-level side of the system: IPv4, TCP, UDP,
//! and ICMPv4 headers with full checksum generation and validation, a
//! classic libpcap file writer/reader, packet crafting helpers for the
//! traffic generators and the active spoofing prober, and flow extraction
//! (packet bytes → [`spoofwatch_net::FlowRecord`] fields).
//!
//! The design follows smoltcp's philosophy: plain structs encoded to and
//! parsed from byte slices with explicit validation and no compile-time
//! tricks. Parsing never panics on malformed input — every failure mode is
//! a [`PacketError`] variant, and the test suite includes truncation and
//! corruption injection for each format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Decode hot paths must surface faults through the ingest taxonomy, not
// panic; tests are exempt via cfg.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod checksum;
pub mod craft;
mod error;
pub mod flow;
pub mod icmp;
pub mod ipv4;
pub mod pcap;
pub mod tcp;
pub mod udp;

pub use error::PacketError;
pub use icmp::IcmpHeader;
pub use ipv4::Ipv4Header;
pub use pcap::{PcapPacket, PcapReader, PcapWriter};
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;
