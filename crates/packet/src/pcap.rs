//! Classic libpcap capture file format (the pre-pcapng `.pcap` format).
//!
//! We write `LINKTYPE_RAW` (101) captures — each record body is a bare
//! IPv4 packet, which is exactly what an IXP-fabric tap of IP traffic
//! looks like after L2 stripping. The reader accepts both byte orders and
//! both microsecond (`0xa1b2c3d4`) and nanosecond (`0xa1b23c4d`) magics,
//! and fails gracefully on truncated files.

use crate::PacketError;
use std::io::{self, Read, Write};

/// Microsecond-resolution magic number.
pub const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Nanosecond-resolution magic number.
pub const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// LINKTYPE_RAW: raw IP packets, no link-layer header.
pub const LINKTYPE_RAW: u32 = 101;
/// Snap length we write (full packets, standard tcpdump default).
pub const SNAPLEN: u32 = 262_144;

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp, seconds part.
    pub ts_sec: u32,
    /// Capture timestamp, sub-second part in the file's resolution.
    pub ts_frac: u32,
    /// Original length on the wire (may exceed `data.len()` if the
    /// capture was snapped).
    pub orig_len: u32,
    /// Captured bytes (a raw IPv4 packet under `LINKTYPE_RAW`).
    pub data: Vec<u8>,
}

impl PcapPacket {
    /// A full (unsnapped) capture of `data` at `ts_sec.ts_usec`.
    pub fn full(ts_sec: u32, ts_usec: u32, data: Vec<u8>) -> Self {
        PcapPacket {
            ts_sec,
            ts_frac: ts_usec,
            orig_len: data.len() as u32,
            data,
        }
    }
}

/// Streaming pcap writer (microsecond resolution, native-order fields
/// written little-endian, LINKTYPE_RAW).
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        hdr[0..4].copy_from_slice(&MAGIC_USEC.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // version major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // version minor
        // thiszone (4) and sigfigs (4) stay zero
        hdr[16..20].copy_from_slice(&SNAPLEN.to_le_bytes());
        hdr[20..24].copy_from_slice(&LINKTYPE_RAW.to_le_bytes());
        inner.write_all(&hdr)?;
        Ok(PcapWriter { inner })
    }

    /// Append one packet record.
    pub fn write_packet(&mut self, pkt: &PcapPacket) -> io::Result<()> {
        let mut rec = [0u8; 16];
        rec[0..4].copy_from_slice(&pkt.ts_sec.to_le_bytes());
        rec[4..8].copy_from_slice(&pkt.ts_frac.to_le_bytes());
        rec[8..12].copy_from_slice(&(pkt.data.len() as u32).to_le_bytes());
        rec[12..16].copy_from_slice(&pkt.orig_len.to_le_bytes());
        self.inner.write_all(&rec)?;
        self.inner.write_all(&pkt.data)
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Errors from reading a pcap stream: either I/O or format violations.
#[derive(Debug)]
pub enum PcapReadError {
    /// Underlying reader failed.
    Io(io::Error),
    /// The stream violated the pcap format.
    Format(PacketError),
}

impl std::fmt::Display for PcapReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapReadError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapReadError::Format(e) => write!(f, "pcap format error: {e}"),
        }
    }
}

impl std::error::Error for PcapReadError {}

impl From<io::Error> for PcapReadError {
    fn from(e: io::Error) -> Self {
        PcapReadError::Io(e)
    }
}

/// Streaming pcap reader handling both endiannesses and both timestamp
/// resolutions.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    /// Link type from the global header (101 for files we write).
    pub linktype: u32,
    /// Snap length from the global header; records claiming more captured
    /// bytes are rejected.
    pub snaplen: u32,
    /// Whether timestamps are nanosecond resolution.
    pub nanosecond: bool,
}

impl<R: Read> PcapReader<R> {
    /// Read and validate the global header.
    pub fn new(mut inner: R) -> Result<Self, PcapReadError> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (swapped, nanosecond) = match magic {
            MAGIC_USEC => (false, false),
            MAGIC_NSEC => (false, true),
            m if m.swap_bytes() == MAGIC_USEC => (true, false),
            m if m.swap_bytes() == MAGIC_NSEC => (true, true),
            m => return Err(PcapReadError::Format(PacketError::BadMagic(m))),
        };
        let u32_at = |b: &[u8; 24], i: usize| {
            let v = u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let snaplen = u32_at(&hdr, 16);
        let linktype = u32_at(&hdr, 20);
        Ok(PcapReader {
            inner,
            swapped,
            linktype,
            snaplen,
            nanosecond,
        })
    }

    /// Read the next packet; `Ok(None)` at a clean end-of-file, an error
    /// if the file ends inside a record.
    pub fn next_packet(&mut self) -> Result<Option<PcapPacket>, PcapReadError> {
        // Read the record header in two steps so a clean end-of-file
        // (zero bytes before the next record) is distinguishable from a
        // file torn mid-record.
        let mut rec = [0u8; 16];
        let mut first = 0usize;
        while first < rec.len() {
            match self.inner.read(&mut rec[first..]) {
                Ok(0) if first == 0 => return Ok(None), // clean EOF
                Ok(0) => return Err(PcapReadError::Format(PacketError::Truncated)),
                Ok(n) => first += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let u32_at = |b: &[u8; 16], i: usize| {
            let v = u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = u32_at(&rec, 0);
        let ts_frac = u32_at(&rec, 4);
        let incl_len = u32_at(&rec, 8);
        let orig_len = u32_at(&rec, 12);
        if incl_len > self.snaplen || incl_len > orig_len {
            return Err(PcapReadError::Format(PacketError::BadRecord));
        }
        let mut data = vec![0u8; incl_len as usize];
        self.inner
            .read_exact(&mut data)
            .map_err(|_| PcapReadError::Format(PacketError::Truncated))?;
        Ok(Some(PcapPacket {
            ts_sec,
            ts_frac,
            orig_len,
            data,
        }))
    }

    /// Drain the remaining packets into a vector.
    pub fn collect_packets(&mut self) -> Result<Vec<PcapPacket>, PcapReadError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_packets() -> Vec<PcapPacket> {
        vec![
            PcapPacket::full(100, 5, vec![0x45, 0, 0, 1]),
            PcapPacket::full(101, 999_999, vec![1, 2, 3, 4, 5, 6, 7]),
            PcapPacket::full(102, 0, vec![]),
        ]
    }

    fn write_all(pkts: &[PcapPacket]) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in pkts {
            w.write_packet(p).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let pkts = sample_packets();
        let bytes = write_all(&pkts);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.linktype, LINKTYPE_RAW);
        assert_eq!(r.snaplen, SNAPLEN);
        assert!(!r.nanosecond);
        let got = r.collect_packets().unwrap();
        assert_eq!(got, pkts);
    }

    #[test]
    fn big_endian_files_read_correctly() {
        // Hand-build a big-endian file with one 3-byte packet.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        bytes.extend_from_slice(&65535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&8u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&3u32.to_be_bytes()); // incl
        bytes.extend_from_slice(&3u32.to_be_bytes()); // orig
        bytes.extend_from_slice(&[9, 9, 9]);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.linktype, LINKTYPE_RAW);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!((p.ts_sec, p.ts_frac, p.data.len()), (7, 8, 3));
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = vec![0xFFu8; 24];
        assert!(matches!(
            PcapReader::new(Cursor::new(bytes)),
            Err(PcapReadError::Format(PacketError::BadMagic(_)))
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        let bytes = write_all(&sample_packets());
        assert!(PcapReader::new(Cursor::new(&bytes[..10])).is_err());
    }

    #[test]
    fn truncated_record_body_is_an_error() {
        let bytes = write_all(&sample_packets());
        // Cut inside the second record's body.
        let cut = 24 + 16 + 4 + 16 + 3;
        let mut r = PcapReader::new(Cursor::new(&bytes[..cut])).unwrap();
        assert!(r.next_packet().unwrap().is_some());
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn oversized_incl_len_rejected() {
        let mut bytes = write_all(&sample_packets()[..1]);
        // Patch incl_len beyond snaplen.
        let incl = (SNAPLEN + 1).to_le_bytes();
        bytes[24 + 8..24 + 12].copy_from_slice(&incl);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            r.next_packet(),
            Err(PcapReadError::Format(PacketError::BadRecord))
        ));
    }

    #[test]
    fn nanosecond_magic_detected() {
        let mut bytes = write_all(&[]);
        bytes[0..4].copy_from_slice(&MAGIC_NSEC.to_le_bytes());
        let r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert!(r.nanosecond);
    }
}
