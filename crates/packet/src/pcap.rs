//! Classic libpcap capture file format (the pre-pcapng `.pcap` format).
//!
//! We write `LINKTYPE_RAW` (101) captures — each record body is a bare
//! IPv4 packet, which is exactly what an IXP-fabric tap of IP traffic
//! looks like after L2 stripping. The reader accepts both byte orders and
//! both microsecond (`0xa1b2c3d4`) and nanosecond (`0xa1b23c4d`) magics,
//! and fails gracefully on truncated files.

use crate::PacketError;
use spoofwatch_net::{FaultKind, IngestHealth};
use std::io::{self, Read, Write};

/// Microsecond-resolution magic number.
pub const MAGIC_USEC: u32 = 0xa1b2_c3d4;
/// Nanosecond-resolution magic number.
pub const MAGIC_NSEC: u32 = 0xa1b2_3c4d;
/// LINKTYPE_RAW: raw IP packets, no link-layer header.
pub const LINKTYPE_RAW: u32 = 101;
/// Snap length we write (full packets, standard tcpdump default).
pub const SNAPLEN: u32 = 262_144;

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp, seconds part.
    pub ts_sec: u32,
    /// Capture timestamp, sub-second part in the file's resolution.
    pub ts_frac: u32,
    /// Original length on the wire (may exceed `data.len()` if the
    /// capture was snapped).
    pub orig_len: u32,
    /// Captured bytes (a raw IPv4 packet under `LINKTYPE_RAW`).
    pub data: Vec<u8>,
}

impl PcapPacket {
    /// A full (unsnapped) capture of `data` at `ts_sec.ts_usec`.
    pub fn full(ts_sec: u32, ts_usec: u32, data: Vec<u8>) -> Self {
        PcapPacket {
            ts_sec,
            ts_frac: ts_usec,
            orig_len: data.len() as u32,
            data,
        }
    }
}

/// Streaming pcap writer (microsecond resolution, native-order fields
/// written little-endian, LINKTYPE_RAW).
pub struct PcapWriter<W: Write> {
    inner: W,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        let mut hdr = [0u8; 24];
        hdr[0..4].copy_from_slice(&MAGIC_USEC.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // version major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // version minor
        // thiszone (4) and sigfigs (4) stay zero
        hdr[16..20].copy_from_slice(&SNAPLEN.to_le_bytes());
        hdr[20..24].copy_from_slice(&LINKTYPE_RAW.to_le_bytes());
        inner.write_all(&hdr)?;
        Ok(PcapWriter { inner })
    }

    /// Append one packet record.
    pub fn write_packet(&mut self, pkt: &PcapPacket) -> io::Result<()> {
        let mut rec = [0u8; 16];
        rec[0..4].copy_from_slice(&pkt.ts_sec.to_le_bytes());
        rec[4..8].copy_from_slice(&pkt.ts_frac.to_le_bytes());
        rec[8..12].copy_from_slice(&(pkt.data.len() as u32).to_le_bytes());
        rec[12..16].copy_from_slice(&pkt.orig_len.to_le_bytes());
        self.inner.write_all(&rec)?;
        self.inner.write_all(&pkt.data)
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Errors from reading a pcap stream: either I/O or format violations.
#[derive(Debug)]
pub enum PcapReadError {
    /// Underlying reader failed.
    Io(io::Error),
    /// The stream violated the pcap format.
    Format(PacketError),
}

impl std::fmt::Display for PcapReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapReadError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapReadError::Format(e) => write!(f, "pcap format error: {e}"),
        }
    }
}

impl std::error::Error for PcapReadError {}

impl From<io::Error> for PcapReadError {
    fn from(e: io::Error) -> Self {
        PcapReadError::Io(e)
    }
}

/// Streaming pcap reader handling both endiannesses and both timestamp
/// resolutions.
pub struct PcapReader<R: Read> {
    inner: R,
    swapped: bool,
    /// Link type from the global header (101 for files we write).
    pub linktype: u32,
    /// Snap length from the global header; records claiming more captured
    /// bytes are rejected.
    pub snaplen: u32,
    /// Whether timestamps are nanosecond resolution.
    pub nanosecond: bool,
}

impl<R: Read> PcapReader<R> {
    /// Read and validate the global header.
    pub fn new(mut inner: R) -> Result<Self, PcapReadError> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (swapped, nanosecond) = match magic {
            MAGIC_USEC => (false, false),
            MAGIC_NSEC => (false, true),
            m if m.swap_bytes() == MAGIC_USEC => (true, false),
            m if m.swap_bytes() == MAGIC_NSEC => (true, true),
            m => return Err(PcapReadError::Format(PacketError::BadMagic(m))),
        };
        let u32_at = |b: &[u8; 24], i: usize| {
            let v = u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let snaplen = u32_at(&hdr, 16);
        let linktype = u32_at(&hdr, 20);
        Ok(PcapReader {
            inner,
            swapped,
            linktype,
            snaplen,
            nanosecond,
        })
    }

    /// Read the next packet; `Ok(None)` at a clean end-of-file, an error
    /// if the file ends inside a record.
    pub fn next_packet(&mut self) -> Result<Option<PcapPacket>, PcapReadError> {
        // Read the record header in two steps so a clean end-of-file
        // (zero bytes before the next record) is distinguishable from a
        // file torn mid-record.
        let mut rec = [0u8; 16];
        let mut first = 0usize;
        while first < rec.len() {
            match self.inner.read(&mut rec[first..]) {
                Ok(0) if first == 0 => return Ok(None), // clean EOF
                Ok(0) => return Err(PcapReadError::Format(PacketError::Truncated)),
                Ok(n) => first += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let u32_at = |b: &[u8; 16], i: usize| {
            let v = u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let ts_sec = u32_at(&rec, 0);
        let ts_frac = u32_at(&rec, 4);
        let incl_len = u32_at(&rec, 8);
        let orig_len = u32_at(&rec, 12);
        if incl_len > self.snaplen || incl_len > orig_len {
            return Err(PcapReadError::Format(PacketError::BadRecord));
        }
        let mut data = vec![0u8; incl_len as usize];
        self.inner
            .read_exact(&mut data)
            .map_err(|_| PcapReadError::Format(PacketError::Truncated))?;
        Ok(Some(PcapPacket {
            ts_sec,
            ts_frac,
            orig_len,
            data,
        }))
    }

    /// Drain the remaining packets into a vector.
    pub fn collect_packets(&mut self) -> Result<Vec<PcapPacket>, PcapReadError> {
        let mut out = Vec::new();
        while let Some(p) = self.next_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

/// A record header's fields, decoded with the file's byte order.
struct RecHeader {
    ts_sec: u32,
    ts_frac: u32,
    incl_len: u32,
    orig_len: u32,
}

fn rec_header_at(data: &[u8], pos: usize, swapped: bool) -> Option<RecHeader> {
    let b = data.get(pos..pos + 16)?;
    let u32_at = |i: usize| {
        let v = u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        if swapped {
            v.swap_bytes()
        } else {
            v
        }
    };
    Some(RecHeader {
        ts_sec: u32_at(0),
        ts_frac: u32_at(4),
        incl_len: u32_at(8),
        orig_len: u32_at(12),
    })
}

/// Whether the 16 bytes at `pos` look like a record header: a sane
/// `incl_len` under the snap length, and internally consistent lengths —
/// an unsnapped packet has `incl_len == orig_len`, a snapped one has
/// `incl_len == snaplen < orig_len`. The equality requirement matters:
/// `incl <= orig` alone admits a shifted parse where a real record's
/// `orig_len` lands in the `incl_len` slot and chains indefinitely.
fn header_plausible(data: &[u8], pos: usize, swapped: bool, snaplen: u32) -> Option<RecHeader> {
    let h = rec_header_at(data, pos, swapped)?;
    let sane = (h.incl_len == h.orig_len && h.incl_len <= snaplen)
        || (h.incl_len == snaplen && h.orig_len > snaplen);
    sane.then_some(h)
}

/// Whether the stream starting at `pos` looks like a valid continuation,
/// examining up to `depth` further record headers. End-of-input is a
/// valid continuation, and so is a final record whose header is sane but
/// whose body runs past the end (a torn tail).
fn chain_plausible(data: &[u8], pos: usize, swapped: bool, snaplen: u32, depth: u32) -> bool {
    if pos >= data.len() {
        return pos == data.len();
    }
    if depth == 0 {
        return true;
    }
    let Some(h) = header_plausible(data, pos, swapped, snaplen) else {
        return false;
    };
    match (pos + 16).checked_add(h.incl_len as usize) {
        Some(end) if end <= data.len() => chain_plausible(data, end, swapped, snaplen, depth - 1),
        _ => true, // torn tail: acceptable as a continuation
    }
}

/// The next-packet-header heuristic used for resynchronization: a
/// candidate boundary must carry a plausible header, a body that fully
/// fits, *and* chain into two further plausible records (or the end of
/// the input). pcap record headers alone are weak evidence — length
/// fields of one record overlapping the body of another can look sane —
/// so the two-deep chain is what keeps garbage from faking a boundary.
fn record_plausible_at(data: &[u8], pos: usize, swapped: bool, snaplen: u32) -> bool {
    let Some(h) = header_plausible(data, pos, swapped, snaplen) else {
        return false;
    };
    match (pos + 16).checked_add(h.incl_len as usize) {
        Some(end) if end <= data.len() => chain_plausible(data, end, swapped, snaplen, 2),
        _ => false,
    }
}

/// Decode an in-memory pcap capture, recovering from corruption.
///
/// Streaming [`PcapReader`] fail-stops on the first malformed record;
/// this variant quarantines bad spans and resynchronizes by scanning for
/// the next offset that satisfies the chained next-packet-header
/// heuristic (see [`record_plausible_at`]). The returned
/// [`IngestHealth`] accounts for every input byte:
/// `ok_bytes + quarantined_bytes == data.len()`.
///
/// A bad global header is unrecoverable — without it neither byte order
/// nor snap length is known — and quarantines the whole input.
pub fn decode_resilient(data: &[u8]) -> (Vec<PcapPacket>, IngestHealth) {
    let mut health = IngestHealth::new(data.len() as u64);
    let mut out = Vec::new();
    if data.len() < 24 {
        health.abandon(FaultKind::Truncated);
        health.record_metrics("pcap");
        return (out, health);
    }
    let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    let swapped = match magic {
        MAGIC_USEC | MAGIC_NSEC => false,
        m if m.swap_bytes() == MAGIC_USEC || m.swap_bytes() == MAGIC_NSEC => true,
        _ => {
            health.abandon(FaultKind::BadMagic);
            health.record_metrics("pcap");
            return (out, health);
        }
    };
    let u32_at = |i: usize| {
        let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
        if swapped {
            v.swap_bytes()
        } else {
            v
        }
    };
    let snaplen = u32_at(16);
    health.credit_ok(24);
    let mut pos = 24usize;
    while pos < data.len() {
        if let Some(h) = header_plausible(data, pos, swapped, snaplen) {
            let body = pos + 16;
            let end = body + h.incl_len as usize;
            if end <= data.len() {
                out.push(PcapPacket {
                    ts_sec: h.ts_sec,
                    ts_frac: h.ts_frac,
                    orig_len: h.orig_len,
                    data: data[body..end].to_vec(),
                });
                health.credit_record((16 + h.incl_len) as u64);
                pos = end;
                continue;
            }
        }
        let kind = if data.len() - pos < 16
            || header_plausible(data, pos, swapped, snaplen).is_some()
        {
            FaultKind::Truncated // header short or body runs past the end
        } else {
            FaultKind::BadRecord
        };
        let mut next = pos + 1;
        while next < data.len() && !record_plausible_at(data, next, swapped, snaplen) {
            next += 1;
        }
        health.quarantine(pos as u64, (next - pos) as u64, kind);
        if next < data.len() {
            health.note_resync();
        }
        pos = next;
    }
    health.record_metrics("pcap");
    (out, health)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample_packets() -> Vec<PcapPacket> {
        vec![
            PcapPacket::full(100, 5, vec![0x45, 0, 0, 1]),
            PcapPacket::full(101, 999_999, vec![1, 2, 3, 4, 5, 6, 7]),
            PcapPacket::full(102, 0, vec![]),
        ]
    }

    fn write_all(pkts: &[PcapPacket]) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for p in pkts {
            w.write_packet(p).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let pkts = sample_packets();
        let bytes = write_all(&pkts);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.linktype, LINKTYPE_RAW);
        assert_eq!(r.snaplen, SNAPLEN);
        assert!(!r.nanosecond);
        let got = r.collect_packets().unwrap();
        assert_eq!(got, pkts);
    }

    #[test]
    fn big_endian_files_read_correctly() {
        // Hand-build a big-endian file with one 3-byte packet.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        bytes.extend_from_slice(&65535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&8u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&3u32.to_be_bytes()); // incl
        bytes.extend_from_slice(&3u32.to_be_bytes()); // orig
        bytes.extend_from_slice(&[9, 9, 9]);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.linktype, LINKTYPE_RAW);
        let p = r.next_packet().unwrap().unwrap();
        assert_eq!((p.ts_sec, p.ts_frac, p.data.len()), (7, 8, 3));
        assert!(r.next_packet().unwrap().is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = vec![0xFFu8; 24];
        assert!(matches!(
            PcapReader::new(Cursor::new(bytes)),
            Err(PcapReadError::Format(PacketError::BadMagic(_)))
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        let bytes = write_all(&sample_packets());
        assert!(PcapReader::new(Cursor::new(&bytes[..10])).is_err());
    }

    #[test]
    fn truncated_record_body_is_an_error() {
        let bytes = write_all(&sample_packets());
        // Cut inside the second record's body.
        let cut = 24 + 16 + 4 + 16 + 3;
        let mut r = PcapReader::new(Cursor::new(&bytes[..cut])).unwrap();
        assert!(r.next_packet().unwrap().is_some());
        assert!(r.next_packet().is_err());
    }

    #[test]
    fn oversized_incl_len_rejected() {
        let mut bytes = write_all(&sample_packets()[..1]);
        // Patch incl_len beyond snaplen.
        let incl = (SNAPLEN + 1).to_le_bytes();
        bytes[24 + 8..24 + 12].copy_from_slice(&incl);
        let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert!(matches!(
            r.next_packet(),
            Err(PcapReadError::Format(PacketError::BadRecord))
        ));
    }

    /// A run of packets with nonzero patterned bodies, like real IP
    /// traffic (all-zero bodies are themselves valid empty-record
    /// headers, which no recovery heuristic can tell from padding).
    fn patterned_packets(n: u32) -> Vec<PcapPacket> {
        (0..n)
            .map(|i| {
                let len = 20 + (i as usize * 13) % 60;
                PcapPacket::full(
                    1000 + i,
                    i * 7,
                    (0..len).map(|j| 0x40u8 | ((i as usize + j) % 64) as u8).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn resilient_matches_strict_on_clean_input() {
        let pkts = patterned_packets(12);
        let bytes = write_all(&pkts);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got, pkts);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
        assert!(health.reconciles());
        assert_eq!(health.ok_records, 12);
        assert_eq!(health.ok_bytes, bytes.len() as u64);
    }

    #[test]
    fn resilient_quarantines_truncated_tail() {
        let pkts = patterned_packets(6);
        let bytes = write_all(&pkts);
        let cut = bytes.len() - 5; // inside the last record's body
        let (got, health) = decode_resilient(&bytes[..cut]);
        assert_eq!(got, pkts[..5]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.events[0].kind, FaultKind::Truncated);
    }

    #[test]
    fn resilient_resyncs_past_smashed_length() {
        let pkts = patterned_packets(8);
        let bytes = write_all(&pkts);
        let mut dirty = bytes.clone();
        // Make the first record's incl_len absurd (> snaplen).
        dirty[24 + 8..24 + 12].copy_from_slice(&0xFFFF_FFFFu32.to_le_bytes());
        let (got, health) = decode_resilient(&dirty);
        assert_eq!(got, pkts[1..], "exactly the smashed record is lost");
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.resyncs, 1);
        assert_eq!(health.events[0].offset, 24);
        assert_eq!(health.events[0].len, 16 + pkts[0].data.len() as u64);
    }

    #[test]
    fn resilient_recovers_after_inserted_garbage() {
        let pkts = patterned_packets(8);
        let bytes = write_all(&pkts);
        let mut dirty = bytes.clone();
        // 11 nonzero garbage bytes between records 3 and 4.
        let at = 24 + (0..4).map(|i| 16 + pkts[i].data.len()).sum::<usize>();
        dirty.splice(at..at, std::iter::repeat(0xEEu8).take(11));
        let (got, health) = decode_resilient(&dirty);
        assert_eq!(got, pkts, "all packets recovered around the insertion");
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.quarantined_bytes, 11);
    }

    #[test]
    fn resilient_decodes_duplicated_record() {
        let pkts = patterned_packets(5);
        let bytes = write_all(&pkts);
        let start = 24 + 16 + pkts[0].data.len();
        let rec_len = 16 + pkts[1].data.len();
        let mut dirty = bytes.clone();
        let dup: Vec<u8> = dirty[start..start + rec_len].to_vec();
        dirty.splice(start..start, dup);
        let (got, health) = decode_resilient(&dirty);
        assert_eq!(got.len(), 6);
        assert_eq!(got[1], got[2]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
        assert!(health.reconciles());
    }

    #[test]
    fn resilient_abandons_bad_global_header() {
        let (got, health) = decode_resilient(&[0xFFu8; 100]);
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert!(health.reconciles());
        assert_eq!(health.events[0].kind, FaultKind::BadMagic);

        let (got, health) = decode_resilient(&[0u8; 10]); // shorter than a header
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert!(health.reconciles());
    }

    #[test]
    fn resilient_handles_big_endian_files() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_USEC.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        bytes.extend_from_slice(&65535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&7u32.to_be_bytes());
        bytes.extend_from_slice(&8u32.to_be_bytes());
        bytes.extend_from_slice(&3u32.to_be_bytes());
        bytes.extend_from_slice(&3u32.to_be_bytes());
        bytes.extend_from_slice(&[9, 9, 9]);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].ts_sec, got[0].ts_frac, got[0].data.len()), (7, 8, 3));
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
    }

    #[test]
    fn nanosecond_magic_detected() {
        let mut bytes = write_all(&[]);
        bytes[0..4].copy_from_slice(&MAGIC_NSEC.to_le_bytes());
        let r = PcapReader::new(Cursor::new(bytes)).unwrap();
        assert!(r.nanosecond);
    }
}
