//! ICMPv4 header encoding and validated parsing.

use crate::checksum;
use crate::PacketError;
use bytes::BufMut;

/// ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMP message types used by the generators and analyses.
pub mod types {
    /// Echo reply.
    pub const ECHO_REPLY: u8 = 0;
    /// Destination unreachable.
    pub const DEST_UNREACHABLE: u8 = 3;
    /// Echo request.
    pub const ECHO_REQUEST: u8 = 8;
    /// Time exceeded — the classic "stray traffic from router IPs" case
    /// (§5.2: routers answering traceroutes over their default route).
    pub const TIME_EXCEEDED: u8 = 11;
}

/// An ICMPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: u8,
    /// Message code.
    pub code: u8,
    /// The 4 type-specific bytes after the checksum (identifier/sequence
    /// for echo, unused for time exceeded).
    pub rest: [u8; 4],
}

impl IcmpHeader {
    /// An echo request with identifier and sequence.
    pub fn echo_request(ident: u16, seq: u16) -> Self {
        let mut rest = [0u8; 4];
        rest[0..2].copy_from_slice(&ident.to_be_bytes());
        rest[2..4].copy_from_slice(&seq.to_be_bytes());
        IcmpHeader {
            icmp_type: types::ECHO_REQUEST,
            code: 0,
            rest,
        }
    }

    /// A TTL-exceeded-in-transit message, as emitted by routers.
    pub fn time_exceeded() -> Self {
        IcmpHeader {
            icmp_type: types::TIME_EXCEEDED,
            code: 0,
            rest: [0; 4],
        }
    }

    /// Append header + payload with a correct checksum (ICMP checksums
    /// cover the whole message, no pseudo-header).
    pub fn emit<B: BufMut>(&self, buf: &mut B, payload: &[u8]) {
        let mut hdr = [0u8; HEADER_LEN];
        hdr[0] = self.icmp_type;
        hdr[1] = self.code;
        hdr[4..8].copy_from_slice(&self.rest);
        let c = checksum::finish(checksum::sum(&hdr) + checksum::sum(payload));
        hdr[2..4].copy_from_slice(&c.to_be_bytes());
        buf.put_slice(&hdr);
        buf.put_slice(payload);
    }

    /// Parse and validate an ICMP message, returning header and payload.
    pub fn parse(data: &[u8]) -> Result<(IcmpHeader, &[u8]), PacketError> {
        if data.len() < HEADER_LEN {
            return Err(PacketError::Truncated);
        }
        if !checksum::verify(data) {
            return Err(PacketError::BadChecksum);
        }
        let hdr = IcmpHeader {
            icmp_type: data[0],
            code: data[1],
            rest: [data[4], data[5], data[6], data[7]],
        };
        Ok((hdr, &data[HEADER_LEN..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let hdr = IcmpHeader::echo_request(0x1234, 7);
        let mut buf = Vec::new();
        hdr.emit(&mut buf, b"abcdefgh");
        let (parsed, payload) = IcmpHeader::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, b"abcdefgh");
        assert_eq!(parsed.icmp_type, types::ECHO_REQUEST);
    }

    #[test]
    fn time_exceeded_roundtrip() {
        let hdr = IcmpHeader::time_exceeded();
        let mut buf = Vec::new();
        // Time-exceeded carries the offending IP header + 8 bytes.
        hdr.emit(&mut buf, &[0u8; 28]);
        let (parsed, payload) = IcmpHeader::parse(&buf).unwrap();
        assert_eq!(parsed.icmp_type, types::TIME_EXCEEDED);
        assert_eq!(payload.len(), 28);
    }

    #[test]
    fn corruption_detected() {
        let hdr = IcmpHeader::echo_request(1, 1);
        let mut buf = Vec::new();
        hdr.emit(&mut buf, b"data");
        for byte in 0..buf.len() {
            let mut bad = buf.clone();
            bad[byte] ^= 0x20;
            assert!(IcmpHeader::parse(&bad).is_err(), "flip at {byte}");
        }
    }

    #[test]
    fn truncation() {
        let hdr = IcmpHeader::echo_request(1, 1);
        let mut buf = Vec::new();
        hdr.emit(&mut buf, &[]);
        for cut in 0..HEADER_LEN {
            assert!(IcmpHeader::parse(&buf[..cut]).is_err());
        }
    }
}
