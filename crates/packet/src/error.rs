//! Packet parsing errors.

use std::fmt;

/// Why a buffer failed to parse as a packet or capture file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Buffer shorter than the fixed header, or shorter than a length
    /// field claims.
    Truncated,
    /// IPv4 version nibble was not 4.
    BadVersion(u8),
    /// IPv4 IHL below 5 (20 bytes) or longer than the buffer.
    BadHeaderLen(u8),
    /// A length field is inconsistent (e.g. IPv4 total length < header
    /// length, UDP length < 8).
    BadLength,
    /// Checksum validation failed.
    BadChecksum,
    /// A pcap file did not start with a known magic number.
    BadMagic(u32),
    /// A pcap record claims more bytes than its snap length allows.
    BadRecord,
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => f.write_str("buffer truncated"),
            PacketError::BadVersion(v) => write!(f, "IP version {v}, expected 4"),
            PacketError::BadHeaderLen(l) => write!(f, "bad IPv4 header length {l}"),
            PacketError::BadLength => f.write_str("inconsistent length field"),
            PacketError::BadChecksum => f.write_str("checksum mismatch"),
            PacketError::BadMagic(m) => write!(f, "unknown pcap magic {m:#010x}"),
            PacketError::BadRecord => f.write_str("malformed pcap record"),
        }
    }
}

impl std::error::Error for PacketError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(PacketError::Truncated.to_string(), "buffer truncated");
        assert!(PacketError::BadMagic(0xdeadbeef).to_string().contains("0xdeadbeef"));
    }
}
