//! UDP header encoding and validated parsing.

use crate::checksum;
use crate::PacketError;
use bytes::BufMut;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A UDP header. The checksum covers the IPv4 pseudo-header, so source and
/// destination addresses must be supplied to [`UdpHeader::emit`] and
/// [`UdpHeader::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
}

impl UdpHeader {
    /// Append header + payload with a correct pseudo-header checksum.
    pub fn emit<B: BufMut>(&self, buf: &mut B, src: u32, dst: u32, payload: &[u8]) {
        let len = (HEADER_LEN + payload.len()) as u16;
        let mut hdr = [0u8; HEADER_LEN];
        hdr[0..2].copy_from_slice(&self.sport.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dport.to_be_bytes());
        hdr[4..6].copy_from_slice(&len.to_be_bytes());
        let acc = checksum::pseudo_header(src, dst, 17, len)
            + checksum::sum(&hdr)
            + checksum::sum(payload);
        let mut c = checksum::finish(acc);
        if c == 0 {
            // RFC 768: transmitted zero means "no checksum"; an all-zero
            // result is sent as all ones.
            c = 0xFFFF;
        }
        hdr[6..8].copy_from_slice(&c.to_be_bytes());
        buf.put_slice(&hdr);
        buf.put_slice(payload);
    }

    /// Parse and validate a UDP datagram, returning the header and
    /// payload. A zero checksum field (checksum disabled) is accepted, as
    /// the RFC requires.
    pub fn parse(
        data: &[u8],
        src: u32,
        dst: u32,
    ) -> Result<(UdpHeader, &[u8]), PacketError> {
        if data.len() < HEADER_LEN {
            return Err(PacketError::Truncated);
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < HEADER_LEN {
            return Err(PacketError::BadLength);
        }
        if data.len() < len {
            return Err(PacketError::Truncated);
        }
        let cksum = u16::from_be_bytes([data[6], data[7]]);
        if cksum != 0 {
            let acc = checksum::pseudo_header(src, dst, 17, len as u16)
                + checksum::sum(&data[..len]);
            if checksum::finish(acc) != 0 {
                return Err(PacketError::BadChecksum);
            }
        }
        let hdr = UdpHeader {
            sport: u16::from_be_bytes([data[0], data[1]]),
            dport: u16::from_be_bytes([data[2], data[3]]),
        };
        Ok((hdr, &data[HEADER_LEN..len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: u32 = 0x0A000001;
    const DST: u32 = 0x0A000002;

    #[test]
    fn roundtrip() {
        let hdr = UdpHeader { sport: 53124, dport: 123 };
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, b"ntp mon");
        let (parsed, payload) = UdpHeader::parse(&buf, SRC, DST).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, b"ntp mon");
    }

    #[test]
    fn checksum_binds_addresses() {
        let hdr = UdpHeader { sport: 1, dport: 2 };
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, b"x");
        // Same bytes, different claimed source: pseudo-header mismatch.
        assert_eq!(
            UdpHeader::parse(&buf, SRC + 1, DST),
            Err(PacketError::BadChecksum)
        );
    }

    #[test]
    fn zero_checksum_accepted() {
        let hdr = UdpHeader { sport: 7, dport: 9 };
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, b"data");
        buf[6] = 0;
        buf[7] = 0;
        assert!(UdpHeader::parse(&buf, SRC, DST).is_ok());
    }

    #[test]
    fn truncation_and_bad_length() {
        let hdr = UdpHeader { sport: 7, dport: 9 };
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, b"data");
        for cut in 0..buf.len() {
            assert!(UdpHeader::parse(&buf[..cut], SRC, DST).is_err());
        }
        let mut bad = buf.clone();
        bad[4] = 0;
        bad[5] = 4; // len 4 < 8
        assert_eq!(UdpHeader::parse(&bad, SRC, DST), Err(PacketError::BadLength));
    }

    #[test]
    fn corruption_detected() {
        let hdr = UdpHeader { sport: 7, dport: 9 };
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, b"payload bytes");
        for byte in 0..buf.len() {
            let mut bad = buf.clone();
            bad[byte] ^= 0x04;
            // Either rejected, or the flip hit a field whose change keeps
            // the datagram self-consistent (impossible for a checksum-
            // covered flip — so everything must fail except flips that
            // produce checksum 0, which disables verification).
            let disabled = bad[6] == 0 && bad[7] == 0;
            if !disabled {
                assert!(
                    UdpHeader::parse(&bad, SRC, DST).is_err(),
                    "flip at {byte} accepted"
                );
            }
        }
    }

    #[test]
    fn empty_payload() {
        let hdr = UdpHeader { sport: 1, dport: 1 };
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, &[]);
        let (_, payload) = UdpHeader::parse(&buf, SRC, DST).unwrap();
        assert!(payload.is_empty());
    }
}
