//! TCP header encoding and validated parsing.

use crate::checksum;
use crate::PacketError;
use bytes::BufMut;

/// Minimum (and, in everything we emit, actual) TCP header length.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits, as in the wire format's 13th byte (lower 6 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG flag.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Whether all flags in `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

/// A TCP header (no options — options are skipped on parse per the data
/// offset field, never generated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// A bare SYN, as emitted by flooding attack generators.
    pub fn syn(sport: u16, dport: u16, seq: u32) -> Self {
        TcpHeader {
            sport,
            dport,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
        }
    }

    /// Append header + payload with a correct pseudo-header checksum.
    pub fn emit<B: BufMut>(&self, buf: &mut B, src: u32, dst: u32, payload: &[u8]) {
        let len = (HEADER_LEN + payload.len()) as u16;
        let mut hdr = [0u8; HEADER_LEN];
        hdr[0..2].copy_from_slice(&self.sport.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dport.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.to_be_bytes());
        hdr[12] = 5 << 4; // data offset 5 words
        hdr[13] = self.flags.0;
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());
        // hdr[16..18] checksum; hdr[18..20] urgent pointer (zero)
        let acc = checksum::pseudo_header(src, dst, 6, len)
            + checksum::sum(&hdr)
            + checksum::sum(payload);
        let c = checksum::finish(acc);
        hdr[16..18].copy_from_slice(&c.to_be_bytes());
        buf.put_slice(&hdr);
        buf.put_slice(payload);
    }

    /// Parse and validate a TCP segment, returning the header and payload
    /// (options skipped).
    pub fn parse(
        data: &[u8],
        src: u32,
        dst: u32,
    ) -> Result<(TcpHeader, &[u8]), PacketError> {
        if data.len() < HEADER_LEN {
            return Err(PacketError::Truncated);
        }
        let offset = (data[12] >> 4) as usize * 4;
        if !(HEADER_LEN..=60).contains(&offset) {
            return Err(PacketError::BadHeaderLen(data[12] >> 4));
        }
        if data.len() < offset {
            return Err(PacketError::Truncated);
        }
        let acc = checksum::pseudo_header(src, dst, 6, data.len() as u16) + checksum::sum(data);
        if checksum::finish(acc) != 0 {
            return Err(PacketError::BadChecksum);
        }
        let hdr = TcpHeader {
            sport: u16::from_be_bytes([data[0], data[1]]),
            dport: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags(data[13] & 0x3F),
            window: u16::from_be_bytes([data[14], data[15]]),
        };
        Ok((hdr, &data[offset..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: u32 = 0xC6336401; // 198.51.100.1
    const DST: u32 = 0xCB007101; // 203.0.113.1

    #[test]
    fn syn_roundtrip() {
        let hdr = TcpHeader::syn(44123, 80, 0xDEADBEEF);
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, &[]);
        assert_eq!(buf.len(), HEADER_LEN);
        let (parsed, payload) = TcpHeader::parse(&buf, SRC, DST).unwrap();
        assert_eq!(parsed, hdr);
        assert!(payload.is_empty());
        assert!(parsed.flags.contains(TcpFlags::SYN));
        assert!(!parsed.flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn payload_roundtrip() {
        let hdr = TcpHeader {
            sport: 80,
            dport: 51000,
            seq: 1,
            ack: 2,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 1024,
        };
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, b"HTTP/1.1 200 OK\r\n");
        let (parsed, payload) = TcpHeader::parse(&buf, SRC, DST).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, b"HTTP/1.1 200 OK\r\n");
    }

    #[test]
    fn checksum_binds_addresses_and_content() {
        let hdr = TcpHeader::syn(1, 2, 3);
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, b"x");
        assert_eq!(TcpHeader::parse(&buf, SRC, DST + 1), Err(PacketError::BadChecksum));
        for byte in 0..buf.len() {
            let mut bad = buf.clone();
            bad[byte] ^= 0x80;
            assert!(TcpHeader::parse(&bad, SRC, DST).is_err(), "flip at {byte}");
        }
    }

    #[test]
    fn truncation() {
        let hdr = TcpHeader::syn(1, 2, 3);
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, &[]);
        for cut in 0..buf.len() {
            assert!(TcpHeader::parse(&buf[..cut], SRC, DST).is_err());
        }
    }

    #[test]
    fn bad_data_offset() {
        let hdr = TcpHeader::syn(1, 2, 3);
        let mut buf = Vec::new();
        hdr.emit(&mut buf, SRC, DST, &[]);
        buf[12] = 4 << 4; // below minimum
        assert!(matches!(
            TcpHeader::parse(&buf, SRC, DST),
            Err(PacketError::BadHeaderLen(4))
        ));
    }

    #[test]
    fn flags_algebra() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::RST));
    }
}
