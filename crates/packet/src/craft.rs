//! Complete-packet crafting helpers.
//!
//! These build full, checksummed IPv4 packets for the traffic generators,
//! the active spoofing prober, and the pcap examples — one function per
//! packet shape the study cares about.

use crate::icmp::IcmpHeader;
use crate::ipv4::Ipv4Header;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;

/// A bare TCP SYN — the unit of SYN flooding attacks (§2.1).
pub fn tcp_syn(src: u32, dst: u32, sport: u16, dport: u16, seq: u32) -> Vec<u8> {
    let mut payload = Vec::new();
    TcpHeader::syn(sport, dport, seq).emit(&mut payload, src, dst, &[]);
    let mut pkt = Vec::with_capacity(20 + payload.len());
    Ipv4Header::simple(src, dst, 6, payload.len()).emit(&mut pkt);
    pkt.extend_from_slice(&payload);
    pkt
}

/// A TCP segment with payload (regular data traffic).
pub fn tcp_data(
    src: u32,
    dst: u32,
    sport: u16,
    dport: u16,
    seq: u32,
    data: &[u8],
) -> Vec<u8> {
    let hdr = TcpHeader {
        sport,
        dport,
        seq,
        ack: 1,
        flags: crate::TcpFlags::ACK | crate::TcpFlags::PSH,
        window: 65535,
    };
    let mut payload = Vec::new();
    hdr.emit(&mut payload, src, dst, data);
    let mut pkt = Vec::with_capacity(20 + payload.len());
    Ipv4Header::simple(src, dst, 6, payload.len()).emit(&mut pkt);
    pkt.extend_from_slice(&payload);
    pkt
}

/// A UDP datagram.
pub fn udp(src: u32, dst: u32, sport: u16, dport: u16, data: &[u8]) -> Vec<u8> {
    let mut payload = Vec::new();
    UdpHeader { sport, dport }.emit(&mut payload, src, dst, data);
    let mut pkt = Vec::with_capacity(20 + payload.len());
    Ipv4Header::simple(src, dst, 17, payload.len()).emit(&mut pkt);
    pkt.extend_from_slice(&payload);
    pkt
}

/// An NTP `monlist`-style trigger packet: a tiny UDP request to port 123
/// whose spoofed source is the amplification victim. The 8-byte body is
/// the classic mode-7 MON_GETLIST request shape.
pub fn ntp_trigger(victim_src: u32, amplifier: u32, sport: u16) -> Vec<u8> {
    let body = [0x17, 0x00, 0x03, 0x2a, 0x00, 0x00, 0x00, 0x00];
    udp(victim_src, amplifier, sport, 123, &body)
}

/// An ICMP echo request.
pub fn icmp_echo(src: u32, dst: u32, ident: u16, seq: u16, data: &[u8]) -> Vec<u8> {
    let mut payload = Vec::new();
    IcmpHeader::echo_request(ident, seq).emit(&mut payload, data);
    let mut pkt = Vec::with_capacity(20 + payload.len());
    Ipv4Header::simple(src, dst, 1, payload.len()).emit(&mut pkt);
    pkt.extend_from_slice(&payload);
    pkt
}

/// A router's ICMP time-exceeded reply quoting the first 28 bytes of the
/// offending packet — the canonical *stray* traffic of §5.2: its source is
/// a genuine router interface address that may be unrouted or invalid at
/// the vantage point.
pub fn icmp_time_exceeded(router_src: u32, dst: u32, offending: &[u8]) -> Vec<u8> {
    let quote = &offending[..offending.len().min(28)];
    let mut payload = Vec::new();
    IcmpHeader::time_exceeded().emit(&mut payload, quote);
    let mut pkt = Vec::with_capacity(20 + payload.len());
    Ipv4Header::simple(router_src, dst, 1, payload.len()).emit(&mut pkt);
    pkt.extend_from_slice(&payload);
    pkt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::extract_flow;
    use spoofwatch_net::Proto;

    #[test]
    fn syn_parses_back() {
        let pkt = tcp_syn(0x0A000001, 0x0B000001, 4444, 80, 42);
        let f = extract_flow(&pkt).unwrap();
        assert_eq!(f.src, 0x0A000001);
        assert_eq!(f.dst, 0x0B000001);
        assert_eq!(f.proto, Proto::Tcp);
        assert_eq!((f.sport, f.dport), (4444, 80));
        assert_eq!(f.size as usize, pkt.len());
    }

    #[test]
    fn ntp_trigger_is_small_and_targets_123() {
        let pkt = ntp_trigger(0xC0000201, 0x08080808, 51234);
        assert!(pkt.len() < 60, "trigger packets are tiny: {}", pkt.len());
        let f = extract_flow(&pkt).unwrap();
        assert_eq!(f.dport, 123);
        assert_eq!(f.proto, Proto::Udp);
        assert_eq!(f.src, 0xC0000201, "source is the victim (spoofed)");
    }

    #[test]
    fn time_exceeded_quotes_offender() {
        let offending = udp(1, 2, 3, 4, &[0u8; 64]);
        let pkt = icmp_time_exceeded(0x0A0A0A01, 0xCB007102, &offending);
        let f = extract_flow(&pkt).unwrap();
        assert_eq!(f.proto, Proto::Icmp);
        assert_eq!((f.sport, f.dport), (0, 0));
        // 20 IP + 8 ICMP + 28 quote
        assert_eq!(pkt.len(), 56);
    }

    #[test]
    fn echo_roundtrip() {
        let pkt = icmp_echo(7, 8, 100, 1, b"pingpayload");
        let f = extract_flow(&pkt).unwrap();
        assert_eq!(f.proto, Proto::Icmp);
        assert_eq!(f.size as usize, pkt.len());
    }

    #[test]
    fn tcp_data_carries_payload() {
        let pkt = tcp_data(1, 2, 80, 5000, 1, &[0xAB; 1400]);
        assert_eq!(pkt.len(), 20 + 20 + 1400);
        let f = extract_flow(&pkt).unwrap();
        assert_eq!(f.sport, 80);
    }
}
