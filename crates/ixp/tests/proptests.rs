//! Property tests: IPFIX-lite codec round-trips, sampler statistics, and
//! fault-injection recovery for the resilient decoder.

use proptest::prelude::*;
use spoofwatch_ixp::ipfix;
use spoofwatch_ixp::PacketSampler;
use spoofwatch_net::{AppliedFault, Asn, FaultInjector, FlowRecord, Proto};

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u64>(),
        any::<u16>(),
        any::<u32>(),
    )
        .prop_map(
            |(ts, src, dst, proto, sport, dport, packets, bytes, pkt_size, member)| FlowRecord {
                ts,
                src,
                dst,
                proto: Proto::from_number(proto),
                sport,
                dport,
                packets,
                bytes,
                pkt_size,
                member: Asn(member),
                ttl: 0,
            },
        )
}

/// Flows that satisfy the traffic generator's invariant
/// (`bytes == packets * pkt_size`), which is what the resilient decoder
/// keys its record-plausibility check on.
fn arb_plausible_flow() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        1u32..10_000,
        40u16..1500,
        any::<u32>(),
    )
        .prop_map(
            |(ts, src, dst, proto, sport, dport, packets, pkt_size, member)| FlowRecord {
                ts,
                src,
                dst,
                proto: Proto::from_number(proto),
                sport,
                dport,
                packets,
                bytes: packets as u64 * pkt_size as u64,
                pkt_size,
                member: Asn(member),
                ttl: 0,
            },
        )
}

/// Clean-stream byte ranges a fault can have damaged. Insertions shift
/// everything after the insertion point, but only the record straddling
/// that point can actually be lost.
fn damaged_ranges(fault: &AppliedFault, clean_len: usize) -> Vec<(usize, usize)> {
    match *fault {
        AppliedFault::BitFlip { offset, .. } => vec![(offset, offset + 1)],
        AppliedFault::Truncate { new_len } => vec![(new_len, clean_len)],
        AppliedFault::TornTail { torn } => vec![(clean_len - torn, clean_len)],
        AppliedFault::Duplicate { start, .. } => vec![(start.saturating_sub(1), start + 1)],
        AppliedFault::Garbage { offset, .. } => vec![(offset.saturating_sub(1), offset + 1)],
        AppliedFault::Reorder { a, b, len } => vec![(a, a + len), (b, b + len)],
    }
}

/// How many of `spans` intersect none of `damaged`.
fn count_undamaged(spans: &[(usize, usize)], damaged: &[(usize, usize)]) -> usize {
    spans
        .iter()
        .filter(|&&(s, e)| damaged.iter().all(|&(ds, de)| e <= ds || de <= s))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One injected fault of any kind loses at most the records in the
    /// faulted byte neighborhood, and the health accounting reconciles
    /// exactly.
    #[test]
    fn ipfix_single_fault_loses_only_neighborhood(
        flows in prop::collection::vec(arb_plausible_flow(), 3..40),
        seed in any::<u64>(),
    ) {
        let clean = ipfix::encode(&flows);
        let mut dirty = clean.clone();
        let mut inj = FaultInjector::new(seed).protect_prefix(ipfix::HEADER_LEN);
        let fault = match inj.any_single(&mut dirty, ipfix::RECORD_LEN) {
            Some(f) => f,
            None => return Ok(()),
        };
        let (recovered, health) = ipfix::decode_resilient(&dirty);
        prop_assert!(
            health.reconciles(),
            "accounting broken under {fault:?}: {health}"
        );
        let spans: Vec<(usize, usize)> =
            (0..flows.len())
                .map(|i| {
                    (
                        ipfix::HEADER_LEN + ipfix::RECORD_LEN * i,
                        ipfix::HEADER_LEN + ipfix::RECORD_LEN * (i + 1),
                    )
                })
                .collect();
        let undamaged = count_undamaged(&spans, &damaged_ranges(&fault, clean.len()));
        prop_assert!(
            recovered.len() >= undamaged,
            "fault {:?}: recovered {} of {} undamaged records ({} total)",
            fault, recovered.len(), undamaged, flows.len()
        );
    }

    /// The resilient decoder never panics and always reconciles its byte
    /// accounting, whatever the input.
    #[test]
    fn ipfix_resilient_reconciles_on_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let (_, health) = ipfix::decode_resilient(&data);
        prop_assert!(health.reconciles(), "{health}");
    }

    /// IPFIX-lite encode→decode is the identity for arbitrary records.
    #[test]
    fn ipfix_roundtrip(flows in prop::collection::vec(arb_flow(), 0..50)) {
        let bytes = ipfix::encode(&flows);
        prop_assert_eq!(ipfix::decode(&bytes).unwrap(), flows);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn ipfix_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = ipfix::decode(&data);
    }

    /// Truncating a valid stream yields a clean prefix or a truncation
    /// error — never phantom records.
    #[test]
    fn ipfix_truncation_yields_prefix(
        flows in prop::collection::vec(arb_flow(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = ipfix::encode(&flows);
        let cut = ipfix::HEADER_LEN
            + ((bytes.len() - ipfix::HEADER_LEN) as f64 * cut_frac) as usize;
        if let Ok(decoded) = ipfix::decode(&bytes[..cut]) {
            prop_assert!(decoded.len() <= flows.len());
            prop_assert_eq!(&decoded[..], &flows[..decoded.len()]);
        }
    }

    /// The sampler never produces more sampled than true packets, and
    /// rate 1 is the identity.
    #[test]
    fn sampler_bounds(true_packets in 0u64..100_000, rate in 1u32..10_000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = PacketSampler::new(rate);
        let k = s.sample_count(&mut rng, true_packets);
        if rate == 1 {
            prop_assert_eq!(k as u64, true_packets);
        }
        // Allow generous slack for the normal approximation's tail.
        let p = 1.0 / rate as f64;
        let mean = true_packets as f64 * p;
        let sd = (true_packets as f64 * p * (1.0 - p)).sqrt();
        prop_assert!((k as f64) <= mean + 8.0 * sd + 1.0, "k={k} mean={mean} sd={sd}");
    }
}

/// Acceptance: with 1% of bytes corrupted, the decoder recovers at least
/// 99% of the unaffected records (each flipped byte can affect at most
/// one record, so `n - hits` is a floor on the unaffected count) and the
/// byte accounting stays exact.
#[test]
fn ipfix_one_percent_corruption_recovers_unaffected_records() {
    use rand::{rngs::StdRng, RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(77);
    let n = 2_000usize;
    let flows: Vec<FlowRecord> = (0..n)
        .map(|_| {
            let packets: u32 = rng.random_range(1..500);
            let pkt_size: u16 = rng.random_range(40..1500);
            FlowRecord {
                ts: rng.random(),
                src: rng.random(),
                dst: rng.random(),
                proto: Proto::from_number(rng.random_range(0..20)),
                sport: rng.random(),
                dport: rng.random(),
                packets,
                bytes: packets as u64 * pkt_size as u64,
                pkt_size,
                member: Asn(rng.random_range(1..60_000)),
                ttl: 0,
            }
        })
        .collect();
    let mut dirty = ipfix::encode(&flows);
    let hits = FaultInjector::new(78)
        .protect_prefix(ipfix::HEADER_LEN)
        .corrupt_percent(&mut dirty, 1.0);
    assert!(hits > 0, "corruption must actually land");
    let (recovered, health) = ipfix::decode_resilient(&dirty);
    assert!(health.reconciles(), "{health}");
    let unaffected = n - hits.min(n);
    assert!(
        recovered.len() as f64 >= 0.99 * unaffected as f64,
        "recovered {} of >= {} unaffected records ({hits} corrupted bytes): {health}",
        recovered.len(),
        unaffected,
    );
}
