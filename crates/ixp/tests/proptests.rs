//! Property tests: IPFIX-lite codec round-trips and sampler statistics.

use proptest::prelude::*;
use spoofwatch_ixp::ipfix;
use spoofwatch_ixp::PacketSampler;
use spoofwatch_net::{Asn, FlowRecord, Proto};

fn arb_flow() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u64>(),
        any::<u16>(),
        any::<u32>(),
    )
        .prop_map(
            |(ts, src, dst, proto, sport, dport, packets, bytes, pkt_size, member)| FlowRecord {
                ts,
                src,
                dst,
                proto: Proto::from_number(proto),
                sport,
                dport,
                packets,
                bytes,
                pkt_size,
                member: Asn(member),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// IPFIX-lite encode→decode is the identity for arbitrary records.
    #[test]
    fn ipfix_roundtrip(flows in prop::collection::vec(arb_flow(), 0..50)) {
        let bytes = ipfix::encode(&flows);
        prop_assert_eq!(ipfix::decode(&bytes).unwrap(), flows);
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn ipfix_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = ipfix::decode(&data);
    }

    /// Truncating a valid stream yields a clean prefix or a truncation
    /// error — never phantom records.
    #[test]
    fn ipfix_truncation_yields_prefix(
        flows in prop::collection::vec(arb_flow(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = ipfix::encode(&flows);
        let cut = 6 + ((bytes.len() - 6) as f64 * cut_frac) as usize;
        if let Ok(decoded) = ipfix::decode(&bytes[..cut]) {
            prop_assert!(decoded.len() <= flows.len());
            prop_assert_eq!(&decoded[..], &flows[..decoded.len()]);
        }
    }

    /// The sampler never produces more sampled than true packets, and
    /// rate 1 is the identity.
    #[test]
    fn sampler_bounds(true_packets in 0u64..100_000, rate in 1u32..10_000, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = PacketSampler::new(rate);
        let k = s.sample_count(&mut rng, true_packets);
        if rate == 1 {
            prop_assert_eq!(k as u64, true_packets);
        }
        // Allow generous slack for the normal approximation's tail.
        let p = 1.0 / rate as f64;
        let mean = true_packets as f64 * p;
        let sd = (true_packets as f64 * p * (1.0 - p)).sqrt();
        prop_assert!((k as f64) <= mean + 8.0 * sd + 1.0, "k={k} mean={mean} sd={sd}");
    }
}
