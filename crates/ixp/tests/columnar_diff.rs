//! Differential tests: `decode_columnar` must be byte-for-byte equal to
//! `decode_resilient` — same records, same health scalars — across every
//! corruption regime the fault injector can produce and every supported
//! wire layout. The production code routes both decoders through one
//! shared walk, so these tests guard the *seam* (sink behavior, arena
//! reuse across successive buffers), not two independent decoders.

use spoofwatch_ixp::ipfix::{
    decode_columnar, decode_resilient, encode, encode_padded, encode_v1, HEADER_LEN, RECORD_LEN,
};
use spoofwatch_net::{Asn, FaultInjector, FlowBatch, FlowRecord, IngestHealth, Proto};

fn plausible_sample(n: u32, seed: u32) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| {
            let j = i.wrapping_mul(2654435761).wrapping_add(seed);
            let packets = 1 + j % 40;
            let pkt_size = 40 + (j % 1400) as u16;
            FlowRecord {
                ts: 100 + i,
                src: 0x0A00_0000u32.wrapping_add(j),
                dst: 0xC000_0200 + i,
                proto: if i % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                sport: 1025 + (j % 60000) as u16,
                dport: if i % 3 == 0 { 53 } else { 80 },
                packets,
                bytes: packets as u64 * pkt_size as u64,
                pkt_size,
                member: Asn(64496 + i % 7),
                ttl: 0,
            }
        })
        .collect()
}

fn assert_health_eq(got: &IngestHealth, want: &IngestHealth) {
    assert_eq!(got.input_len, want.input_len);
    assert_eq!(got.ok_records, want.ok_records);
    assert_eq!(got.ok_bytes, want.ok_bytes);
    assert_eq!(got.quarantined_bytes, want.quarantined_bytes);
    assert_eq!(got.resyncs, want.resyncs);
    assert_eq!(got.unrecoverable, want.unrecoverable);
}

/// The core differential check. Reuses the caller's batch so a sequence
/// of calls also exercises arena reuse (stale contents from the prior
/// buffer must never leak into the next result).
fn assert_columnar_matches_resilient(bytes: &[u8], batch: &mut FlowBatch) {
    let (want_flows, want_health) = decode_resilient(bytes);
    let got_health = decode_columnar(bytes, batch);
    assert!(batch.columns_aligned());
    assert_eq!(batch.to_records(), want_flows);
    assert_health_eq(&got_health, &want_health);
    assert!(got_health.reconciles());
    assert_eq!(
        got_health.ok_records, want_flows.len() as u64,
        "resilience accounting must cover every emitted record"
    );
}

#[test]
fn columnar_equals_resilient_clean() {
    let mut batch = FlowBatch::new();
    for n in [0u32, 1, 7, 500] {
        assert_columnar_matches_resilient(&encode(&plausible_sample(n, 1)), &mut batch);
    }
}

#[test]
fn columnar_equals_resilient_under_percent_corruption() {
    // 0%, 1%, and 5% random byte corruption past the header, many seeds.
    let mut batch = FlowBatch::new();
    for seed in 0..20u64 {
        for percent in [0.0f64, 1.0, 5.0] {
            let mut bytes = encode(&plausible_sample(200, seed as u32));
            let mut inj = FaultInjector::new(seed * 31 + percent as u64).protect_prefix(HEADER_LEN);
            inj.corrupt_percent(&mut bytes[HEADER_LEN..], percent);
            assert_columnar_matches_resilient(&bytes, &mut batch);
        }
    }
}

#[test]
fn columnar_equals_resilient_torn_and_garbage() {
    let mut batch = FlowBatch::new();
    for seed in 0..20u64 {
        // Torn tail: a partial final record.
        let mut torn = encode(&plausible_sample(64, seed as u32));
        FaultInjector::new(seed)
            .protect_prefix(HEADER_LEN)
            .torn_tail(&mut torn, RECORD_LEN - 1);
        assert_columnar_matches_resilient(&torn, &mut batch);

        // Garbage inserted mid-stream (desynchronizes the stride).
        let mut garbled = encode(&plausible_sample(64, seed as u32));
        FaultInjector::new(seed + 1000)
            .protect_prefix(HEADER_LEN)
            .insert_garbage(&mut garbled, 1 + (seed as usize % 17));
        assert_columnar_matches_resilient(&garbled, &mut batch);

        // The injector's full single-fault repertoire.
        let mut any = encode(&plausible_sample(64, seed as u32));
        let mut inj = FaultInjector::new(seed + 2000).protect_prefix(HEADER_LEN);
        for _ in 0..3 {
            inj.any_single(&mut any, RECORD_LEN);
        }
        assert_columnar_matches_resilient(&any, &mut batch);
    }
}

#[test]
fn columnar_equals_resilient_across_layouts_and_bad_headers() {
    let mut batch = FlowBatch::new();
    let flows = plausible_sample(60, 9);
    assert_columnar_matches_resilient(&encode_v1(&flows), &mut batch);
    assert_columnar_matches_resilient(&encode_padded(&flows, RECORD_LEN + 9), &mut batch);
    // Unrecoverable header faults: both must abandon identically.
    assert_columnar_matches_resilient(b"XXXX\x00\x01whatever", &mut batch);
    assert_columnar_matches_resilient(b"", &mut batch);
    assert_columnar_matches_resilient(&encode(&[])[..HEADER_LEN - 1], &mut batch);
}

#[test]
fn arena_reuse_never_leaks_across_buffers() {
    // Decode a large buffer, then a small one, into the same batch: the
    // result must equal a fresh decode of the small buffer (clear() is
    // the whole contract), and the columns must not have been reallocated.
    let big = encode(&plausible_sample(500, 3));
    let small = encode(&plausible_sample(5, 4));
    let mut batch = FlowBatch::new();
    decode_columnar(&big, &mut batch);
    assert_eq!(batch.len(), 500);
    let arena = batch.src.as_ptr();
    let health = decode_columnar(&small, &mut batch);
    assert_eq!(batch.src.as_ptr(), arena, "small decode must reuse the arena");
    let (want_flows, want_health) = decode_resilient(&small);
    assert_eq!(batch.to_records(), want_flows);
    assert_health_eq(&health, &want_health);
}
