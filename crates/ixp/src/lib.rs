//! # spoofwatch-ixp
//!
//! The vantage point: a large IXP whose switching fabric carries the
//! inter-domain traffic of several hundred member ASes, observed as
//! packet-sampled IPFIX flow summaries (the paper samples 1 of every
//! 10 000 packets).
//!
//! * [`ipfix`] — a compact binary codec ("IPFIX-lite") for persisting and
//!   replaying flow records;
//! * [`sampler`] — random 1-out-of-N packet sampling, turning true
//!   traffic into what the collector actually records;
//! * [`traffic`] — the seeded traffic generator: regular diurnal member
//!   traffic plus every phenomenon the paper observes (NAT bogon leaks,
//!   randomly spoofed SYN floods, selectively spoofed NTP amplification
//!   with responses, Steam floods from unrouted space, stray router
//!   ICMP, provider-assigned space, hidden-org and tunnel traffic), each
//!   flow carrying a ground-truth label so detector output is scorable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Decode hot paths must surface faults through the ingest taxonomy, not
// panic; tests are exempt via cfg.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod chunked;
pub mod ipfix;
pub mod live;
pub mod sampler;
pub mod traffic;

pub use chunked::{ChunkSpan, ChunkedIpfixReader, FlowChunk};
pub use live::{
    run_live_producer, LiveChunk, LiveProducerConfig, LiveProducerStats, LiveScenario,
    LIVE_PROTO_VERSION, LIVE_WIRE_MAGIC,
};
pub use sampler::PacketSampler;
pub use traffic::{Trace, TrafficConfig, TrafficLabel};
