//! Live streaming producer: seeded scenario traffic paced over a wire.
//!
//! File replay exercises the study pipeline at whatever rate the disk
//! allows; a *live* study has to survive traffic arriving on its own
//! schedule. This module is the sending half of that mode — a producer
//! that walks a seeded scenario through [`ChunkedIpfixReader`] and
//! streams the chunks over a [`ShardTransport`] at a target record
//! rate with burst shaping, under **credit-based admission control**:
//! the consumer grants an absolute send window (`Credit { up_to_seq }`)
//! and the producer never sends a chunk it holds no credit for, so a
//! slow study applies backpressure at the wire instead of ballooning
//! the consumer's memory.
//!
//! Message flow (producer ⇄ consumer):
//!
//! ```text
//! → Hello   { version, fingerprint, chunk_records, target_rps }
//! ← Welcome { window }
//! ← Resume  { byte_cursor, seq }      (initial position; also go-back-N)
//! ← Credit  { up_to_seq }             (absolute, monotonic, loss-tolerant)
//! → Chunk*  (seq < up_to_seq only)
//! → Finish  { next_seq }              (EOF, or reply to Stop)
//! ← Stop                              (begin graceful drain)
//! ← Bye                               (session over)
//! ```
//!
//! Every message rides one `spoofwatch_net::wire` frame (magic `SWLV`),
//! so corruption is caught by the frame CRC and decoding here is total:
//! structural nonsense yields `None`, counted as a protocol fault,
//! never a panic.

use crate::chunked::{ChunkedIpfixReader, FlowChunk};
use spoofwatch_net::{Asn, FlowRecord, IngestHealth, Proto, ShardTransport};
use std::io;
use std::time::{Duration, Instant};

/// Frame magic for live-session messages.
pub const LIVE_WIRE_MAGIC: [u8; 4] = *b"SWLV";
/// Live protocol version, negotiated in `Hello`.
pub const LIVE_PROTO_VERSION: u16 = 1;

/// `Fatal` code: the peer refused the session identity (protocol
/// version or stream fingerprint mismatch).
pub const LIVE_FATAL_IDENTITY: u16 = 1;
/// `Fatal` code: unrecoverable internal error.
pub const LIVE_FATAL_INTERNAL: u16 = 2;

const MSG_HELLO: u8 = 1;
const MSG_WELCOME: u8 = 2;
const MSG_CREDIT: u8 = 3;
const MSG_CHUNK: u8 = 4;
const MSG_FINISH: u8 = 5;
const MSG_RESUME: u8 = 6;
const MSG_STOP: u8 = 7;
const MSG_BYE: u8 = 8;
const MSG_FATAL: u8 = 9;

/// One stream chunk on the live wire: the reader's sequence number and
/// byte span plus the span's decode-health scalars (itemized quarantine
/// events do not travel; the consumer's runner only absorbs scalars).
#[derive(Debug, Clone, PartialEq)]
pub struct LiveChunk {
    /// Position of this chunk in the stream, starting at 0.
    pub seq: u64,
    /// First input byte the chunk covers.
    pub byte_start: u64,
    /// One past the last input byte; the resume cursor.
    pub byte_end: u64,
    /// Decode health of the span (scalars only on the wire).
    pub health: IngestHealth,
    /// Records recovered from the span, in stream order.
    pub flows: Vec<FlowRecord>,
}

impl LiveChunk {
    /// Wire view of a decoded chunk (drops itemized health events —
    /// only scalars travel).
    pub fn from_chunk(c: &FlowChunk) -> LiveChunk {
        let mut health = c.health.clone();
        health.events = Vec::new();
        health.events_dropped = 0;
        LiveChunk {
            seq: c.seq,
            byte_start: c.byte_start,
            byte_end: c.byte_end,
            health,
            flows: c.flows.clone(),
        }
    }

    /// Convert back into the reader's chunk type for the consumer's
    /// study runner.
    pub fn into_chunk(self) -> FlowChunk {
        FlowChunk {
            seq: self.seq,
            byte_start: self.byte_start,
            byte_end: self.byte_end,
            flows: self.flows,
            health: self.health,
        }
    }
}

/// Every message either side of a live link can send.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Producer → consumer: identify the stream after connecting.
    Hello {
        /// Must equal [`LIVE_PROTO_VERSION`].
        proto_version: u16,
        /// [`ChunkedIpfixReader::fingerprint`] of the scenario — binds
        /// the consumer's checkpoints to this exact stream.
        fingerprint: u64,
        /// Records per chunk the producer walks with.
        chunk_records: u32,
        /// Target offered rate in records/second (0 = line rate);
        /// informational, echoed into the consumer's session report.
        target_rps: u32,
    },
    /// Consumer → producer: accept, advertising the admission window
    /// (maximum chunks ever buffered consumer-side).
    Welcome {
        /// Admission-buffer bound in chunks.
        window: u32,
    },
    /// Consumer → producer: absolute send-window grant. The producer
    /// may send any chunk with `seq < up_to_seq`. Grants are monotonic
    /// and idempotent, so a lost or reordered grant is harmless.
    Credit {
        /// One past the highest chunk sequence the producer may send.
        up_to_seq: u64,
    },
    /// Producer → consumer: one paced stream chunk.
    Chunk(LiveChunk),
    /// Producer → consumer: the stream is exhausted (or a `Stop` was
    /// honored); `next_seq` is one past the last chunk sent, so the
    /// consumer can detect missing frames and ask to resume.
    Finish {
        /// One past the last chunk sequence.
        next_seq: u64,
    },
    /// Consumer → producer: stream (or re-stream) from this position —
    /// sent once after the handshake from the consumer's checkpoint,
    /// and again whenever a gap demands go-back-N retransmission.
    Resume {
        /// Byte cursor the next chunk must start at.
        byte_cursor: u64,
        /// Sequence number of the next chunk.
        seq: u64,
    },
    /// Consumer → producer: begin graceful drain. No further credit
    /// will be granted; the producer replies `Finish` and waits for
    /// `Bye`.
    Stop,
    /// Consumer → producer: the session is over; disconnect.
    Bye,
    /// Either side: unrecoverable failure (`LIVE_FATAL_*` code).
    Fatal {
        /// One of the `LIVE_FATAL_*` codes.
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_be_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| {
            u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
        })
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_flow(out: &mut Vec<u8>, f: &FlowRecord) {
    put_u32(out, f.ts);
    put_u32(out, f.src);
    put_u32(out, f.dst);
    out.push(f.proto.number());
    put_u16(out, f.sport);
    put_u16(out, f.dport);
    put_u32(out, f.packets);
    put_u64(out, f.bytes);
    put_u16(out, f.pkt_size);
    put_u32(out, f.member.0);
    out.push(f.ttl);
}

fn get_flow(r: &mut Reader<'_>) -> Option<FlowRecord> {
    Some(FlowRecord {
        ts: r.u32()?,
        src: r.u32()?,
        dst: r.u32()?,
        proto: Proto::from_number(r.u8()?),
        sport: r.u16()?,
        dport: r.u16()?,
        packets: r.u32()?,
        bytes: r.u64()?,
        pkt_size: r.u16()?,
        member: Asn(r.u32()?),
        ttl: r.u8()?,
    })
}

fn put_health(out: &mut Vec<u8>, h: &IngestHealth) {
    put_u64(out, h.input_len);
    put_u64(out, h.ok_records);
    put_u64(out, h.ok_bytes);
    put_u64(out, h.resyncs);
    put_u64(out, h.quarantined_bytes);
    for c in h.fault_counts {
        put_u64(out, c);
    }
    out.push(h.unrecoverable as u8);
}

fn get_health(r: &mut Reader<'_>) -> Option<IngestHealth> {
    let input_len = r.u64()?;
    let ok_records = r.u64()?;
    let ok_bytes = r.u64()?;
    let resyncs = r.u64()?;
    let quarantined_bytes = r.u64()?;
    let mut fault_counts = [0u64; 5];
    for c in &mut fault_counts {
        *c = r.u64()?;
    }
    let unrecoverable = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    Some(IngestHealth {
        input_len,
        ok_records,
        ok_bytes,
        resyncs,
        quarantined_bytes,
        events: Vec::new(),
        events_dropped: 0,
        fault_counts,
        unrecoverable,
    })
}

impl Msg {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Msg::Hello {
                proto_version,
                fingerprint,
                chunk_records,
                target_rps,
            } => {
                out.push(MSG_HELLO);
                put_u16(&mut out, *proto_version);
                put_u64(&mut out, *fingerprint);
                put_u32(&mut out, *chunk_records);
                put_u32(&mut out, *target_rps);
            }
            Msg::Welcome { window } => {
                out.push(MSG_WELCOME);
                put_u32(&mut out, *window);
            }
            Msg::Credit { up_to_seq } => {
                out.push(MSG_CREDIT);
                put_u64(&mut out, *up_to_seq);
            }
            Msg::Chunk(c) => {
                out.push(MSG_CHUNK);
                put_u64(&mut out, c.seq);
                put_u64(&mut out, c.byte_start);
                put_u64(&mut out, c.byte_end);
                put_health(&mut out, &c.health);
                put_u32(&mut out, c.flows.len() as u32);
                for f in &c.flows {
                    put_flow(&mut out, f);
                }
            }
            Msg::Finish { next_seq } => {
                out.push(MSG_FINISH);
                put_u64(&mut out, *next_seq);
            }
            Msg::Resume { byte_cursor, seq } => {
                out.push(MSG_RESUME);
                put_u64(&mut out, *byte_cursor);
                put_u64(&mut out, *seq);
            }
            Msg::Stop => out.push(MSG_STOP),
            Msg::Bye => out.push(MSG_BYE),
            Msg::Fatal { code, detail } => {
                out.push(MSG_FATAL);
                put_u16(&mut out, *code);
                let bytes = detail.as_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Decode a frame payload; `None` on any structural damage.
    pub fn decode(payload: &[u8]) -> Option<Msg> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            MSG_HELLO => Msg::Hello {
                proto_version: r.u16()?,
                fingerprint: r.u64()?,
                chunk_records: r.u32()?,
                target_rps: r.u32()?,
            },
            MSG_WELCOME => Msg::Welcome { window: r.u32()? },
            MSG_CREDIT => Msg::Credit { up_to_seq: r.u64()? },
            MSG_CHUNK => {
                let seq = r.u64()?;
                let byte_start = r.u64()?;
                let byte_end = r.u64()?;
                let health = get_health(&mut r)?;
                let n = r.u32()? as usize;
                // Cap pre-allocation against nonsense counts.
                let mut flows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    flows.push(get_flow(&mut r)?);
                }
                Msg::Chunk(LiveChunk {
                    seq,
                    byte_start,
                    byte_end,
                    health,
                    flows,
                })
            }
            MSG_FINISH => Msg::Finish { next_seq: r.u64()? },
            MSG_RESUME => Msg::Resume {
                byte_cursor: r.u64()?,
                seq: r.u64()?,
            },
            MSG_STOP => Msg::Stop,
            MSG_BYE => Msg::Bye,
            MSG_FATAL => {
                let code = r.u16()?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                Msg::Fatal {
                    code,
                    detail: String::from_utf8_lossy(bytes).into_owned(),
                }
            }
            _ => return None,
        };
        if !r.done() {
            return None;
        }
        Some(msg)
    }
}

/// A replayable seeded scenario: the encoded IPFIX-lite buffer plus
/// its chunking. The producer walks it with [`ChunkedIpfixReader`], so
/// the stream fingerprint, chunk boundaries, and decode health are
/// identical to what a file-replay study of the same buffer sees —
/// which is what makes live-vs-replay bit-identity provable.
#[derive(Debug, Clone)]
pub struct LiveScenario {
    data: Vec<u8>,
    chunk_records: usize,
}

impl LiveScenario {
    /// A scenario over an encoded IPFIX-lite buffer, walked
    /// `chunk_records` records per chunk (minimum 1).
    pub fn from_ipfix(data: Vec<u8>, chunk_records: usize) -> LiveScenario {
        LiveScenario {
            data,
            chunk_records: chunk_records.max(1),
        }
    }

    /// The stream identity the producer announces in `Hello`.
    pub fn fingerprint(&self) -> u64 {
        ChunkedIpfixReader::new(&self.data, self.chunk_records).fingerprint()
    }

    /// Records per chunk.
    pub fn chunk_records(&self) -> usize {
        self.chunk_records
    }

    /// The encoded buffer (for running a replay study over the same
    /// bytes).
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

/// Producer-side pacing, chaos, and watchdog knobs.
#[derive(Debug, Clone)]
pub struct LiveProducerConfig {
    /// Target offered rate in records/second; 0 streams at line rate
    /// (credit-bound only).
    pub target_records_per_sec: u32,
    /// Burst shaping: chunks are released in bursts of this many, with
    /// the inter-burst gap stretched to preserve the average rate.
    /// 1 = smooth pacing.
    pub burst_chunks: u32,
    /// How long to wait for `Welcome` and the first `Resume`.
    pub handshake_timeout_ms: u64,
    /// Producer-side credit-stall watchdog: error out if the consumer
    /// grants no new credit for this long while chunks are ready to
    /// send. Bounds every wait against a wedged consumer.
    pub credit_stall_ms: u64,
    /// After sending `Finish`, how long to wait for `Bye` before
    /// giving up and disconnecting anyway.
    pub drain_timeout_ms: u64,
    /// Chaos schedule: `(after_seq, pause_ms)` — sleep `pause_ms`
    /// before sending the chunk with sequence `after_seq`, simulating
    /// a stalled upstream tap.
    pub pauses: Vec<(u64, u64)>,
}

impl Default for LiveProducerConfig {
    fn default() -> Self {
        LiveProducerConfig {
            target_records_per_sec: 0,
            burst_chunks: 1,
            handshake_timeout_ms: 5_000,
            credit_stall_ms: 10_000,
            drain_timeout_ms: 5_000,
            pauses: Vec::new(),
        }
    }
}

/// What a producer session accomplished.
#[derive(Debug, Clone, Default)]
pub struct LiveProducerStats {
    /// Chunks sent (counting go-back-N retransmissions).
    pub chunks_sent: u64,
    /// Records inside those chunks.
    pub records_sent: u64,
    /// `Resume` requests served after the initial position.
    pub resumes_served: u64,
    /// Chaos pauses taken from the configured schedule.
    pub pauses_taken: u64,
    /// CRC-valid frames whose payload failed to decode as a message.
    pub protocol_faults: u64,
    /// Whether `Finish` was sent (stream exhausted or `Stop` honored).
    pub finished: bool,
    /// Whether the consumer acknowledged the session end with `Bye`.
    pub acked: bool,
}

/// Poll granularity while pacing or credit-blocked.
const POLL: Duration = Duration::from_millis(5);

/// Stream `scenario` over `transport` until EOF, `Stop`, or a fatal
/// link error. Blocks the calling thread; run it on its own thread (or
/// process) like a real upstream tap.
///
/// Protocol: send `Hello`, await `Welcome` then the consumer's initial
/// `Resume`, then release chunks under credit and pacing. `Resume`
/// mid-stream seeks the reader back (go-back-N); `Stop` freezes
/// sending and answers `Finish`; `Bye` ends the session.
pub fn run_live_producer(
    transport: &mut ShardTransport,
    scenario: &LiveScenario,
    cfg: &LiveProducerConfig,
) -> io::Result<LiveProducerStats> {
    let mut reader = ChunkedIpfixReader::new(&scenario.data, scenario.chunk_records);
    let mut stats = LiveProducerStats::default();

    transport.send(
        &Msg::Hello {
            proto_version: LIVE_PROTO_VERSION,
            fingerprint: reader.fingerprint(),
            chunk_records: scenario.chunk_records as u32,
            target_rps: cfg.target_records_per_sec,
        }
        .encode(),
    )?;

    // Await Welcome.
    let handshake_deadline = Instant::now() + Duration::from_millis(cfg.handshake_timeout_ms);
    loop {
        let remaining = handshake_deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no Welcome before handshake timeout",
            ));
        }
        if let Some(payload) = transport.recv(remaining)? {
            match Msg::decode(&payload) {
                Some(Msg::Welcome { .. }) => break,
                Some(Msg::Fatal { code, detail }) => {
                    return Err(io::Error::other(format!(
                        "consumer refused session (code {code}): {detail}"
                    )));
                }
                Some(_) => {} // stray pre-handshake frame: ignore
                None => stats.protocol_faults += 1,
            }
        }
    }

    let interval_ns: u64 = if cfg.target_records_per_sec == 0 {
        0
    } else {
        (scenario.chunk_records as u64)
            .saturating_mul(1_000_000_000)
            .saturating_div(cfg.target_records_per_sec.max(1) as u64)
    };
    let burst = cfg.burst_chunks.max(1) as u64;

    let mut started = false; // first Resume received
    let mut stopping = false;
    // On Stop we freeze forward progress at the then-current position;
    // a Resume during the drain rewinds below it, and we re-send up to
    // it (always within already-granted credit) before re-Finishing.
    let mut stop_at: u64 = u64::MAX;
    let mut finished_sent = false;
    let mut credit_up_to: u64 = 0;
    let mut send_seq: u64 = 0;
    let mut pace_start = Instant::now();
    let mut paced_chunks: u64 = 0; // chunks released since pace_start
    let mut last_progress = Instant::now();
    let mut finish_sent_at: Option<Instant> = None;
    let mut pauses = cfg.pauses.clone();

    loop {
        // Drain control traffic. Block only as long as we have nothing
        // better to do.
        let wait = if !started {
            handshake_deadline.saturating_duration_since(Instant::now())
        } else if stopping || finished_sent || send_seq >= credit_up_to {
            POLL * 4
        } else {
            Duration::ZERO
        };
        if !started && wait.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "no initial Resume before handshake timeout",
            ));
        }
        match transport.recv(wait.max(Duration::from_millis(1))) {
            Ok(Some(payload)) => match Msg::decode(&payload) {
                Some(Msg::Credit { up_to_seq }) => {
                    if up_to_seq > credit_up_to {
                        credit_up_to = up_to_seq;
                        last_progress = Instant::now();
                    }
                }
                Some(Msg::Resume { byte_cursor, seq }) => {
                    reader.seek(byte_cursor, seq);
                    send_seq = seq;
                    if started {
                        stats.resumes_served += 1;
                    }
                    started = true;
                    // A resume un-finishes the stream: the consumer is
                    // missing chunks we must re-send (during a Stop
                    // drain, only up to `stop_at`).
                    finished_sent = false;
                    finish_sent_at = None;
                    last_progress = Instant::now();
                    // Restart pacing from here: replayed chunks are
                    // paced like fresh ones.
                    pace_start = Instant::now();
                    paced_chunks = 0;
                }
                Some(Msg::Stop) => {
                    if !stopping {
                        stopping = true;
                        stop_at = send_seq;
                    }
                }
                Some(Msg::Bye) => {
                    stats.acked = true;
                    return Ok(stats);
                }
                Some(Msg::Fatal { code, detail }) => {
                    return Err(io::Error::other(format!(
                        "consumer fatal (code {code}): {detail}"
                    )));
                }
                Some(_) => {}
                None => stats.protocol_faults += 1,
            },
            Ok(None) => {}
            Err(e) => {
                // Link gone. If we already finished, treat a lost Bye
                // as a clean-enough end; otherwise surface it.
                if finished_sent {
                    return Ok(stats);
                }
                return Err(e);
            }
        }
        if !started {
            continue;
        }

        if stopping && !finished_sent && send_seq >= stop_at {
            transport.send(&Msg::Finish { next_seq: send_seq }.encode())?;
            stats.finished = true;
            finished_sent = true;
            finish_sent_at = Some(Instant::now());
        }

        if finished_sent {
            // Drain phase: only Bye (handled above) or a drain timeout
            // ends the session.
            if let Some(at) = finish_sent_at {
                if at.elapsed() >= Duration::from_millis(cfg.drain_timeout_ms) {
                    return Ok(stats);
                }
            }
            continue;
        }

        if send_seq >= credit_up_to {
            // Credit-blocked: the watchdog bounds this wait.
            if last_progress.elapsed() >= Duration::from_millis(cfg.credit_stall_ms) {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "credit stall: consumer granted no credit within the watchdog bound",
                ));
            }
            continue;
        }

        // Pacing: chunk k of this pacing epoch is due when its burst is.
        if interval_ns > 0 {
            let due_ns = (paced_chunks / burst) * burst * interval_ns;
            let elapsed_ns = pace_start.elapsed().as_nanos() as u64;
            if elapsed_ns < due_ns {
                std::thread::sleep(Duration::from_nanos((due_ns - elapsed_ns).min(5_000_000)));
                continue;
            }
        }

        match reader.next_chunk() {
            Some(chunk) => {
                if let Some(i) = pauses.iter().position(|&(at, _)| at == chunk.seq) {
                    let (_, pause_ms) = pauses.remove(i);
                    std::thread::sleep(Duration::from_millis(pause_ms));
                    stats.pauses_taken += 1;
                }
                let wire = LiveChunk::from_chunk(&chunk);
                send_seq = chunk.seq + 1;
                stats.chunks_sent += 1;
                stats.records_sent += wire.flows.len() as u64;
                paced_chunks += 1;
                last_progress = Instant::now();
                transport.send(&Msg::Chunk(wire).encode())?;
            }
            None => {
                transport.send(&Msg::Finish { next_seq: send_seq }.encode())?;
                stats.finished = true;
                finished_sent = true;
                finish_sent_at = Some(Instant::now());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_flow(i: u32) -> FlowRecord {
        FlowRecord {
            ts: i,
            src: 0x0A00_0000 + i,
            dst: 0xC0A8_0000 + i,
            proto: Proto::from_number((i % 7) as u8),
            sport: (i * 13) as u16,
            dport: (i * 7) as u16,
            packets: i + 1,
            bytes: (i as u64 + 1) * 60,
            pkt_size: 60,
            member: Asn(64_500 + i),
            ttl: 0,
        }
    }

    fn roundtrip(msg: Msg) {
        let encoded = msg.encode();
        assert_eq!(Msg::decode(&encoded), Some(msg));
    }

    #[test]
    fn control_messages_roundtrip() {
        roundtrip(Msg::Hello {
            proto_version: LIVE_PROTO_VERSION,
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            chunk_records: 64,
            target_rps: 10_000,
        });
        roundtrip(Msg::Welcome { window: 8 });
        roundtrip(Msg::Credit { up_to_seq: 17 });
        roundtrip(Msg::Finish { next_seq: 77 });
        roundtrip(Msg::Resume {
            byte_cursor: 1_000_000,
            seq: 42,
        });
        roundtrip(Msg::Stop);
        roundtrip(Msg::Bye);
        roundtrip(Msg::Fatal {
            code: LIVE_FATAL_IDENTITY,
            detail: "fingerprint mismatch".into(),
        });
    }

    #[test]
    fn chunk_roundtrips_with_flows_and_health() {
        let mut health = IngestHealth::default();
        health.input_len = 4096;
        health.ok_records = 40;
        health.ok_bytes = 4000;
        health.resyncs = 2;
        health.quarantined_bytes = 96;
        health.fault_counts = [1, 0, 2, 0, 1];
        roundtrip(Msg::Chunk(LiveChunk {
            seq: 9,
            byte_start: 36_864,
            byte_end: 40_960,
            health,
            flows: (0..50).map(sample_flow).collect(),
        }));
        roundtrip(Msg::Chunk(LiveChunk {
            seq: 10,
            byte_start: 40_960,
            byte_end: 45_056,
            health: IngestHealth::default(),
            flows: Vec::new(),
        }));
    }

    #[test]
    fn decode_is_total_on_garbage() {
        assert_eq!(Msg::decode(&[]), None);
        assert_eq!(Msg::decode(&[0xFF]), None);
        assert_eq!(Msg::decode(&[MSG_HELLO, 0x00]), None);
        // Trailing junk after a valid message is rejected.
        let mut ok = Msg::Finish { next_seq: 1 }.encode();
        ok.push(0);
        assert_eq!(Msg::decode(&ok), None);
        let mut stop = Msg::Stop.encode();
        stop.push(7);
        assert_eq!(Msg::decode(&stop), None);
        // Truncations of every cut of a chunk never panic.
        let full = Msg::Chunk(LiveChunk {
            seq: 1,
            byte_start: 0,
            byte_end: 100,
            health: IngestHealth::default(),
            flows: vec![sample_flow(1)],
        })
        .encode();
        for cut in 0..full.len() {
            let _ = Msg::decode(&full[..cut]);
        }
    }

    #[test]
    fn scenario_fingerprint_matches_reader() {
        let flows: Vec<FlowRecord> = (0..10).map(sample_flow).collect();
        let bytes = crate::ipfix::encode(&flows);
        let scenario = LiveScenario::from_ipfix(bytes.clone(), 4);
        assert_eq!(
            scenario.fingerprint(),
            ChunkedIpfixReader::new(&bytes, 4).fingerprint()
        );
        // Chunking is part of the identity.
        assert_ne!(
            scenario.fingerprint(),
            LiveScenario::from_ipfix(bytes, 5).fingerprint()
        );
    }

    /// Producer against an inline scripted consumer: handshake, paced
    /// credited streaming, one mid-stream go-back-N resume, Stop, and
    /// a drain that yields Finish + Bye.
    #[test]
    fn producer_streams_under_credit_and_serves_resume() {
        let flows: Vec<FlowRecord> = (0..40).map(sample_flow).collect();
        let bytes = crate::ipfix::encode(&flows);
        let scenario = LiveScenario::from_ipfix(bytes.clone(), 5);
        let expected: Vec<FlowChunk> =
            ChunkedIpfixReader::new(&bytes, 5).collect_chunks();
        let fingerprint = scenario.fingerprint();

        let (mut a, mut b) = ShardTransport::channel_pair(LIVE_WIRE_MAGIC, 64);
        let producer = std::thread::spawn(move || {
            run_live_producer(&mut a, &scenario, &LiveProducerConfig::default())
        });

        // Consumer side, scripted.
        let recv_msg = |t: &mut ShardTransport| -> Msg {
            loop {
                if let Some(p) = t.recv(Duration::from_secs(5)).unwrap() {
                    if let Some(m) = Msg::decode(&p) {
                        return m;
                    }
                }
            }
        };
        match recv_msg(&mut b) {
            Msg::Hello {
                proto_version,
                fingerprint: fp,
                chunk_records,
                ..
            } => {
                assert_eq!(proto_version, LIVE_PROTO_VERSION);
                assert_eq!(fp, fingerprint);
                assert_eq!(chunk_records, 5);
            }
            other => panic!("expected Hello, got {other:?}"),
        }
        b.send(&Msg::Welcome { window: 4 }.encode()).unwrap();
        b.send(&Msg::Resume { byte_cursor: 0, seq: 0 }.encode())
            .unwrap();
        // Grant credit for the first three chunks only.
        b.send(&Msg::Credit { up_to_seq: 3 }.encode()).unwrap();
        let mut got = Vec::new();
        for _ in 0..3 {
            match recv_msg(&mut b) {
                Msg::Chunk(c) => got.push(c),
                other => panic!("expected Chunk, got {other:?}"),
            }
        }
        // No credit: the producer must not send chunk 3.
        assert!(b.recv(Duration::from_millis(100)).unwrap().is_none());
        // Go back to chunk 1 and allow the rest of the stream.
        b.send(
            &Msg::Resume {
                byte_cursor: expected[1].byte_start,
                seq: 1,
            }
            .encode(),
        )
        .unwrap();
        b.send(&Msg::Credit { up_to_seq: u64::MAX }.encode())
            .unwrap();
        let mut replayed = Vec::new();
        loop {
            match recv_msg(&mut b) {
                Msg::Chunk(c) => replayed.push(c),
                Msg::Finish { next_seq } => {
                    assert_eq!(next_seq, expected.len() as u64);
                    break;
                }
                other => panic!("expected Chunk/Finish, got {other:?}"),
            }
        }
        b.send(&Msg::Bye.encode()).unwrap();
        let stats = producer.join().unwrap().unwrap();
        assert!(stats.finished && stats.acked);
        assert_eq!(stats.resumes_served, 1);
        // The replay reproduced chunks 1.. exactly.
        assert_eq!(replayed.len(), expected.len() - 1);
        for (c, e) in replayed.iter().zip(&expected[1..]) {
            assert_eq!(c.seq, e.seq);
            assert_eq!(c.byte_start, e.byte_start);
            assert_eq!(c.byte_end, e.byte_end);
            assert_eq!(c.flows, e.flows);
        }
        // And the pre-resume chunks were the prefix.
        for (c, e) in got.iter().zip(&expected[..3]) {
            assert_eq!(c.seq, e.seq);
            assert_eq!(c.flows, e.flows);
        }
    }

    /// A consumer that never grants credit trips the producer's
    /// credit-stall watchdog instead of hanging forever.
    #[test]
    fn credit_stall_watchdog_bounds_the_wait() {
        let flows: Vec<FlowRecord> = (0..10).map(sample_flow).collect();
        let scenario = LiveScenario::from_ipfix(crate::ipfix::encode(&flows), 5);
        let (mut a, mut b) = ShardTransport::channel_pair(LIVE_WIRE_MAGIC, 64);
        let cfg = LiveProducerConfig {
            credit_stall_ms: 100,
            ..LiveProducerConfig::default()
        };
        let producer =
            std::thread::spawn(move || run_live_producer(&mut a, &scenario, &cfg));
        // Handshake + initial position, then silence.
        loop {
            if let Some(p) = b.recv(Duration::from_secs(5)).unwrap() {
                if matches!(Msg::decode(&p), Some(Msg::Hello { .. })) {
                    break;
                }
            }
        }
        b.send(&Msg::Welcome { window: 4 }.encode()).unwrap();
        b.send(&Msg::Resume { byte_cursor: 0, seq: 0 }.encode())
            .unwrap();
        let err = producer.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
