//! Random 1-out-of-N packet sampling.
//!
//! The paper's traces are "collected using a random 1 out of 10K sampling
//! of all packets crossing the IXP's switching fabric" (§4.1). Given a
//! true flow of `n` packets, the number of sampled packets is
//! `Binomial(n, 1/N)`; this module draws that efficiently (exact
//! Bernoulli loop for small `n`, normal approximation for large `n`) and
//! scales flow records accordingly.

use rand::{Rng, RngExt};
use spoofwatch_net::FlowRecord;

/// A packet sampler with rate `1/n`.
#[derive(Debug, Clone, Copy)]
pub struct PacketSampler {
    n: u32,
}

impl PacketSampler {
    /// The paper's 1-out-of-10 000 sampler.
    pub const PAPER: PacketSampler = PacketSampler { n: 10_000 };

    /// A sampler with rate `1/n` (`n ≥ 1`; `n == 1` keeps everything).
    pub fn new(n: u32) -> Self {
        assert!(n >= 1);
        PacketSampler { n }
    }

    /// The sampling divisor `N`.
    pub fn rate(&self) -> u32 {
        self.n
    }

    /// Draw how many of `true_packets` get sampled.
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R, true_packets: u64) -> u32 {
        if self.n == 1 {
            return true_packets.min(u32::MAX as u64) as u32;
        }
        let p = 1.0 / self.n as f64;
        if true_packets <= 512 {
            // Exact Bernoulli trials.
            let mut k = 0u32;
            for _ in 0..true_packets {
                if rng.random_bool(p) {
                    k += 1;
                }
            }
            k
        } else {
            // Normal approximation to Binomial(n, p), clamped at 0.
            let mean = true_packets as f64 * p;
            let sd = (true_packets as f64 * p * (1.0 - p)).sqrt();
            let z = {
                // Box–Muller.
                let u1: f64 = 1.0 - rng.random::<f64>();
                let u2: f64 = rng.random();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            (mean + sd * z).round().max(0.0) as u32
        }
    }

    /// Sample a true flow into a recorded flow: `None` when no packet of
    /// the flow was sampled (the common case for small flows at 1/10K).
    pub fn sample_flow<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mut flow: FlowRecord,
        true_packets: u64,
    ) -> Option<FlowRecord> {
        let k = self.sample_count(rng, true_packets);
        if k == 0 {
            return None;
        }
        flow.packets = k;
        flow.bytes = k as u64 * flow.pkt_size as u64;
        Some(flow)
    }

    /// Extrapolate a sampled count back to an estimated true count.
    pub fn extrapolate(&self, sampled: u64) -> u64 {
        sampled * self.n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spoofwatch_net::{Asn, Proto};

    fn flow() -> FlowRecord {
        FlowRecord {
            ts: 0,
            src: 1,
            dst: 2,
            proto: Proto::Tcp,
            sport: 1,
            dport: 80,
            packets: 0,
            bytes: 0,
            pkt_size: 100,
            member: Asn(1),
            ttl: 0,
        }
    }

    #[test]
    fn rate_one_keeps_everything() {
        let s = PacketSampler::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample_count(&mut rng, 12345), 12345);
    }

    #[test]
    fn small_flows_usually_vanish() {
        let s = PacketSampler::PAPER;
        let mut rng = StdRng::seed_from_u64(1);
        let kept = (0..10_000)
            .filter(|_| s.sample_flow(&mut rng, flow(), 10).is_some())
            .count();
        // P(keep) = 1 - (1 - 1e-4)^10 ≈ 0.1%.
        assert!(kept < 40, "kept {kept} of 10k tiny flows");
    }

    #[test]
    fn mean_is_unbiased_small_and_large() {
        let s = PacketSampler::new(100);
        let mut rng = StdRng::seed_from_u64(2);
        for &n in &[400u64, 50_000] {
            let trials = 2_000;
            let total: u64 = (0..trials)
                .map(|_| s.sample_count(&mut rng, n) as u64)
                .sum();
            let mean = total as f64 / trials as f64;
            let expect = n as f64 / 100.0;
            assert!(
                (mean - expect).abs() / expect < 0.05,
                "n={n}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn sampled_flow_scales_bytes() {
        let s = PacketSampler::new(2);
        let mut rng = StdRng::seed_from_u64(3);
        let f = s.sample_flow(&mut rng, flow(), 10_000).unwrap();
        assert_eq!(f.bytes, f.packets as u64 * 100);
        assert!(f.packets > 4_000 && f.packets < 6_000);
    }

    #[test]
    fn extrapolation() {
        assert_eq!(PacketSampler::PAPER.extrapolate(50), 500_000);
    }
}
