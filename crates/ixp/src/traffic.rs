//! The seeded traffic generator.
//!
//! Produces the 4-week flow trace the classifier consumes, containing
//! every phenomenon the paper observes at its vantage point — each flow
//! tagged with a ground-truth [`TrafficLabel`], which is the one thing a
//! synthetic trace can offer that the real one cannot: detector output
//! becomes scorable.
//!
//! Flows are generated directly in the *sampled* domain (each record's
//! `packets` field is the count a 1/10K packet sampler would have
//! recorded); the [`crate::sampler`] module provides the true-domain
//! sampling used by the packet-level pipeline and its tests.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use spoofwatch_internet::stats::{diurnal_factor, pareto, Zipf};
use spoofwatch_internet::{bogon, Internet};
use spoofwatch_net::flow::ports;
use spoofwatch_net::{Asn, FlowRecord, Ipv4Prefix, Proto};
use spoofwatch_trie::{PrefixSet, PrefixTrie};
use std::collections::HashMap;

/// Ground truth for one generated flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficLabel {
    /// Ordinary user traffic with a legitimate source.
    Regular,
    /// Bogon-source leakage from misconfigured NAT/CPE gear.
    NatLeak,
    /// Randomly spoofed flooding attack (uniform sources).
    RandomSpoofFlood,
    /// Flood with sources drawn from unrouted space (the port-27015 case).
    SteamFlood,
    /// NTP amplification trigger: selectively spoofed victim source.
    NtpTrigger,
    /// NTP amplifier response toward the victim (legitimate source).
    NtpResponse,
    /// Stray traffic from genuine router interface addresses.
    StrayRouter,
    /// Legitimate traffic from provider-assigned, unannounced space
    /// (§4.4 "uncommon setups").
    ProviderAssigned,
    /// Same-organization traffic where the org link is hidden from the
    /// AS2Org dataset (§4.4 missing links).
    HiddenOrgInternal,
    /// Tunnel-carried traffic from a remote AS's space (§4.4).
    TunnelCarried,
}

impl TrafficLabel {
    /// Whether ground truth says the source address was spoofed.
    pub fn is_spoofed(self) -> bool {
        matches!(
            self,
            TrafficLabel::RandomSpoofFlood | TrafficLabel::SteamFlood | TrafficLabel::NtpTrigger
        )
    }

    /// Whether the flow is "stray" in the paper's sense: illegitimate-
    /// looking but carrying a genuine source address.
    pub fn is_stray(self) -> bool {
        matches!(self, TrafficLabel::NatLeak | TrafficLabel::StrayRouter)
    }
}

/// Volume knobs, all in sampled-domain counts.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Trace seed (independent of the Internet seed).
    pub seed: u64,
    /// Trace length in seconds (paper: 4 weeks).
    pub duration_secs: u32,
    /// Number of regular flow records.
    pub regular_flows: usize,
    /// Mean NAT-leak records per bogon-leaking member.
    pub nat_leak_mean_flows: f64,
    /// Number of random-spoofing flood events.
    pub flood_events: usize,
    /// Sampled packets of the largest flood.
    pub flood_max_packets: u32,
    /// Number of unrouted-source (Steam) flood events.
    pub steam_events: usize,
    /// Number of NTP amplification events.
    pub ntp_events: usize,
    /// Share of all trigger packets emitted by the single top event
    /// (paper: one member sources 91.94% of Invalid NTP traffic).
    pub ntp_top_share: f64,
    /// Total sampled NTP trigger packets across all events.
    pub ntp_total_triggers: u32,
    /// Fraction of contacted amplifiers that actually respond (the
    /// ZMap-overlap analog, §7).
    pub amplifier_response_rate: f64,
    /// Amplification factor in bytes (responses/trigger).
    pub amplification_factor: f64,
    /// Mean stray-router records per member with visible router links.
    pub stray_mean_flows: f64,
    /// Flow records sourced from provider-assigned unannounced space.
    pub provider_assigned_flows: usize,
    /// Flow records of hidden-org internal traffic per hidden group.
    pub hidden_org_flows: usize,
    /// Flow records of tunnel-carried traffic per tunnel.
    pub tunnel_flows: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0,
            duration_secs: 4 * 7 * 86_400,
            regular_flows: 500_000,
            nat_leak_mean_flows: 8.0,
            flood_events: 8,
            flood_max_packets: 12_000,
            steam_events: 2,
            ntp_events: 10,
            ntp_top_share: 0.9,
            ntp_total_triggers: 12_000,
            amplifier_response_rate: 0.16,
            amplification_factor: 10.0,
            stray_mean_flows: 5.0,
            provider_assigned_flows: 1_500,
            hidden_org_flows: 400,
            tunnel_flows: 500,
        }
    }
}

impl TrafficConfig {
    /// A small configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        TrafficConfig {
            seed,
            regular_flows: 30_000,
            flood_max_packets: 2_500,
            ntp_total_triggers: 2_500,
            nat_leak_mean_flows: 6.0,
            stray_mean_flows: 6.0,
            provider_assigned_flows: 300,
            hidden_org_flows: 120,
            tunnel_flows: 150,
            ..TrafficConfig::default()
        }
    }
}

/// The generated trace: flows plus parallel ground-truth labels.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The sampled flow records, sorted by timestamp.
    pub flows: Vec<FlowRecord>,
    /// Ground truth, parallel to `flows`.
    pub labels: Vec<TrafficLabel>,
    /// Trace duration in seconds.
    pub duration: u32,
    /// Notional packet sampling divisor (counts are already sampled).
    pub sample_rate: u32,
}

impl Trace {
    /// Number of flow records.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterate `(flow, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowRecord, TrafficLabel)> {
        self.flows.iter().zip(self.labels.iter().copied())
    }

    /// Generate the full trace for an Internet.
    pub fn generate(net: &Internet, cfg: &TrafficConfig) -> Trace {
        Generator::new(net, cfg).run()
    }
}

/// Internal generator state.
struct Generator<'a> {
    net: &'a Internet,
    cfg: &'a TrafficConfig,
    rng: StdRng,
    members: Vec<Asn>,
    /// Member indices sorted by descending heavy-tailed traffic weight;
    /// regular traffic samples ranks through a Zipf over this order.
    member_zipf_order: Vec<usize>,
    /// Members in the top 5% by regular-traffic weight. Attacks are
    /// placed behind these so no member's traffic becomes attack-only
    /// (Figure 4 caps the Bogon/Unrouted share of any member near 10%).
    heavy_members: std::collections::HashSet<Asn>,
    /// Cached cone origins (with prefixes) per member.
    cones: HashMap<Asn, Vec<Asn>>,
    /// Owner AS of every announced prefix.
    owner: PrefixTrie<Asn>,
    /// All announced space (ground truth, for policy filters).
    routed: PrefixSet,
    bogons: PrefixSet,
    flows: Vec<FlowRecord>,
    labels: Vec<TrafficLabel>,
}

impl<'a> Generator<'a> {
    fn new(net: &'a Internet, cfg: &'a TrafficConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5f0f_11e5);
        let members = net.ixp_members.clone();
        let mut member_weight = Vec::with_capacity(members.len());
        for m in &members {
            let business = net.topology.info(*m).expect("member exists").business;
            let mult = match business {
                spoofwatch_internet::BusinessType::Content => 8.0,
                spoofwatch_internet::BusinessType::Nsp => 5.0,
                spoofwatch_internet::BusinessType::Isp => 3.0,
                spoofwatch_internet::BusinessType::Hosting => 2.0,
                spoofwatch_internet::BusinessType::Other => 1.0,
            };
            member_weight.push(pareto(&mut rng, 1.0, 0.9).min(10_000.0) * mult);
        }
        // Sampling order: index of members sorted by descending weight,
        // sampled through a Zipf over ranks.
        let mut order: Vec<usize> = (0..members.len()).collect();
        order.sort_by(|&a, &b| member_weight[b].total_cmp(&member_weight[a]));

        let mut owner = PrefixTrie::new();
        let mut routed = PrefixSet::new();
        for info in net.topology.ases() {
            for p in &info.prefixes {
                owner.insert(*p, info.asn);
                routed.insert(*p);
            }
        }
        let mut cones = HashMap::new();
        for m in &members {
            let origins: Vec<Asn> = net
                .truth_cones
                .cone_origins(*m)
                .into_iter()
                .filter(|o| {
                    net.topology
                        .info(*o)
                        .is_some_and(|i| !i.prefixes.is_empty())
                })
                .collect();
            cones.insert(*m, origins);
        }
        let heavy_members: std::collections::HashSet<Asn> = order
            [..(members.len() / 20).max(4).min(members.len())]
            .iter()
            .map(|&i| members[i])
            .collect();
        Generator {
            net,
            cfg,
            rng,
            members,
            member_zipf_order: order,
            heavy_members,
            cones,
            owner,
            routed,
            bogons: bogon::bogon_set(),
            flows: Vec::new(),
            labels: Vec::new(),
        }
    }

    fn run(mut self) -> Trace {
        self.regular();
        self.nat_leaks();
        self.floods();
        self.steam_floods();
        self.ntp_amplification();
        self.stray_routers();
        self.uncommon_setups();
        // Sort by time; co-sort labels.
        let mut idx: Vec<usize> = (0..self.flows.len()).collect();
        idx.sort_by_key(|&i| (self.flows[i].ts, i));
        let flows = idx.iter().map(|&i| self.flows[i]).collect();
        let labels = idx.iter().map(|&i| self.labels[i]).collect();
        Trace {
            flows,
            labels,
            duration: self.cfg.duration_secs,
            sample_rate: 10_000,
        }
    }

    // ---- helpers ---------------------------------------------------------

    fn push(&mut self, flow: FlowRecord, label: TrafficLabel) {
        self.flows.push(flow);
        self.labels.push(label);
    }

    /// A diurnal-weighted timestamp (rejection sampling).
    fn diurnal_ts(&mut self) -> u32 {
        loop {
            let ts = self.rng.random_range(0..self.cfg.duration_secs);
            let f = diurnal_factor(ts) / 1.45;
            if self.rng.random_bool(f.clamp(0.01, 1.0)) {
                return ts;
            }
        }
    }

    /// A member sampled by traffic weight (Zipf over the weight order).
    fn weighted_member(&mut self, zipf: &Zipf) -> Asn {
        let rank = zipf.sample(&mut self.rng);
        self.members[self.member_zipf_order[rank]]
    }

    /// An address legitimately carried by `member` (own/customer/org
    /// space per ground truth).
    fn carried_addr(&mut self, member: Asn) -> Option<u32> {
        let origins = self.cones.get(&member)?;
        if origins.is_empty() {
            return None;
        }
        let o = origins[self.rng.random_range(0..origins.len())];
        self.net.random_addr_of(&mut self.rng, o)
    }

    /// A random address in unrouted (routable, unannounced) space.
    fn unrouted_addr(&mut self) -> u32 {
        loop {
            let a: u32 = self.rng.random();
            if !self.bogons.contains_addr(a) && !self.routed.contains_addr(a) {
                return a;
            }
        }
    }

    /// What the member's ground-truth egress filtering does to a source
    /// address; `true` = the packet escapes into the IXP.
    fn passes_egress(&self, member: Asn, src: u32) -> bool {
        let prof = self
            .net
            .topology
            .info(member)
            .expect("member exists")
            .filtering;
        if self.bogons.contains_addr(src) {
            return !prof.filters_bogon;
        }
        match self.owner.lookup(src) {
            None => !prof.filters_unrouted,
            Some((_, owner)) => {
                if self.net.legitimately_carries(member, *owner) {
                    true
                } else {
                    !prof.filters_invalid
                }
            }
        }
    }

    // ---- components ------------------------------------------------------

    /// Ordinary member-to-member traffic: diurnal, bimodal packet sizes,
    /// HTTP(S)-dominated TCP plus random-port UDP (BitTorrent-like).
    fn regular(&mut self) {
        let zipf = Zipf::new(self.members.len(), 1.05);
        for _ in 0..self.cfg.regular_flows {
            let m_in = self.weighted_member(&zipf);
            let m_out = self.weighted_member(&zipf);
            let (Some(src), Some(dst)) = (self.carried_addr(m_in), self.carried_addr(m_out))
            else {
                continue;
            };
            let ts = self.diurnal_ts();
            let flow = if self.rng.random_bool(0.62) {
                // TCP: half client→server requests/ACKs, half
                // server→client data.
                let port = if self.rng.random_bool(0.7) { ports::HTTP } else { ports::HTTPS };
                let server_side = self.rng.random_bool(0.5);
                let (sport, dport) = if server_side {
                    (port, self.rng.random_range(32768..61000))
                } else {
                    (self.rng.random_range(32768..61000), port)
                };
                let pkt_size = if server_side {
                    1400 + self.rng.random_range(0..100)
                } else {
                    40 + self.rng.random_range(0..40)
                };
                let packets = 1 + pareto(&mut self.rng, 1.0, 1.3) as u32 % 64;
                FlowRecord {
                    ts,
                    src,
                    dst,
                    proto: Proto::Tcp,
                    sport,
                    dport,
                    packets,
                    bytes: packets as u64 * pkt_size as u64,
                    pkt_size,
                    member: m_in,
                    ttl: path_ttl(src),
                }
            } else {
                // UDP with ephemeral ports on both sides (BitTorrent-
                // like). Peers run on end hosts inside the member's own
                // network, so the source is own space, not cone space.
                let src = self
                    .net
                    .random_addr_of(&mut self.rng, m_in)
                    .unwrap_or(src);
                let pkt_size = 80 + self.rng.random_range(0..1200);
                let packets = 1 + pareto(&mut self.rng, 1.0, 1.5) as u32 % 32;
                FlowRecord {
                    ts,
                    src,
                    dst,
                    proto: Proto::Udp,
                    sport: self.rng.random_range(1025..65000),
                    dport: self.rng.random_range(1025..65000),
                    packets,
                    bytes: packets as u64 * pkt_size as u64,
                    pkt_size,
                    member: m_in,
                    ttl: path_ttl(src),
                }
            };
            self.push(flow, TrafficLabel::Regular);
        }
    }

    /// Bogon leakage from misconfigured NAT/CPE devices: user-driven
    /// (diurnal), concentrated in RFC1918, tiny TCP connection attempts.
    fn nat_leaks(&mut self) {
        let members = self.members.clone();
        for m in members {
            let prof = self.net.topology.info(m).expect("member").filtering;
            if prof.filters_bogon {
                continue;
            }
            let business = self.net.topology.info(m).expect("member").business;
            let mult = match business {
                spoofwatch_internet::BusinessType::Isp => 2.0,
                spoofwatch_internet::BusinessType::Hosting => 1.5,
                spoofwatch_internet::BusinessType::Content => 0.2,
                _ => 1.0,
            };
            let n = self.poisson_ish(self.cfg.nat_leak_mean_flows * mult);
            for _ in 0..n {
                let src = self.bogon_leak_addr();
                let Some(dst) = self.random_member_addr() else { continue };
                let ts = self.diurnal_ts();
                let pkt_size = 40 + self.rng.random_range(0..20);
                let packets = 1 + self.rng.random_range(0..3);
                let port = if self.rng.random_bool(0.8) { ports::HTTP } else { ports::HTTPS };
                let sport = self.rng.random_range(1025..65000);
                self.push(
                    FlowRecord {
                        ts,
                        src,
                        dst,
                        proto: Proto::Tcp,
                        sport,
                        dport: port,
                        packets,
                        bytes: packets as u64 * pkt_size as u64,
                        pkt_size,
                        member: m,
                        // CPE gear sits inside the member's own edge:
                        // genuine (short) path for the leaking device.
                        ttl: path_ttl(src.wrapping_add(m.0)),
                    },
                    TrafficLabel::NatLeak,
                );
            }
        }
    }

    /// Random-spoofing SYN floods: uniform random sources toward a single
    /// victim, bursty in time. Sources the member's egress filter would
    /// catch are dropped before they reach the fabric.
    fn floods(&mut self) {
        let sizes = event_sizes(
            &mut self.rng,
            self.cfg.flood_events,
            self.cfg.flood_max_packets,
        );
        for pkts in sizes {
            // Attacker sits behind a member that leaks spoofed traffic.
            let Some(m) = self.pick_attack_member(|p| !p.filters_invalid || !p.filters_unrouted)
            else {
                continue;
            };
            let Some(victim) = self.random_member_addr() else { continue };
            let t0 = self.rng.random_range(0..self.cfg.duration_secs.saturating_sub(7200));
            let dur = 600 + self.rng.random_range(0..21_600);
            let dport = *[
                ports::HTTP,
                ports::HTTP,
                ports::HTTPS,
                ports::P10100,
                ports::COD,
            ]
            .get(self.rng.random_range(0..5))
            .expect("in range");
            for _ in 0..pkts {
                let src: u32 = self.rng.random();
                if !self.passes_egress(m, src) {
                    continue;
                }
                let ts = t0 + self.rng.random_range(0..dur);
                let pkt_size = 40 + self.rng.random_range(0..20);
                let sport = self.rng.random_range(1025..65000);
                self.push(
                    FlowRecord {
                        ts,
                        src,
                        dst: victim,
                        proto: Proto::Tcp,
                        sport,
                        dport,
                        packets: 1,
                        bytes: pkt_size as u64,
                        pkt_size,
                        member: m,
                        ttl: attack_ttl(m, dport as u32 ^ t0, src ^ ts),
                    },
                    TrafficLabel::RandomSpoofFlood,
                );
            }
        }
    }

    /// Floods whose sources are drawn from unrouted space only, toward
    /// game servers (the paper's port-27015 observation).
    fn steam_floods(&mut self) {
        for _ in 0..self.cfg.steam_events {
            let Some(m) = self.pick_attack_member(|p| !p.filters_unrouted) else {
                continue;
            };
            let Some(victim) = self.random_member_addr() else { continue };
            let t0 = self.rng.random_range(0..self.cfg.duration_secs.saturating_sub(3600));
            let dur = 300 + self.rng.random_range(0..7200);
            let pkts = self.cfg.flood_max_packets / 4 + self.rng.random_range(0..1000);
            for _ in 0..pkts {
                let src = self.unrouted_addr();
                let ts = t0 + self.rng.random_range(0..dur);
                let pkt_size = 44 + self.rng.random_range(0..16);
                let sport = self.rng.random_range(1025..65000);
                self.push(
                    FlowRecord {
                        ts,
                        src,
                        dst: victim,
                        proto: Proto::Udp,
                        sport,
                        dport: ports::STEAM,
                        packets: 1,
                        bytes: pkt_size as u64,
                        pkt_size,
                        member: m,
                        ttl: attack_ttl(m, t0, src ^ ts),
                    },
                    TrafficLabel::SteamFlood,
                );
            }
        }
    }

    /// NTP amplification: selectively spoofed triggers to amplifiers,
    /// plus the responses of the amplifiers that exist and answer.
    fn ntp_amplification(&mut self) {
        if self.net.ntp_amplifiers.is_empty() || self.cfg.ntp_events == 0 {
            return;
        }
        // Event trigger budgets: the top event takes `ntp_top_share`,
        // the rest split the remainder by rank.
        let total = self.cfg.ntp_total_triggers as f64;
        let mut budgets = vec![total * self.cfg.ntp_top_share];
        let rest = total - budgets[0];
        let others = self.cfg.ntp_events.saturating_sub(1).max(1);
        for k in 0..others {
            budgets.push(rest * 0.5f64.powi(k as i32 + 1).max(f64::MIN_POSITIVE));
        }
        // One attacker member dominates (paper: 91.94% from one member).
        let top_member = self.pick_attack_member(|p| !p.filters_invalid);
        let amp_pool = self.net.ntp_amplifiers.clone();
        // Precompute a member that carries each amplifier's owner (for
        // response ingress).
        let carrier_of: HashMap<Asn, Asn> = {
            let mut m = HashMap::new();
            for (owner, _) in &amp_pool {
                if m.contains_key(owner) {
                    continue;
                }
                if let Some(c) = self
                    .members
                    .iter()
                    .find(|mm| self.net.legitimately_carries(**mm, *owner))
                {
                    m.insert(*owner, *c);
                }
            }
            m
        };
        // Mid-window start for the top event so Figure 11c's week-3 view
        // has signal.
        for (ev, budget) in budgets.into_iter().enumerate() {
            let pkts = budget as u32;
            if pkts == 0 {
                continue;
            }
            let m = if ev == 0 {
                match top_member {
                    Some(m) => m,
                    None => continue,
                }
            } else {
                match self.pick_attack_member(|p| !p.filters_invalid) {
                    Some(m) => m,
                    None => continue,
                }
            };
            // The victim is someone the attacker member does NOT carry.
            let Some(victim) = self.victim_not_carried_by(m) else { continue };
            // Amplifier strategy: big events spray many amplifiers
            // uniformly; small ones hammer a handful.
            let n_amps = if ev == 0 {
                // The dominant attack hammers a handful of amplifiers
                // hard (paper: "some attacks involve only a handful of
                // amplifiers (90) receiving the bulk of trigger traffic").
                90.min(amp_pool.len())
            } else if ev == 1 {
                // The runner-up sprays a large population uniformly
                // (paper: top-2 contacted 13,377 amplifiers).
                (amp_pool.len() * 3 / 5).max(1)
            } else if self.rng.random_bool(0.5) {
                90.min(amp_pool.len())
            } else {
                (300 + self.rng.random_range(0..700)).min(amp_pool.len())
            };
            let mut amps = amp_pool.clone();
            // Deterministic partial shuffle to pick n_amps.
            for i in 0..n_amps {
                let j = i + self.rng.random_range(0..amps.len() - i);
                amps.swap(i, j);
            }
            let amps = &amps[..n_amps];
            // Event window: the top event lands in week 3.
            let week = self.cfg.duration_secs / 4;
            let (t0, dur) = if ev == 0 && self.cfg.duration_secs >= 4 * 7 * 86_400 {
                (2 * week + week / 4, week)
            } else {
                let dur = 1800 + self.rng.random_range(0..43_200);
                (
                    self.rng.random_range(0..self.cfg.duration_secs.saturating_sub(dur)),
                    dur,
                )
            };
            let per_amp = (pkts / n_amps as u32).max(1);
            let responders = (n_amps as f64 * self.cfg.amplifier_response_rate) as usize;
            let trigger_size = 48u16;
            let response_size =
                (trigger_size as f64 * self.cfg.amplification_factor) as u16;
            for (i, (owner, amp)) in amps.iter().enumerate() {
                // Skew per-amplifier load for the "handful hammered"
                // pattern while keeping totals.
                let n = if i == 0 { per_amp * 2 } else { per_amp };
                let ts = t0 + self.rng.random_range(0..dur.max(1));
                let sport = self.rng.random_range(1025..65000);
                self.push(
                    FlowRecord {
                        ts,
                        src: victim,
                        dst: *amp,
                        proto: Proto::Udp,
                        sport,
                        dport: ports::NTP,
                        packets: n,
                        bytes: n as u64 * trigger_size as u64,
                        pkt_size: trigger_size,
                        member: m,
                        ttl: attack_ttl(m, ev as u32, *amp ^ ts),
                    },
                    TrafficLabel::NtpTrigger,
                );
                if i < responders {
                    if let Some(&carrier) = carrier_of.get(owner) {
                        self.push(
                            FlowRecord {
                                ts: ts + 1,
                                src: *amp,
                                dst: victim,
                                proto: Proto::Udp,
                                sport: ports::NTP,
                                dport: sport,
                                packets: n,
                                bytes: n as u64 * response_size as u64,
                                pkt_size: response_size,
                                member: carrier,
                                ttl: path_ttl(*amp),
                            },
                            TrafficLabel::NtpResponse,
                        );
                    }
                }
            }
        }
    }

    /// Stray traffic from router interfaces: mostly ICMP (ping replies,
    /// TTL exceeded), some UDP/TCP (§5.2: 83% / 14.4% / 2.3%).
    fn stray_routers(&mut self) {
        // Interfaces per member: both ends of links the member's AS
        // terminates. Egress ACLs apply to stray traffic too (the source
        // addresses are genuine but not necessarily "own space"), so a
        // member only leaks interface classes its profile permits:
        // unannounced infrastructure /30s need `!filters_unrouted`,
        // provider-numbered links need `!filters_invalid`.
        let mut ifaces_of: HashMap<Asn, Vec<u32>> = HashMap::new();
        for (&(a, b), &(ia, ib)) in &self.net.link_ifaces {
            ifaces_of.entry(a).or_default().push(ia);
            ifaces_of.entry(b).or_default().push(ib);
        }
        // Hash-map iteration order must not leak into the RNG stream.
        for v in ifaces_of.values_mut() {
            v.sort_unstable();
        }
        let members = self.members.clone();
        for m in members {
            let prof = self.net.topology.info(m).expect("member").filtering;
            let Some(all_ifaces) = ifaces_of.get(&m).cloned() else { continue };
            let ifaces: Vec<u32> = all_ifaces
                .into_iter()
                .filter(|&ip| {
                    let routed = self.routed.contains_addr(ip);
                    if routed {
                        // Provider-numbered: looks Invalid at the IXP.
                        !prof.filters_invalid
                    } else {
                        !prof.filters_unrouted
                    }
                })
                .collect();
            if ifaces.is_empty() {
                continue;
            }
            // Some members are stray-dominated (Figure 7's diagonal).
            let mult = if self.rng.random_bool(0.25) { 4.0 } else { 1.0 };
            let n = self.poisson_ish(self.cfg.stray_mean_flows * mult);
            for _ in 0..n {
                let src = ifaces[self.rng.random_range(0..ifaces.len())];
                let Some(dst) = self.random_member_addr() else { continue };
                let ts = self.rng.random_range(0..self.cfg.duration_secs);
                let roll: f64 = self.rng.random();
                let (proto, sport, dport, pkt_size) = if roll < 0.83 {
                    (Proto::Icmp, 0, 0, 52 + self.rng.random_range(0..13))
                } else if roll < 0.974 {
                    // Router-destined reflection attempts show up as UDP
                    // toward NTP from few sources (§5.2).
                    (
                        Proto::Udp,
                        self.rng.random_range(1025..65000),
                        ports::NTP,
                        48,
                    )
                } else {
                    (
                        Proto::Tcp,
                        self.rng.random_range(1025..65000),
                        ports::HTTP,
                        40,
                    )
                };
                let packets = 1 + self.rng.random_range(0..3);
                self.push(
                    FlowRecord {
                        ts,
                        src,
                        dst,
                        proto,
                        sport,
                        dport,
                        packets,
                        bytes: packets as u64 * pkt_size as u64,
                        pkt_size,
                        member: m,
                        ttl: router_ttl(src),
                    },
                    TrafficLabel::StrayRouter,
                );
            }
        }
    }

    /// The §4.4 false-positive sources: provider-assigned space used via
    /// the other provider, hidden-org internal traffic, and tunnels. All
    /// carry large data packets so they dominate Invalid *bytes*, as the
    /// paper's hunt found (59.9% of bytes removed).
    fn uncommon_setups(&mut self) {
        // Provider-assigned space.
        let holders: Vec<(Asn, Ipv4Prefix)> = self
            .net
            .topology
            .ases()
            .flat_map(|a| a.unannounced.iter().map(move |p| (a.asn, *p)))
            .collect();
        if !holders.is_empty() {
            for _ in 0..self.cfg.provider_assigned_flows {
                let (holder, prefix) = holders[self.rng.random_range(0..holders.len())];
                // Enters via the holder itself if a member, else via a
                // member that carries the holder.
                let member = if self.members.contains(&holder) {
                    holder
                } else {
                    match self
                        .members
                        .iter()
                        .find(|m| self.net.legitimately_carries(**m, holder))
                    {
                        Some(m) => *m,
                        None => continue,
                    }
                };
                let src = prefix.bits() + self.rng.random_range(1..prefix.num_addresses() - 1) as u32;
                let Some(dst) = self.random_member_addr() else { continue };
                let ts = self.diurnal_ts();
                // Mixed request/data sizes: bigger than attack packets,
                // far from all-1400B — the hunt's byte reduction must
                // exceed its packet reduction, not dwarf it.
                let pkt_size = if self.rng.random_bool(0.2) {
                    1300 + self.rng.random_range(0..200)
                } else {
                    80 + self.rng.random_range(0..200)
                };
                let packets = 1 + self.rng.random_range(0..8);
                let sport = self.rng.random_range(32768..61000);
                self.push(
                    FlowRecord {
                        ts,
                        src,
                        dst,
                        proto: Proto::Tcp,
                        sport,
                        dport: ports::HTTPS,
                        packets,
                        bytes: packets as u64 * pkt_size as u64,
                        pkt_size,
                        member,
                        ttl: path_ttl(src),
                    },
                    TrafficLabel::ProviderAssigned,
                );
            }
        }

        // Hidden multi-AS organizations exchanging internal traffic.
        let hidden_pairs: Vec<(Asn, Asn)> = {
            let mut v = Vec::new();
            for (_, group) in self.net.orgs_truth.multi_as_orgs() {
                for w in group.windows(2) {
                    if !self.net.orgs_dataset.same_org(w[0], w[1]) {
                        v.push((w[0], w[1]));
                    }
                }
            }
            // Hash-map iteration order must not leak into the RNG stream.
            v.sort_unstable();
            v
        };
        for &(a, b) in &hidden_pairs {
            // One side must be (or be carried by) a member.
            let member = if self.members.contains(&a) {
                a
            } else {
                match self
                    .members
                    .iter()
                    .find(|m| self.net.legitimately_carries(**m, a))
                {
                    Some(m) => *m,
                    None => continue,
                }
            };
            for _ in 0..self.cfg.hidden_org_flows {
                let (Some(src), Some(dst)) = (
                    self.net.random_addr_of(&mut self.rng, b),
                    self.net.random_addr_of(&mut self.rng, a),
                ) else {
                    break;
                };
                let ts = self.diurnal_ts();
                let pkt_size = if self.rng.random_bool(0.2) {
                    1200 + self.rng.random_range(0..300)
                } else {
                    70 + self.rng.random_range(0..180)
                };
                let packets = 1 + self.rng.random_range(0..6);
                let sport = self.rng.random_range(32768..61000);
                self.push(
                    FlowRecord {
                        ts,
                        src,
                        dst,
                        proto: Proto::Tcp,
                        sport,
                        dport: ports::HTTPS,
                        packets,
                        bytes: packets as u64 * pkt_size as u64,
                        pkt_size,
                        member,
                        ttl: path_ttl(src),
                    },
                    TrafficLabel::HiddenOrgInternal,
                );
            }
        }

        // Tunnels: the carrier member sources the remote AS's space.
        let tunnels = self.net.tunnels.clone();
        for (carrier, remote) in tunnels {
            for _ in 0..self.cfg.tunnel_flows {
                let Some(src) = self.net.random_addr_of(&mut self.rng, remote) else {
                    break;
                };
                let Some(dst) = self.random_member_addr() else { continue };
                let ts = self.diurnal_ts();
                let pkt_size = if self.rng.random_bool(0.25) {
                    1300 + self.rng.random_range(0..200)
                } else {
                    90 + self.rng.random_range(0..220)
                };
                let packets = 1 + self.rng.random_range(0..10);
                let sport = self.rng.random_range(32768..61000);
                self.push(
                    FlowRecord {
                        ts,
                        src,
                        dst,
                        proto: Proto::Tcp,
                        sport,
                        dport: ports::HTTPS,
                        packets,
                        bytes: packets as u64 * pkt_size as u64,
                        pkt_size,
                        member: carrier,
                        ttl: path_ttl(src),
                    },
                    TrafficLabel::TunnelCarried,
                );
            }
        }
    }

    // ---- small utilities ---------------------------------------------------

    fn poisson_ish(&mut self, mean: f64) -> usize {
        // Geometric with the requested mean — close enough for count
        // dispersion and much cheaper than exact Poisson.
        let p = mean / (1.0 + mean);
        let mut k = 0usize;
        while self.rng.random_bool(p) && k < 100_000 {
            k += 1;
        }
        k
    }

    fn bogon_leak_addr(&mut self) -> u32 {
        let roll: f64 = self.rng.random();
        let (prefix, weight_multicast): (Ipv4Prefix, bool) = if roll < 0.5 {
            ("10.0.0.0/8".parse().expect("static"), false)
        } else if roll < 0.8 {
            ("192.168.0.0/16".parse().expect("static"), false)
        } else if roll < 0.9 {
            ("172.16.0.0/12".parse().expect("static"), false)
        } else if roll < 0.97 {
            ("100.64.0.0/10".parse().expect("static"), false)
        } else {
            // A sliver of multicast/future-use noise.
            ("224.0.0.0/3".parse().expect("static"), true)
        };
        let _ = weight_multicast;
        prefix.bits() + self.rng.random_range(0..prefix.num_addresses()) as u32
    }

    fn random_member_addr(&mut self) -> Option<u32> {
        for _ in 0..8 {
            let m = self.members[self.rng.random_range(0..self.members.len())];
            if let Some(a) = self.carried_addr(m) {
                return Some(a);
            }
        }
        None
    }

    fn pick_member<F: Fn(&spoofwatch_internet::FilteringProfile) -> bool>(
        &mut self,
        pred: F,
    ) -> Option<Asn> {
        let candidates: Vec<Asn> = self
            .members
            .iter()
            .copied()
            .filter(|m| pred(&self.net.topology.info(*m).expect("member").filtering))
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.random_range(0..candidates.len())])
        }
    }

    /// An *attack* member: attacks originate behind edge networks
    /// (compromised hosts in stubs/hosters), not behind full-feed
    /// collector peers or transit cores — those have near-universal
    /// cones, so spoofing from them is undetectable by construction (the
    /// paper's own caveat about its conservative Full Cone).
    fn pick_attack_member<F: Fn(&spoofwatch_internet::FilteringProfile) -> bool>(
        &mut self,
        pred: F,
    ) -> Option<Asn> {
        let candidates: Vec<Asn> = self
            .members
            .iter()
            .copied()
            .filter(|m| {
                let info = self.net.topology.info(*m).expect("member");
                info.tier == spoofwatch_internet::Tier::Stub
                    && pred(&info.filtering)
                    && self.heavy_members.contains(m)
                    && self.net.collector_peers.binary_search(m).is_err()
            })
            .collect();
        if !candidates.is_empty() {
            return Some(candidates[self.rng.random_range(0..candidates.len())]);
        }
        // Relax the weight floor but keep the stub/non-collector-peer
        // requirements before giving up entirely.
        let relaxed: Vec<Asn> = self
            .members
            .iter()
            .copied()
            .filter(|m| {
                let info = self.net.topology.info(*m).expect("member");
                info.tier == spoofwatch_internet::Tier::Stub
                    && pred(&info.filtering)
                    && self.net.collector_peers.binary_search(m).is_err()
            })
            .collect();
        if relaxed.is_empty() {
            self.pick_member(pred)
        } else {
            Some(relaxed[self.rng.random_range(0..relaxed.len())])
        }
    }

    fn victim_not_carried_by(&mut self, member: Asn) -> Option<u32> {
        for _ in 0..32 {
            let addr = self.random_member_addr()?;
            if let Some((_, owner)) = self.owner.lookup(addr) {
                if !self.net.legitimately_carries(member, *owner) {
                    return Some(addr);
                }
            }
        }
        None
    }
}

/// Small deterministic mixer for hash-derived TTLs. TTLs are pure
/// functions of already-drawn values (no extra RNG draws), so adding
/// the TTL column does not perturb the rest of the record stream.
fn mix(x: u32) -> u32 {
    let mut z = x.wrapping_add(0x9e37_79b9);
    z = (z ^ (z >> 16)).wrapping_mul(0x85eb_ca6b);
    z = (z ^ (z >> 13)).wrapping_mul(0xc2b2_ae35);
    z ^ (z >> 16)
}

/// Hop-count model for *legitimate* sources: every source /24 sits a
/// stable 8–24 hops from the vantage point and its stack uses an
/// initial TTL of 64 or 128 (both picked by hash), so genuine flows
/// from one network always arrive inside the same narrow TTL band —
/// the invariant hop-count anomaly detection (arXiv:1606.07613) keys
/// on.
fn path_ttl(src: u32) -> u8 {
    let h = mix(src >> 8);
    let initial: u8 = if h & 1 == 0 { 64 } else { 128 };
    initial - (8 + ((h >> 1) % 17) as u8)
}

/// TTL of *spoofed* packets: the attacker's real path applies, not the
/// claimed source's, so an entire flood event shares one narrow TTL
/// band regardless of how its sources scatter — exactly the
/// inconsistency that separates spoofed from legitimate traffic.
/// `nonce` distinguishes events behind the same member; `jitter_key`
/// adds ±1 hop of per-packet noise.
fn attack_ttl(member: Asn, nonce: u32, jitter_key: u32) -> u8 {
    let h = mix(member.0 ^ nonce.rotate_left(16));
    64 - (6 + (h % 12) as u8) + (mix(jitter_key) % 2) as u8
}

/// Router interfaces originate ICMP with an initial TTL of 255 and sit
/// few hops out, so stray-router traffic lands in a high band of its
/// own.
fn router_ttl(iface: u32) -> u8 {
    255 - (3 + (mix(iface) % 10) as u8)
}

/// Heavy-tailed event sizes: the biggest event gets `max`, the rest
/// halve down the ranks with jitter.
fn event_sizes(rng: &mut StdRng, n: usize, max: u32) -> Vec<u32> {
    (0..n)
        .map(|k| {
            let base = (max as f64 * 0.5f64.powi(k as i32)).max(50.0);
            let jitter = 0.7 + rng.random::<f64>() * 0.6;
            (base * jitter) as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_internet::InternetConfig;

    fn trace() -> (Internet, Trace) {
        let net = Internet::generate(InternetConfig::tiny(11));
        let trace = Trace::generate(&net, &TrafficConfig::tiny(5));
        (net, trace)
    }

    #[test]
    fn deterministic() {
        let net = Internet::generate(InternetConfig::tiny(11));
        let a = Trace::generate(&net, &TrafficConfig::tiny(5));
        let b = Trace::generate(&net, &TrafficConfig::tiny(5));
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn sorted_and_parallel() {
        let (_, trace) = trace();
        assert_eq!(trace.flows.len(), trace.labels.len());
        assert!(!trace.is_empty());
        for w in trace.flows.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
    }

    #[test]
    fn all_phenomena_present() {
        let (_, trace) = trace();
        use TrafficLabel::*;
        for want in [
            Regular,
            NatLeak,
            RandomSpoofFlood,
            SteamFlood,
            NtpTrigger,
            NtpResponse,
            StrayRouter,
            ProviderAssigned,
            HiddenOrgInternal,
            TunnelCarried,
        ] {
            assert!(
                trace.labels.contains(&want),
                "missing phenomenon {want:?}"
            );
        }
    }

    #[test]
    fn members_are_real_and_timestamps_bounded() {
        let (net, trace) = trace();
        for f in &trace.flows {
            assert!(net.ixp_members.contains(&f.member), "{} not a member", f.member);
            assert!(f.ts < trace.duration);
            assert!(f.packets > 0);
            assert_eq!(f.bytes, f.packets as u64 * f.pkt_size as u64);
        }
    }

    #[test]
    fn regular_traffic_dominates() {
        let (_, trace) = trace();
        let regular = trace
            .labels
            .iter()
            .filter(|l| **l == TrafficLabel::Regular)
            .count();
        assert!(
            regular as f64 > 0.4 * trace.len() as f64,
            "regular is only {regular}/{}",
            trace.len()
        );
    }

    #[test]
    fn nat_leaks_are_bogon_sourced() {
        let (_, trace) = trace();
        let bogons = bogon::bogon_set();
        for (f, l) in trace.iter() {
            if l == TrafficLabel::NatLeak {
                assert!(bogons.contains_addr(f.src), "{:#x}", f.src);
            }
        }
    }

    #[test]
    fn ntp_triggers_target_port_123() {
        let (_, trace) = trace();
        let mut triggers = 0;
        for (f, l) in trace.iter() {
            if l == TrafficLabel::NtpTrigger {
                assert_eq!(f.dport, ports::NTP);
                assert_eq!(f.proto, Proto::Udp);
                triggers += 1;
            }
        }
        assert!(triggers > 10, "only {triggers} triggers");
    }

    #[test]
    fn responses_mirror_triggers() {
        let (_, trace) = trace();
        let trigger_bytes: u64 = trace
            .iter()
            .filter(|(_, l)| *l == TrafficLabel::NtpTrigger)
            .map(|(f, _)| f.bytes)
            .sum();
        let response_bytes: u64 = trace
            .iter()
            .filter(|(_, l)| *l == TrafficLabel::NtpResponse)
            .map(|(f, _)| f.bytes)
            .sum();
        assert!(response_bytes > 0);
        // Only ~16% of amplifiers respond, but with 10× amplification:
        // responses land within sane bounds of trigger volume.
        assert!(
            response_bytes as f64 > 0.3 * trigger_bytes as f64,
            "responses {response_bytes} vs triggers {trigger_bytes}"
        );
    }

    #[test]
    fn steam_floods_use_unrouted_sources() {
        let (net, trace) = trace();
        let mut routed = PrefixSet::new();
        for a in net.topology.ases() {
            for p in &a.prefixes {
                routed.insert(*p);
            }
        }
        let bogons = bogon::bogon_set();
        for (f, l) in trace.iter() {
            if l == TrafficLabel::SteamFlood {
                assert_eq!(f.dport, ports::STEAM);
                assert!(!routed.contains_addr(f.src));
                assert!(!bogons.contains_addr(f.src));
            }
        }
    }

    #[test]
    fn stray_mostly_icmp() {
        let (_, trace) = trace();
        let stray: Vec<_> = trace
            .iter()
            .filter(|(_, l)| *l == TrafficLabel::StrayRouter)
            .map(|(f, _)| f)
            .collect();
        assert!(stray.len() > 20);
        let icmp = stray.iter().filter(|f| f.proto == Proto::Icmp).count();
        let frac = icmp as f64 / stray.len() as f64;
        assert!((frac - 0.83).abs() < 0.12, "ICMP fraction {frac}");
    }

    #[test]
    fn spoofed_labels_classified() {
        assert!(TrafficLabel::NtpTrigger.is_spoofed());
        assert!(TrafficLabel::RandomSpoofFlood.is_spoofed());
        assert!(!TrafficLabel::NtpResponse.is_spoofed());
        assert!(TrafficLabel::NatLeak.is_stray());
        assert!(TrafficLabel::StrayRouter.is_stray());
        assert!(!TrafficLabel::Regular.is_stray());
    }
}
