//! Chunked, resumable IPFIX-lite ingestion.
//!
//! [`decode_resilient`](crate::ipfix::decode_resilient) materializes a
//! whole feed at once — fine for a day of flows, untenable for the
//! paper's four-week horizon. [`ChunkedIpfixReader`] walks the same
//! resilient decode (identical plausibility checks, identical
//! resynchronization) but yields [`FlowChunk`]s of bounded size, each
//! carrying its own byte-exact [`IngestHealth`] for the span it covers.
//!
//! Two properties make the reader the substrate for a checkpointed
//! streaming runner:
//!
//! * **Concatenation equality** — the concatenated chunk records and the
//!   absorbed chunk healths equal a one-shot `decode_resilient` of the
//!   full buffer, byte for byte; chunking never changes what is decoded.
//! * **Cursor determinism** — every chunk boundary is a byte cursor;
//!   [`seek`](ChunkedIpfixReader::seek)ing a fresh reader to a boundary
//!   reproduces the remaining chunk sequence exactly. That is what lets
//!   an interrupted study resume from a checkpoint bit-identically.

use crate::ipfix::{self, Layout};
use spoofwatch_net::{FaultKind, FlowBatch, FlowRecord, IngestHealth};

/// One decoded chunk of the flow stream: the records recovered from the
/// byte span `[byte_start, byte_end)` plus that span's health.
#[derive(Debug, Clone)]
pub struct FlowChunk {
    /// Position of this chunk in the stream, starting at 0.
    pub seq: u64,
    /// First input byte this chunk covers.
    pub byte_start: u64,
    /// One past the last input byte this chunk covers; the resume
    /// cursor for the next chunk.
    pub byte_end: u64,
    /// Records recovered from the span, in stream order.
    pub flows: Vec<FlowRecord>,
    /// Byte-exact decode health of the span
    /// (`ok_bytes + quarantined_bytes == byte_end - byte_start`).
    pub health: IngestHealth,
}

/// The bookkeeping of one decoded chunk without its records: byte span,
/// sequence number, and health. [`ChunkedIpfixReader::next_batch`]
/// returns this alongside the caller's refilled [`FlowBatch`], so the
/// columnar path carries identical accounting to [`FlowChunk`] without
/// owning a record vector.
#[derive(Debug, Clone)]
pub struct ChunkSpan {
    /// Position of this chunk in the stream, starting at 0.
    pub seq: u64,
    /// First input byte this chunk covers.
    pub byte_start: u64,
    /// One past the last input byte this chunk covers; the resume
    /// cursor for the next chunk.
    pub byte_end: u64,
    /// Byte-exact decode health of the span.
    pub health: IngestHealth,
}

/// Incremental resilient reader over an in-memory IPFIX-lite buffer.
///
/// Yields up to `chunk_records` decoded records per [`FlowChunk`]; a
/// chunk may fall short only at end of input. Quarantined spans ride
/// inside whichever chunk the walk was in when they were skipped, so a
/// chunk can be empty of records and still cover bytes (a pure-garbage
/// tail).
#[derive(Debug)]
pub struct ChunkedIpfixReader<'a> {
    data: &'a [u8],
    pos: usize,
    seq: u64,
    chunk_records: usize,
    /// Parsed wire geometry; `Some` once the header has been checked.
    layout: Option<Layout>,
    done: bool,
    /// Recycled record storage for the next [`FlowChunk`] (see
    /// [`ChunkedIpfixReader::recycle`]) — steady-state streaming with a
    /// single consumer reuses one vector instead of allocating per
    /// chunk.
    spare: Vec<FlowRecord>,
}

impl<'a> ChunkedIpfixReader<'a> {
    /// A reader positioned at the start of `data`, yielding up to
    /// `chunk_records` records per chunk (minimum 1).
    pub fn new(data: &'a [u8], chunk_records: usize) -> Self {
        ChunkedIpfixReader {
            data,
            pos: 0,
            seq: 0,
            chunk_records: chunk_records.max(1),
            layout: None,
            done: false,
            spare: Vec::new(),
        }
    }

    /// Records per chunk.
    pub fn chunk_records(&self) -> usize {
        self.chunk_records
    }

    /// Total input length in bytes.
    pub fn input_len(&self) -> u64 {
        self.data.len() as u64
    }

    /// A stable fingerprint of the stream identity (length, chunking,
    /// and content), mixed into checkpoint config hashes so a
    /// checkpoint is never resumed against a different trace. FNV-1a
    /// over the full buffer: one linear pass at resume/startup time.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mut mix = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for b in (self.data.len() as u64).to_be_bytes() {
            mix(b);
        }
        for b in (self.chunk_records as u64).to_be_bytes() {
            mix(b);
        }
        for &b in self.data {
            mix(b);
        }
        h
    }

    /// Reposition the reader: the next chunk starts at `byte_cursor`
    /// with sequence number `seq`. A cursor of 0 re-checks the header;
    /// any other cursor must be a `byte_end` previously yielded by this
    /// reader (or one over an identical buffer) — arbitrary cursors
    /// decode deterministically but may not reproduce the original
    /// chunking.
    pub fn seek(&mut self, byte_cursor: u64, seq: u64) {
        let pos = (byte_cursor as usize).min(self.data.len());
        self.pos = pos;
        self.seq = seq;
        // A mid-stream cursor implies the header was valid when the
        // cursor was minted; re-parse it to recover the record stride.
        self.layout = match Layout::parse(self.data) {
            Ok(l) if pos >= l.header_len => Some(l),
            _ => None,
        };
        self.done = false;
    }

    /// The byte cursor the next chunk will start at.
    pub fn cursor(&self) -> u64 {
        self.pos as u64
    }

    /// Decode the next chunk; `None` once the input is exhausted (or
    /// after an unrecoverable header fault has been reported).
    ///
    /// The chunk's record vector comes from the recycle pool when one
    /// is available (see [`ChunkedIpfixReader::recycle`]), so a
    /// single-consumer read loop allocates it once, not per chunk.
    pub fn next_chunk(&mut self) -> Option<FlowChunk> {
        let mut flows = std::mem::take(&mut self.spare);
        flows.clear();
        match self.next_span(&mut |f| flows.push(*f)) {
            Some(span) => Some(FlowChunk {
                seq: span.seq,
                byte_start: span.byte_start,
                byte_end: span.byte_end,
                flows,
                health: span.health,
            }),
            None => {
                self.spare = flows; // keep the arena for a later seek
                None
            }
        }
    }

    /// Decode the next chunk straight into the caller's reusable
    /// [`FlowBatch`] — the columnar, allocation-free counterpart of
    /// [`ChunkedIpfixReader::next_chunk`]. The batch is cleared and
    /// refilled (column capacities survive, so steady-state streaming
    /// reuses one arena across every chunk); the returned [`ChunkSpan`]
    /// carries the identical sequence/byte-span/health bookkeeping a
    /// [`FlowChunk`] would. Record-for-record and span-for-span equal
    /// to `next_chunk` by construction: both are sinks over one walk.
    pub fn next_batch(&mut self, batch: &mut FlowBatch) -> Option<ChunkSpan> {
        batch.clear();
        self.next_span(&mut |f| batch.push(f))
    }

    /// Return a spent [`FlowChunk`]'s record vector to the reader so
    /// the next chunk reuses its capacity instead of allocating. The
    /// larger of the offered and the held vector is kept.
    pub fn recycle(&mut self, mut flows: Vec<FlowRecord>) {
        flows.clear();
        if flows.capacity() > self.spare.capacity() {
            self.spare = flows;
        }
    }

    /// The shared chunk walk behind [`ChunkedIpfixReader::next_chunk`]
    /// and [`ChunkedIpfixReader::next_batch`]: identical plausibility
    /// checks, resynchronization, and health accounting, parameterized
    /// only over where recovered records go.
    fn next_span(&mut self, sink: &mut dyn FnMut(&FlowRecord)) -> Option<ChunkSpan> {
        if self.done || (self.layout.is_some() && self.pos >= self.data.len()) {
            self.done = true;
            return None;
        }
        let byte_start = self.pos as u64;
        // Health is built against the span length, filled in at the end.
        let mut health = IngestHealth::new(0);

        if self.layout.is_none() {
            let data = self.data;
            match Layout::parse(data) {
                Err(kind) => {
                    // Unrecoverable: one terminal chunk covering the input.
                    health.input_len = data.len() as u64;
                    health.abandon(kind);
                    health.record_metrics("ipfix_chunked");
                    self.pos = data.len();
                    self.done = true;
                    let seq = self.seq;
                    self.seq += 1;
                    return Some(ChunkSpan {
                        seq,
                        byte_start,
                        byte_end: data.len() as u64,
                        health,
                    });
                }
                Ok(layout) => {
                    health.credit_ok(layout.header_len as u64);
                    self.pos = layout.header_len;
                    self.layout = Some(layout);
                }
            }
        }
        let layout = self.layout.expect("layout checked above");
        let stride = layout.record_len;

        // The same walk as `decode_resilient`, paused after
        // `chunk_records` recovered records.
        let data = self.data;
        let mut recovered = 0usize;
        while self.pos < data.len() && recovered < self.chunk_records {
            if let Some(f) = ipfix::plausible_at(data, self.pos, &layout) {
                sink(&f);
                recovered += 1;
                health.credit_record(stride as u64);
                self.pos += stride;
                continue;
            }
            let kind = if data.len() - self.pos < stride {
                FaultKind::Truncated
            } else {
                FaultKind::Implausible
            };
            let mut next = self.pos + 1;
            while next + stride <= data.len() && ipfix::plausible_at(data, next, &layout).is_none()
            {
                next += 1;
            }
            if next + stride > data.len() {
                next = data.len(); // nothing plausible left: quarantine the tail
            }
            health.quarantine(self.pos as u64, (next - self.pos) as u64, kind);
            if next < data.len() {
                health.note_resync();
            }
            self.pos = next;
        }

        let byte_end = self.pos as u64;
        health.input_len = byte_end - byte_start;
        debug_assert!(health.reconciles());
        health.record_metrics("ipfix_chunked");
        let seq = self.seq;
        self.seq += 1;
        Some(ChunkSpan {
            seq,
            byte_start,
            byte_end,
            health,
        })
    }

    /// Drain every remaining chunk.
    pub fn collect_chunks(&mut self) -> Vec<FlowChunk> {
        let mut out = Vec::new();
        while let Some(c) = self.next_chunk() {
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipfix::{decode_resilient, encode, HEADER_LEN, RECORD_LEN};
    use spoofwatch_net::{Asn, FaultInjector, Proto};

    fn plausible_sample(n: u32) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let packets = 1 + i % 40;
                let pkt_size = 40 + (i % 1400) as u16;
                FlowRecord {
                    ts: 100 + i,
                    src: 0x0A00_0000 + i,
                    dst: 0xC000_0200 + i,
                    proto: if i % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    sport: 1025 + (i % 60000) as u16,
                    dport: 80,
                    packets,
                    bytes: packets as u64 * pkt_size as u64,
                    pkt_size,
                    member: Asn(64496 + i % 7),
                    ttl: 0,
                }
            })
            .collect()
    }

    /// Concatenated chunks must equal the one-shot resilient decode —
    /// records and health scalars — on clean and corrupted inputs alike.
    fn assert_chunks_match_oneshot(bytes: &[u8], chunk_records: usize) {
        let (want_flows, want_health) = decode_resilient(bytes);
        let chunks = ChunkedIpfixReader::new(bytes, chunk_records).collect_chunks();

        let got_flows: Vec<FlowRecord> =
            chunks.iter().flat_map(|c| c.flows.iter().copied()).collect();
        assert_eq!(got_flows, want_flows);

        let mut got_health = IngestHealth::new(0);
        for c in &chunks {
            assert!(c.health.reconciles(), "chunk {} does not reconcile", c.seq);
            assert_eq!(
                c.byte_end - c.byte_start,
                c.health.input_len,
                "chunk {} span mismatch",
                c.seq
            );
            got_health.absorb(&c.health);
        }
        assert_eq!(got_health.input_len, want_health.input_len);
        assert_eq!(got_health.ok_records, want_health.ok_records);
        assert_eq!(got_health.ok_bytes, want_health.ok_bytes);
        assert_eq!(got_health.quarantined_bytes, want_health.quarantined_bytes);
        assert_eq!(got_health.resyncs, want_health.resyncs);
        assert_eq!(got_health.unrecoverable, want_health.unrecoverable);

        // Chunks tile the input with no gaps or overlaps.
        let mut cursor = 0u64;
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.seq, i as u64);
            assert_eq!(c.byte_start, cursor);
            cursor = c.byte_end;
        }
        assert_eq!(cursor, bytes.len() as u64);
    }

    #[test]
    fn chunks_concatenate_to_oneshot_decode_clean() {
        let bytes = encode(&plausible_sample(100));
        for chunk_records in [1, 7, 32, 1000] {
            assert_chunks_match_oneshot(&bytes, chunk_records);
        }
    }

    #[test]
    fn chunks_concatenate_to_oneshot_decode_corrupted() {
        for seed in 0..25u64 {
            let mut bytes = encode(&plausible_sample(80));
            let mut inj = FaultInjector::new(seed).protect_prefix(HEADER_LEN);
            for _ in 0..3 {
                inj.any_single(&mut bytes, RECORD_LEN);
            }
            assert_chunks_match_oneshot(&bytes, 16);
        }
    }

    #[test]
    fn seek_to_any_boundary_reproduces_tail() {
        let mut bytes = encode(&plausible_sample(60));
        FaultInjector::new(3)
            .protect_prefix(HEADER_LEN)
            .insert_garbage(&mut bytes, 11);
        let all = ChunkedIpfixReader::new(&bytes, 9).collect_chunks();
        for resume_at in 0..all.len() {
            let mut r = ChunkedIpfixReader::new(&bytes, 9);
            let (cursor, seq) = if resume_at == 0 {
                (0, 0)
            } else {
                (all[resume_at - 1].byte_end, all[resume_at - 1].seq + 1)
            };
            r.seek(cursor, seq);
            let tail = r.collect_chunks();
            assert_eq!(tail.len(), all.len() - resume_at);
            for (got, want) in tail.iter().zip(&all[resume_at..]) {
                assert_eq!(got.seq, want.seq);
                assert_eq!(got.byte_start, want.byte_start);
                assert_eq!(got.byte_end, want.byte_end);
                assert_eq!(got.flows, want.flows);
            }
        }
    }

    #[test]
    fn chunks_match_oneshot_across_wire_layouts() {
        // Legacy v1 files (35-byte records, no TTL) and forward-compat
        // extended layouts (record_len > 36) chunk identically to their
        // one-shot resilient decode, clean and corrupted.
        let flows = plausible_sample(60);
        let v1 = crate::ipfix::encode_v1(&flows);
        assert_chunks_match_oneshot(&v1, 7);
        let padded = crate::ipfix::encode_padded(&flows, RECORD_LEN + 9);
        assert_chunks_match_oneshot(&padded, 7);
        for seed in 0..10u64 {
            let mut v1 = crate::ipfix::encode_v1(&flows);
            let mut padded = crate::ipfix::encode_padded(&flows, RECORD_LEN + 9);
            let mut inj = FaultInjector::new(seed).protect_prefix(HEADER_LEN);
            inj.any_single(&mut v1, RECORD_LEN);
            inj.any_single(&mut padded, RECORD_LEN);
            assert_chunks_match_oneshot(&v1, 16);
            assert_chunks_match_oneshot(&padded, 16);
        }
    }

    /// `next_batch` must tile the input exactly like `next_chunk`:
    /// same records, same spans, same health scalars, chunk by chunk.
    fn assert_batches_match_chunks(bytes: &[u8], chunk_records: usize) {
        let mut by_chunk = ChunkedIpfixReader::new(bytes, chunk_records);
        let mut by_batch = ChunkedIpfixReader::new(bytes, chunk_records);
        let mut batch = FlowBatch::new();
        loop {
            let chunk = by_chunk.next_chunk();
            let span = by_batch.next_batch(&mut batch);
            match (chunk, span) {
                (None, None) => break,
                (Some(c), Some(s)) => {
                    assert_eq!(s.seq, c.seq);
                    assert_eq!(s.byte_start, c.byte_start);
                    assert_eq!(s.byte_end, c.byte_end);
                    assert_eq!(s.health.input_len, c.health.input_len);
                    assert_eq!(s.health.ok_records, c.health.ok_records);
                    assert_eq!(s.health.ok_bytes, c.health.ok_bytes);
                    assert_eq!(s.health.quarantined_bytes, c.health.quarantined_bytes);
                    assert_eq!(s.health.resyncs, c.health.resyncs);
                    assert_eq!(s.health.unrecoverable, c.health.unrecoverable);
                    assert_eq!(batch.to_records(), c.flows, "chunk {} records", c.seq);
                }
                (c, s) => panic!(
                    "chunk/batch iteration diverged: chunk={:?} span={:?}",
                    c.map(|c| c.seq),
                    s.map(|s| s.seq)
                ),
            }
        }
    }

    #[test]
    fn batches_tile_identically_to_chunks() {
        let clean = encode(&plausible_sample(100));
        for chunk_records in [1, 7, 32, 1000] {
            assert_batches_match_chunks(&clean, chunk_records);
        }
        for seed in 0..15u64 {
            let mut bytes = encode(&plausible_sample(80));
            let mut inj = FaultInjector::new(seed).protect_prefix(HEADER_LEN);
            for _ in 0..3 {
                inj.any_single(&mut bytes, RECORD_LEN);
            }
            assert_batches_match_chunks(&bytes, 16);
        }
        let flows = plausible_sample(60);
        assert_batches_match_chunks(&crate::ipfix::encode_v1(&flows), 7);
        assert_batches_match_chunks(&crate::ipfix::encode_padded(&flows, RECORD_LEN + 9), 7);
        assert_batches_match_chunks(b"XXXX\x00\x01whatever", 8);
        assert_batches_match_chunks(&encode(&[]), 8);
    }

    #[test]
    fn next_batch_reuses_the_arena() {
        let bytes = encode(&plausible_sample(200));
        let mut r = ChunkedIpfixReader::new(&bytes, 50);
        let mut batch = FlowBatch::new();
        assert!(r.next_batch(&mut batch).is_some());
        assert_eq!(batch.len(), 50);
        let cap_ptr = batch.src.as_ptr();
        // Subsequent same-size chunks refill in place: no regrowth.
        while r.next_batch(&mut batch).is_some() {
            assert!(batch.len() <= 50);
            assert_eq!(batch.src.as_ptr(), cap_ptr);
        }
    }

    #[test]
    fn recycle_feeds_the_next_chunk() {
        let bytes = encode(&plausible_sample(120));
        let mut r = ChunkedIpfixReader::new(&bytes, 40);
        let first = r.next_chunk().expect("first chunk");
        let cap = first.flows.capacity();
        assert!(cap >= 40);
        let ptr = first.flows.as_ptr();
        r.recycle(first.flows);
        let second = r.next_chunk().expect("second chunk");
        // The recycled allocation is handed back, not reallocated.
        assert_eq!(second.flows.as_ptr(), ptr);
        assert_eq!(second.flows.capacity(), cap);
        assert_eq!(second.flows.len(), 40);
    }

    #[test]
    fn seek_recovers_stride_on_non_current_layouts() {
        // A resumed reader must rediscover the record stride from the
        // header even when the cursor starts mid-stream.
        let flows = plausible_sample(40);
        for bytes in [
            crate::ipfix::encode_v1(&flows),
            crate::ipfix::encode_padded(&flows, RECORD_LEN + 4),
        ] {
            let all = ChunkedIpfixReader::new(&bytes, 9).collect_chunks();
            for resume_at in 1..all.len() {
                let mut r = ChunkedIpfixReader::new(&bytes, 9);
                r.seek(all[resume_at - 1].byte_end, all[resume_at - 1].seq + 1);
                let tail = r.collect_chunks();
                assert_eq!(tail.len(), all.len() - resume_at);
                for (got, want) in tail.iter().zip(&all[resume_at..]) {
                    assert_eq!(got.flows, want.flows);
                    assert_eq!(got.byte_end, want.byte_end);
                }
            }
        }
    }

    #[test]
    fn bad_header_is_one_terminal_chunk() {
        let mut r = ChunkedIpfixReader::new(b"XXXX\x00\x01whatever", 8);
        let c = r.next_chunk().expect("terminal chunk");
        assert!(c.flows.is_empty());
        assert!(c.health.unrecoverable);
        assert!(c.health.reconciles());
        assert_eq!(c.byte_end, 14);
        assert!(r.next_chunk().is_none());
    }

    #[test]
    fn empty_file_yields_header_only_chunk() {
        let bytes = encode(&[]);
        let mut r = ChunkedIpfixReader::new(&bytes, 8);
        let c = r.next_chunk().expect("header chunk");
        assert!(c.flows.is_empty());
        assert_eq!(c.health.ok_bytes, HEADER_LEN as u64);
        assert!(r.next_chunk().is_none());
    }

    #[test]
    fn fingerprint_tracks_content_and_chunking() {
        let bytes = encode(&plausible_sample(50));
        let base = ChunkedIpfixReader::new(&bytes, 8).fingerprint();
        assert_eq!(ChunkedIpfixReader::new(&bytes, 8).fingerprint(), base);
        assert_ne!(ChunkedIpfixReader::new(&bytes, 9).fingerprint(), base);
        let mut edited = bytes.clone();
        edited[bytes.len() / 2] ^= 0x40;
        assert_ne!(ChunkedIpfixReader::new(&edited, 8).fingerprint(), base);
    }
}
