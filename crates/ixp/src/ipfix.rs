//! "IPFIX-lite": a fixed-layout binary codec for flow records.
//!
//! Layout (big-endian):
//!
//! ```text
//! file   := magic "IPFX" | version u16 | record*
//! record := ts u32 | src u32 | dst u32 | proto u8 | sport u16 | dport u16
//!         | packets u32 | bytes u64 | pkt_size u16 | member u32
//! ```
//!
//! Records are fixed-size (35 bytes), so the reader can detect torn files
//! exactly and random access is trivial.

use bytes::{Buf, BufMut};
use spoofwatch_net::{Asn, FaultKind, FlowRecord, IngestHealth, Proto};
use std::fmt;
use std::io::{self, Read, Write};

pub(crate) const MAGIC: &[u8; 4] = b"IPFX";
pub(crate) const VERSION: u16 = 1;
/// Size of the file header (magic + version).
pub const HEADER_LEN: usize = 6;
/// Size of one encoded record.
pub const RECORD_LEN: usize = 35;

/// IPFIX-lite decode errors.
#[derive(Debug)]
pub enum IpfixError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Stream ended inside a record.
    Truncated,
}

impl fmt::Display for IpfixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpfixError::Io(e) => write!(f, "IPFIX-lite I/O error: {e}"),
            IpfixError::BadMagic => f.write_str("IPFIX-lite: bad magic"),
            IpfixError::BadVersion(v) => write!(f, "IPFIX-lite: unsupported version {v}"),
            IpfixError::Truncated => f.write_str("IPFIX-lite: truncated record"),
        }
    }
}

impl std::error::Error for IpfixError {}

impl From<io::Error> for IpfixError {
    fn from(e: io::Error) -> Self {
        IpfixError::Io(e)
    }
}

/// Encode one record into a 35-byte array.
pub fn encode_record(f: &FlowRecord) -> [u8; RECORD_LEN] {
    let mut out = [0u8; RECORD_LEN];
    let mut buf = &mut out[..];
    buf.put_u32(f.ts);
    buf.put_u32(f.src);
    buf.put_u32(f.dst);
    buf.put_u8(f.proto.number());
    buf.put_u16(f.sport);
    buf.put_u16(f.dport);
    buf.put_u32(f.packets);
    buf.put_u64(f.bytes);
    buf.put_u16(f.pkt_size);
    buf.put_u32(f.member.0);
    out
}

/// Decode one 35-byte record.
pub fn decode_record(mut data: &[u8]) -> Result<FlowRecord, IpfixError> {
    if data.len() < RECORD_LEN {
        return Err(IpfixError::Truncated);
    }
    Ok(FlowRecord {
        ts: data.get_u32(),
        src: data.get_u32(),
        dst: data.get_u32(),
        proto: Proto::from_number(data.get_u8()),
        sport: data.get_u16(),
        dport: data.get_u16(),
        packets: data.get_u32(),
        bytes: data.get_u64(),
        pkt_size: data.get_u16(),
        member: Asn(data.get_u32()),
    })
}

/// Streaming writer.
pub struct IpfixWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> IpfixWriter<W> {
    /// Write the header and return the writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(MAGIC)?;
        inner.write_all(&VERSION.to_be_bytes())?;
        Ok(IpfixWriter { inner, written: 0 })
    }

    /// Append one record.
    pub fn write_record(&mut self, f: &FlowRecord) -> io::Result<()> {
        self.inner.write_all(&encode_record(f))?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming reader.
pub struct IpfixReader<R: Read> {
    inner: R,
}

impl<R: Read> IpfixReader<R> {
    /// Read and validate the header.
    pub fn new(mut inner: R) -> Result<Self, IpfixError> {
        let mut magic = [0u8; 4];
        inner.read_exact(&mut magic).map_err(|_| IpfixError::BadMagic)?;
        if &magic != MAGIC {
            return Err(IpfixError::BadMagic);
        }
        let mut ver = [0u8; 2];
        inner.read_exact(&mut ver).map_err(|_| IpfixError::Truncated)?;
        let version = u16::from_be_bytes(ver);
        if version != VERSION {
            return Err(IpfixError::BadVersion(version));
        }
        Ok(IpfixReader { inner })
    }

    /// Read the next record; `Ok(None)` at clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<FlowRecord>, IpfixError> {
        let mut buf = [0u8; RECORD_LEN];
        let mut got = 0usize;
        while got < RECORD_LEN {
            match self.inner.read(&mut buf[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => return Err(IpfixError::Truncated),
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        decode_record(&buf).map(Some)
    }

    /// Drain all remaining records.
    pub fn collect_records(&mut self) -> Result<Vec<FlowRecord>, IpfixError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Encode a batch to memory.
pub fn encode(flows: &[FlowRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + flows.len() * RECORD_LEN);
    out.put_slice(MAGIC);
    out.put_u16(VERSION);
    for f in flows {
        out.put_slice(&encode_record(f));
    }
    out
}

/// Decode a complete buffer.
pub fn decode(data: &[u8]) -> Result<Vec<FlowRecord>, IpfixError> {
    IpfixReader::new(data)?.collect_records()
}

/// Smallest credible IP packet size (a bare IPv4 header).
const MIN_PKT_SIZE: u16 = 20;
/// Largest credible IP packet size (jumbo frame).
const MAX_PKT_SIZE: u16 = 9216;

/// Whether a decoded record looks like real sampled flow data.
///
/// IPFIX-lite records carry no per-record framing or checksum, so this
/// internal-consistency test is the codec's only corruption signal: the
/// exporter always writes `bytes == packets * pkt_size` (the explicit
/// mean size is derived from the same sampled counters), `packets >= 1`,
/// and a packet size inside physical IP bounds. A random 35-byte window
/// passes the product identity with probability ~2^-64, which is what
/// makes byte-wise resynchronization after a misalignment safe.
pub fn plausible_record(f: &FlowRecord) -> bool {
    f.packets >= 1
        && (MIN_PKT_SIZE..=MAX_PKT_SIZE).contains(&f.pkt_size)
        && f.bytes == f.packets as u64 * f.pkt_size as u64
}

/// Whether a plausible record decodes at byte `pos`.
pub(crate) fn plausible_at(data: &[u8], pos: usize) -> Option<FlowRecord> {
    let rest = data.get(pos..pos + RECORD_LEN)?;
    let f = decode_record(rest).ok()?;
    plausible_record(&f).then_some(f)
}

/// Decode a complete buffer, recovering from corruption.
///
/// Unlike [`decode`], which fail-stops, this walks the fixed 35-byte
/// stride and checks every record against [`plausible_record`]. On a
/// failure it quarantines bytes and resynchronizes byte-wise to the next
/// offset where a plausible record decodes — recovering alignment after
/// inserted or deleted bytes, not just in-place corruption. The returned
/// [`IngestHealth`] accounts for every input byte:
/// `ok_bytes + quarantined_bytes == data.len()`.
///
/// A bad file header is unrecoverable and quarantines the whole input.
pub fn decode_resilient(data: &[u8]) -> (Vec<FlowRecord>, IngestHealth) {
    let mut health = IngestHealth::new(data.len() as u64);
    let mut out = Vec::new();
    if data.len() < 4 || &data[..4] != MAGIC {
        health.abandon(FaultKind::BadMagic);
        health.record_metrics("ipfix");
        return (out, health);
    }
    if data.len() < 6 {
        health.abandon(FaultKind::Truncated);
        health.record_metrics("ipfix");
        return (out, health);
    }
    if u16::from_be_bytes([data[4], data[5]]) != VERSION {
        health.abandon(FaultKind::BadVersion);
        health.record_metrics("ipfix");
        return (out, health);
    }
    health.credit_ok(6);
    let mut pos = 6usize;
    while pos < data.len() {
        if let Some(f) = plausible_at(data, pos) {
            out.push(f);
            health.credit_record(RECORD_LEN as u64);
            pos += RECORD_LEN;
            continue;
        }
        let kind = if data.len() - pos < RECORD_LEN {
            FaultKind::Truncated
        } else {
            FaultKind::Implausible
        };
        let mut next = pos + 1;
        while next + RECORD_LEN <= data.len() && plausible_at(data, next).is_none() {
            next += 1;
        }
        if next + RECORD_LEN > data.len() {
            next = data.len(); // nothing plausible left: quarantine the tail
        }
        health.quarantine(pos as u64, (next - pos) as u64, kind);
        if next < data.len() {
            health.note_resync();
        }
        pos = next;
    }
    health.record_metrics("ipfix");
    (out, health)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FlowRecord> {
        vec![
            FlowRecord {
                ts: 100,
                src: 0x0A000001,
                dst: 0xC0000201,
                proto: Proto::Udp,
                sport: 53124,
                dport: 123,
                packets: 3,
                bytes: 180,
                pkt_size: 60,
                member: Asn(64496 - 1),
            },
            FlowRecord {
                ts: u32::MAX,
                src: 0,
                dst: u32::MAX,
                proto: Proto::Other(255),
                sport: 0,
                dport: 65535,
                packets: u32::MAX,
                bytes: u64::MAX,
                pkt_size: u16::MAX,
                member: Asn(u32::MAX),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let flows = sample();
        assert_eq!(decode(&encode(&flows)).unwrap(), flows);
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn record_size_is_fixed() {
        let bytes = encode(&sample());
        assert_eq!(bytes.len(), 6 + 2 * RECORD_LEN);
    }

    #[test]
    fn bad_magic_and_version() {
        assert!(matches!(decode(b"XXXX\x00\x01"), Err(IpfixError::BadMagic)));
        let mut bytes = encode(&[]);
        bytes[5] = 9;
        assert!(matches!(decode(&bytes), Err(IpfixError::BadVersion(9))));
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let bytes = encode(&sample());
        for cut in 6..bytes.len() {
            match decode(&bytes[..cut]) {
                Ok(flows) => assert_eq!(
                    (cut - 6) % RECORD_LEN,
                    0,
                    "cut {cut} decoded {} records",
                    flows.len()
                ),
                Err(IpfixError::Truncated) => {}
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
    }

    /// A corpus of records that satisfy [`plausible_record`] (as every
    /// exporter-produced record does).
    fn plausible_sample(n: u32) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let packets = 1 + i % 40;
                let pkt_size = 40 + (i % 1400) as u16;
                FlowRecord {
                    ts: 100 + i,
                    src: 0x0A00_0000 + i,
                    dst: 0xC000_0200 + i,
                    proto: if i % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    sport: 1025 + (i % 60000) as u16,
                    dport: 80,
                    packets,
                    bytes: packets as u64 * pkt_size as u64,
                    pkt_size,
                    member: Asn(64496 + i % 7),
                }
            })
            .collect()
    }

    #[test]
    fn resilient_matches_strict_on_clean_input() {
        let flows = plausible_sample(20);
        let bytes = encode(&flows);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got, flows);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
        assert!(health.reconciles());
        assert_eq!(health.ok_records, 20);
    }

    #[test]
    fn resilient_quarantines_truncated_tail() {
        let flows = plausible_sample(5);
        let bytes = encode(&flows);
        let cut = bytes.len() - 10; // mid-way through the last record
        let (got, health) = decode_resilient(&bytes[..cut]);
        assert_eq!(got, flows[..4]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.events[0].kind, FaultKind::Truncated);
    }

    #[test]
    fn resilient_skips_corrupted_counter() {
        let flows = plausible_sample(10);
        let mut bytes = encode(&flows);
        // Flip a bit in record 3's byte counter: the product identity
        // breaks, so only that record is lost.
        let off = 6 + 3 * RECORD_LEN + 21; // bytes field starts at +21
        bytes[off] ^= 0x10;
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got.len(), 9);
        assert_eq!(got[..3], flows[..3]);
        assert_eq!(got[3..], flows[4..]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.quarantined_bytes, RECORD_LEN as u64);
        assert_eq!(health.resyncs, 1);
    }

    #[test]
    fn resilient_regains_alignment_after_inserted_garbage() {
        let flows = plausible_sample(10);
        let mut bytes = encode(&flows);
        // Insert 7 garbage bytes between records 4 and 5, breaking the
        // 35-byte stride for everything after.
        let at = 6 + 5 * RECORD_LEN;
        bytes.splice(at..at, [0xDEu8, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02]);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got, flows, "all ten records recovered around the insertion");
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.quarantined_bytes, 7);
        assert_eq!(health.resyncs, 1);
    }

    #[test]
    fn resilient_decodes_duplicated_record() {
        let flows = plausible_sample(4);
        let mut bytes = encode(&flows);
        let start = 6 + RECORD_LEN;
        let dup: Vec<u8> = bytes[start..start + RECORD_LEN].to_vec();
        bytes.splice(start..start, dup);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got.len(), 5);
        assert_eq!(got[1], got[2]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
        assert!(health.reconciles());
    }

    #[test]
    fn resilient_abandons_bad_header() {
        let (got, health) = decode_resilient(b"XXXX\x00\x01whatever");
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert!(health.reconciles());

        let mut bytes = encode(&plausible_sample(2));
        bytes[5] = 9;
        let (got, health) = decode_resilient(&bytes);
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert_eq!(health.events[0].kind, FaultKind::BadVersion);
    }

    #[test]
    fn implausible_records_are_not_real_flows() {
        // The all-max stress record used above fails the product
        // identity, as random garbage almost surely does.
        assert!(!plausible_record(&sample()[1]));
        for f in plausible_sample(50) {
            assert!(plausible_record(&f));
        }
    }

    #[test]
    fn writer_counts() {
        let mut w = IpfixWriter::new(Vec::new()).unwrap();
        assert_eq!(w.count(), 0);
        for f in sample() {
            w.write_record(&f).unwrap();
        }
        assert_eq!(w.count(), 2);
    }
}
