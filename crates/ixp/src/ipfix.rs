//! "IPFIX-lite": a fixed-layout binary codec for flow records.
//!
//! Layout (big-endian), version 2:
//!
//! ```text
//! file   := magic "IPFX" | version u16 (=2) | record_len u16 | record*
//! record := ts u32 | src u32 | dst u32 | proto u8 | sport u16 | dport u16
//!         | packets u32 | bytes u64 | pkt_size u16 | member u32 | ttl u8
//!         | unknown-extension bytes (record_len - 36, skipped on decode)
//! ```
//!
//! Version 1 files (6-byte header, 35-byte records without the TTL
//! column) still decode — the missing TTL reads as 0. The explicit
//! `record_len` in the v2 header makes the layout forward-compatible in
//! the other direction too: a reader that knows only the 36-byte prefix
//! decodes it and skips the trailing unknown bytes of each record, so a
//! future column appended after `ttl` does not quarantine today's
//! traffic.
//!
//! Records are fixed-size within a file, so the reader can detect torn
//! files exactly and random access is trivial.

use bytes::{Buf, BufMut};
use spoofwatch_net::{Asn, FaultKind, FlowRecord, IngestHealth, Proto};
use std::fmt;
use std::io::{self, Read, Write};

pub(crate) const MAGIC: &[u8; 4] = b"IPFX";
/// Version this codec writes.
pub(crate) const VERSION: u16 = 2;
/// The pre-TTL version this codec still reads.
pub(crate) const VERSION_V1: u16 = 1;
/// Size of the current (v2) file header (magic + version + record_len).
pub const HEADER_LEN: usize = 8;
/// Size of one encoded record as this codec writes it (v2).
pub const RECORD_LEN: usize = 36;
/// Size of the legacy v1 header (magic + version).
pub const V1_HEADER_LEN: usize = 6;
/// Size of one legacy v1 record (no TTL column).
pub const V1_RECORD_LEN: usize = 35;

/// The wire geometry of one IPFIX-lite file, parsed from its header.
///
/// `record_len` is what the file declares (v1 implies 35); `known_len`
/// is how much of each record this codec understands. Trailing
/// `record_len - known_len` bytes per record are unknown extensions and
/// are skipped, not quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Bytes in the file header.
    pub header_len: usize,
    /// Declared bytes per record (the decode stride).
    pub record_len: usize,
    /// Bytes of each record this codec decodes (36 for v2, 35 for v1).
    pub known_len: usize,
}

impl Layout {
    /// The layout this codec writes.
    pub const CURRENT: Layout = Layout {
        header_len: HEADER_LEN,
        record_len: RECORD_LEN,
        known_len: RECORD_LEN,
    };
    /// The legacy pre-TTL layout.
    pub const V1: Layout = Layout {
        header_len: V1_HEADER_LEN,
        record_len: V1_RECORD_LEN,
        known_len: V1_RECORD_LEN,
    };

    /// Parse a file header. Returns the layout, or the fault that makes
    /// the file undecodable. A v2 header declaring `record_len` shorter
    /// than the known 36 bytes is a version fault: the file claims the
    /// current version but cannot hold its columns.
    pub fn parse(data: &[u8]) -> Result<Layout, FaultKind> {
        if data.len() < 4 || &data[..4] != MAGIC {
            return Err(FaultKind::BadMagic);
        }
        if data.len() < V1_HEADER_LEN {
            return Err(FaultKind::Truncated);
        }
        match u16::from_be_bytes([data[4], data[5]]) {
            VERSION_V1 => Ok(Layout::V1),
            VERSION => {
                if data.len() < HEADER_LEN {
                    return Err(FaultKind::Truncated);
                }
                let record_len = u16::from_be_bytes([data[6], data[7]]) as usize;
                if record_len < RECORD_LEN {
                    return Err(FaultKind::BadVersion);
                }
                Ok(Layout {
                    header_len: HEADER_LEN,
                    record_len,
                    known_len: RECORD_LEN,
                })
            }
            _ => Err(FaultKind::BadVersion),
        }
    }
}

/// IPFIX-lite decode errors.
#[derive(Debug)]
pub enum IpfixError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic.
    BadMagic,
    /// Unsupported version (or a v2 header whose declared record length
    /// cannot hold the known columns).
    BadVersion(u16),
    /// Stream ended inside a record.
    Truncated,
}

impl fmt::Display for IpfixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpfixError::Io(e) => write!(f, "IPFIX-lite I/O error: {e}"),
            IpfixError::BadMagic => f.write_str("IPFIX-lite: bad magic"),
            IpfixError::BadVersion(v) => write!(f, "IPFIX-lite: unsupported version {v}"),
            IpfixError::Truncated => f.write_str("IPFIX-lite: truncated record"),
        }
    }
}

impl std::error::Error for IpfixError {}

impl From<io::Error> for IpfixError {
    fn from(e: io::Error) -> Self {
        IpfixError::Io(e)
    }
}

/// Encode one record into a 36-byte array (current layout).
pub fn encode_record(f: &FlowRecord) -> [u8; RECORD_LEN] {
    let mut out = [0u8; RECORD_LEN];
    let mut buf = &mut out[..];
    buf.put_u32(f.ts);
    buf.put_u32(f.src);
    buf.put_u32(f.dst);
    buf.put_u8(f.proto.number());
    buf.put_u16(f.sport);
    buf.put_u16(f.dport);
    buf.put_u32(f.packets);
    buf.put_u64(f.bytes);
    buf.put_u16(f.pkt_size);
    buf.put_u32(f.member.0);
    buf.put_u8(f.ttl);
    out
}

/// Encode one record in the legacy v1 layout (drops the TTL column).
pub fn encode_record_v1(f: &FlowRecord) -> [u8; V1_RECORD_LEN] {
    let full = encode_record(f);
    let mut out = [0u8; V1_RECORD_LEN];
    out.copy_from_slice(&full[..V1_RECORD_LEN]);
    out
}

/// Decode the known prefix of one record. For a v1 layout the TTL
/// column is absent and reads as 0; bytes past `layout.known_len` are
/// unknown extensions and are ignored.
pub fn decode_record_with(mut data: &[u8], layout: &Layout) -> Result<FlowRecord, IpfixError> {
    if data.len() < layout.record_len {
        return Err(IpfixError::Truncated);
    }
    let mut f = FlowRecord {
        ts: data.get_u32(),
        src: data.get_u32(),
        dst: data.get_u32(),
        proto: Proto::from_number(data.get_u8()),
        sport: data.get_u16(),
        dport: data.get_u16(),
        packets: data.get_u32(),
        bytes: data.get_u64(),
        pkt_size: data.get_u16(),
        member: Asn(data.get_u32()),
        ttl: 0,
    };
    if layout.known_len >= RECORD_LEN {
        f.ttl = data.get_u8();
    }
    Ok(f)
}

/// Decode one record in the current (v2, 36-byte) layout.
pub fn decode_record(data: &[u8]) -> Result<FlowRecord, IpfixError> {
    decode_record_with(data, &Layout::CURRENT)
}

/// Streaming writer (current layout).
pub struct IpfixWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> IpfixWriter<W> {
    /// Write the header and return the writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(MAGIC)?;
        inner.write_all(&VERSION.to_be_bytes())?;
        inner.write_all(&(RECORD_LEN as u16).to_be_bytes())?;
        Ok(IpfixWriter { inner, written: 0 })
    }

    /// Append one record.
    pub fn write_record(&mut self, f: &FlowRecord) -> io::Result<()> {
        self.inner.write_all(&encode_record(f))?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming reader; handles v1 and v2 headers transparently.
pub struct IpfixReader<R: Read> {
    inner: R,
    layout: Layout,
    /// Reusable record buffer (`layout.record_len` bytes) — one
    /// allocation per reader, not one per record.
    buf: Vec<u8>,
}

impl<R: Read> IpfixReader<R> {
    /// Read and validate the header.
    pub fn new(mut inner: R) -> Result<Self, IpfixError> {
        let mut magic = [0u8; 4];
        inner.read_exact(&mut magic).map_err(|_| IpfixError::BadMagic)?;
        if &magic != MAGIC {
            return Err(IpfixError::BadMagic);
        }
        let mut ver = [0u8; 2];
        inner.read_exact(&mut ver).map_err(|_| IpfixError::Truncated)?;
        let layout = match u16::from_be_bytes(ver) {
            VERSION_V1 => Layout::V1,
            VERSION => {
                let mut rl = [0u8; 2];
                inner.read_exact(&mut rl).map_err(|_| IpfixError::Truncated)?;
                let record_len = u16::from_be_bytes(rl) as usize;
                if record_len < RECORD_LEN {
                    return Err(IpfixError::BadVersion(VERSION));
                }
                Layout {
                    header_len: HEADER_LEN,
                    record_len,
                    known_len: RECORD_LEN,
                }
            }
            version => return Err(IpfixError::BadVersion(version)),
        };
        let buf = vec![0u8; layout.record_len];
        Ok(IpfixReader { inner, layout, buf })
    }

    /// The layout the header declared.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Read the next record; `Ok(None)` at clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<FlowRecord>, IpfixError> {
        let buf = &mut self.buf;
        let mut got = 0usize;
        while got < buf.len() {
            match self.inner.read(&mut buf[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => return Err(IpfixError::Truncated),
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        decode_record_with(&buf[..], &self.layout).map(Some)
    }

    /// Drain all remaining records.
    pub fn collect_records(&mut self) -> Result<Vec<FlowRecord>, IpfixError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Encode a batch to memory (current layout).
pub fn encode(flows: &[FlowRecord]) -> Vec<u8> {
    encode_padded(flows, RECORD_LEN)
}

/// Encode a batch in the legacy v1 layout (6-byte header, 35-byte
/// records, no TTL) — for old-format fixtures and cross-version tests.
pub fn encode_v1(flows: &[FlowRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(V1_HEADER_LEN + flows.len() * V1_RECORD_LEN);
    out.put_slice(MAGIC);
    out.put_u16(VERSION_V1);
    for f in flows {
        out.put_slice(&encode_record_v1(f));
    }
    out
}

/// Encode a batch with `record_len >= 36`, zero-padding each record's
/// tail — what a future exporter with extra columns would produce. A
/// reader built from this codec decodes the known 36-byte prefix and
/// skips the rest.
pub fn encode_padded(flows: &[FlowRecord], record_len: usize) -> Vec<u8> {
    let record_len = record_len.max(RECORD_LEN);
    let mut out = Vec::with_capacity(HEADER_LEN + flows.len() * record_len);
    out.put_slice(MAGIC);
    out.put_u16(VERSION);
    out.put_u16(record_len as u16);
    for f in flows {
        out.put_slice(&encode_record(f));
        out.resize(out.len() + (record_len - RECORD_LEN), 0);
    }
    out
}

/// Decode a complete buffer (v1 or v2; fail-stop on damage).
pub fn decode(data: &[u8]) -> Result<Vec<FlowRecord>, IpfixError> {
    IpfixReader::new(data)?.collect_records()
}

/// Smallest credible IP packet size (a bare IPv4 header).
const MIN_PKT_SIZE: u16 = 20;
/// Largest credible IP packet size (jumbo frame).
const MAX_PKT_SIZE: u16 = 9216;

/// Whether a decoded record looks like real sampled flow data.
///
/// IPFIX-lite records carry no per-record framing or checksum, so this
/// internal-consistency test is the codec's only corruption signal: the
/// exporter always writes `bytes == packets * pkt_size` (the explicit
/// mean size is derived from the same sampled counters), `packets >= 1`,
/// and a packet size inside physical IP bounds. A random byte window
/// passes the product identity with probability ~2^-64, which is what
/// makes byte-wise resynchronization after a misalignment safe. The TTL
/// byte carries no constraint — every value is physically possible — so
/// plausibility rests entirely on the v1 prefix.
pub fn plausible_record(f: &FlowRecord) -> bool {
    f.packets >= 1
        && (MIN_PKT_SIZE..=MAX_PKT_SIZE).contains(&f.pkt_size)
        && f.bytes == f.packets as u64 * f.pkt_size as u64
}

/// Whether a plausible record decodes at byte `pos` under `layout`.
pub(crate) fn plausible_at(data: &[u8], pos: usize, layout: &Layout) -> Option<FlowRecord> {
    let rest = data.get(pos..pos + layout.record_len)?;
    let f = decode_record_with(rest, layout).ok()?;
    plausible_record(&f).then_some(f)
}

/// The resilient decode walk shared by [`decode_resilient`] and
/// [`decode_columnar`]: one implementation, two sinks, so the columnar
/// path is equal to the record-at-a-time path *by construction* (and
/// re-proven by the differential tests below and in
/// `tests/columnar_diff.rs`).
fn resilient_walk(data: &[u8], mut sink: impl FnMut(&FlowRecord)) -> IngestHealth {
    let mut health = IngestHealth::new(data.len() as u64);
    let layout = match Layout::parse(data) {
        Ok(l) => l,
        Err(kind) => {
            health.abandon(kind);
            health.record_metrics("ipfix");
            return health;
        }
    };
    health.credit_ok(layout.header_len as u64);
    let mut pos = layout.header_len;
    while pos < data.len() {
        if let Some(f) = plausible_at(data, pos, &layout) {
            sink(&f);
            health.credit_record(layout.record_len as u64);
            pos += layout.record_len;
            continue;
        }
        let kind = if data.len() - pos < layout.record_len {
            FaultKind::Truncated
        } else {
            FaultKind::Implausible
        };
        let mut next = pos + 1;
        while next + layout.record_len <= data.len() && plausible_at(data, next, &layout).is_none()
        {
            next += 1;
        }
        if next + layout.record_len > data.len() {
            next = data.len(); // nothing plausible left: quarantine the tail
        }
        health.quarantine(pos as u64, (next - pos) as u64, kind);
        if next < data.len() {
            health.note_resync();
        }
        pos = next;
    }
    health.record_metrics("ipfix");
    health
}

/// Decode a complete buffer, recovering from corruption.
///
/// Unlike [`decode`], which fail-stops, this walks the file's declared
/// record stride and checks every record against [`plausible_record`].
/// On a failure it quarantines bytes and resynchronizes byte-wise to the
/// next offset where a plausible record decodes — recovering alignment
/// after inserted or deleted bytes, not just in-place corruption. The
/// returned [`IngestHealth`] accounts for every input byte:
/// `ok_bytes + quarantined_bytes == data.len()`.
///
/// A bad file header is unrecoverable and quarantines the whole input.
pub fn decode_resilient(data: &[u8]) -> (Vec<FlowRecord>, IngestHealth) {
    let mut out = Vec::new();
    let health = resilient_walk(data, |f| out.push(*f));
    (out, health)
}

/// [`decode_resilient`] straight into a structure-of-arrays
/// [`FlowBatch`] — the columnar ingest half of the batched classify
/// path.
///
/// `batch` is cleared and refilled; its column capacities survive, so
/// feeding the same batch buffer after buffer performs **zero
/// per-record allocations** (each parsed record lives on the stack for
/// exactly one `push`) and, once the columns have grown to the working
/// size, zero per-call allocations. The walk, plausibility checks,
/// resynchronization, and [`IngestHealth`] accounting
/// (`ok_bytes + quarantined_bytes == input`) are literally the same
/// code as [`decode_resilient`]: both are thin sinks over one shared
/// walk.
pub fn decode_columnar(data: &[u8], batch: &mut spoofwatch_net::FlowBatch) -> IngestHealth {
    batch.clear();
    resilient_walk(data, |f| batch.push(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FlowRecord> {
        vec![
            FlowRecord {
                ts: 100,
                src: 0x0A000001,
                dst: 0xC0000201,
                proto: Proto::Udp,
                sport: 53124,
                dport: 123,
                packets: 3,
                bytes: 180,
                pkt_size: 60,
                member: Asn(64496 - 1),
                ttl: 57,
            },
            FlowRecord {
                ts: u32::MAX,
                src: 0,
                dst: u32::MAX,
                proto: Proto::Other(255),
                sport: 0,
                dport: 65535,
                packets: u32::MAX,
                bytes: u64::MAX,
                pkt_size: u16::MAX,
                member: Asn(u32::MAX),
                ttl: 255,
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let flows = sample();
        assert_eq!(decode(&encode(&flows)).unwrap(), flows);
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn record_size_is_fixed() {
        let bytes = encode(&sample());
        assert_eq!(bytes.len(), HEADER_LEN + 2 * RECORD_LEN);
    }

    #[test]
    fn v1_files_still_decode_with_zero_ttl() {
        let flows = sample();
        let v1 = encode_v1(&flows);
        assert_eq!(v1.len(), V1_HEADER_LEN + 2 * V1_RECORD_LEN);
        let got = decode(&v1).unwrap();
        assert_eq!(got.len(), flows.len());
        for (g, f) in got.iter().zip(&flows) {
            let mut want = *f;
            want.ttl = 0;
            assert_eq!(*g, want);
        }
        // And through the resilient path (plausible corpus: the strict
        // sample deliberately includes an implausible stress record).
        let plausible = plausible_sample(6);
        let (resilient, health) = decode_resilient(&encode_v1(&plausible));
        let want: Vec<FlowRecord> = plausible
            .iter()
            .map(|f| FlowRecord { ttl: 0, ..*f })
            .collect();
        assert_eq!(resilient, want);
        assert!(health.reconciles());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
    }

    #[test]
    fn longer_than_known_records_decode_with_tail_skipped() {
        let flows = plausible_sample(10);
        for record_len in [RECORD_LEN + 1, RECORD_LEN + 5, RECORD_LEN + 64] {
            let bytes = encode_padded(&flows, record_len);
            assert_eq!(bytes.len(), HEADER_LEN + flows.len() * record_len);
            assert_eq!(decode(&bytes).unwrap(), flows, "record_len {record_len}");
            let (got, health) = decode_resilient(&bytes);
            assert_eq!(got, flows, "record_len {record_len}");
            assert!(health.reconciles());
            assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
            assert_eq!(health.ok_records, flows.len() as u64);
        }
    }

    #[test]
    fn v2_header_with_undersized_record_len_is_a_version_fault() {
        let mut bytes = encode(&plausible_sample(2));
        bytes[6..8].copy_from_slice(&(RECORD_LEN as u16 - 1).to_be_bytes());
        assert!(matches!(decode(&bytes), Err(IpfixError::BadVersion(2))));
        let (got, health) = decode_resilient(&bytes);
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert_eq!(health.events[0].kind, FaultKind::BadVersion);
    }

    #[test]
    fn bad_magic_and_version() {
        assert!(matches!(decode(b"XXXX\x00\x01"), Err(IpfixError::BadMagic)));
        let mut bytes = encode(&[]);
        bytes[5] = 9;
        assert!(matches!(decode(&bytes), Err(IpfixError::BadVersion(_))));
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let bytes = encode(&sample());
        for cut in HEADER_LEN..bytes.len() {
            match decode(&bytes[..cut]) {
                Ok(flows) => assert_eq!(
                    (cut - HEADER_LEN) % RECORD_LEN,
                    0,
                    "cut {cut} decoded {} records",
                    flows.len()
                ),
                Err(IpfixError::Truncated) => {}
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
    }

    /// A corpus of records that satisfy [`plausible_record`] (as every
    /// exporter-produced record does).
    fn plausible_sample(n: u32) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let packets = 1 + i % 40;
                let pkt_size = 40 + (i % 1400) as u16;
                FlowRecord {
                    ts: 100 + i,
                    src: 0x0A00_0000 + i,
                    dst: 0xC000_0200 + i,
                    proto: if i % 2 == 0 { Proto::Tcp } else { Proto::Udp },
                    sport: 1025 + (i % 60000) as u16,
                    dport: 80,
                    packets,
                    bytes: packets as u64 * pkt_size as u64,
                    pkt_size,
                    member: Asn(64496 + i % 7),
                    ttl: 30 + (i % 90) as u8,
                }
            })
            .collect()
    }

    #[test]
    fn resilient_matches_strict_on_clean_input() {
        let flows = plausible_sample(20);
        let bytes = encode(&flows);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got, flows);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
        assert!(health.reconciles());
        assert_eq!(health.ok_records, 20);
    }

    #[test]
    fn resilient_quarantines_truncated_tail() {
        let flows = plausible_sample(5);
        let bytes = encode(&flows);
        let cut = bytes.len() - 10; // mid-way through the last record
        let (got, health) = decode_resilient(&bytes[..cut]);
        assert_eq!(got, flows[..4]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.events[0].kind, FaultKind::Truncated);
    }

    #[test]
    fn resilient_skips_corrupted_counter() {
        let flows = plausible_sample(10);
        let mut bytes = encode(&flows);
        // Flip a bit in record 3's byte counter: the product identity
        // breaks, so only that record is lost.
        let off = HEADER_LEN + 3 * RECORD_LEN + 21; // bytes field starts at +21
        bytes[off] ^= 0x10;
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got.len(), 9);
        assert_eq!(got[..3], flows[..3]);
        assert_eq!(got[3..], flows[4..]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.quarantined_bytes, RECORD_LEN as u64);
        assert_eq!(health.resyncs, 1);
    }

    #[test]
    fn resilient_regains_alignment_after_inserted_garbage() {
        let flows = plausible_sample(10);
        let mut bytes = encode(&flows);
        // Insert 7 garbage bytes between records 4 and 5, breaking the
        // fixed stride for everything after.
        let at = HEADER_LEN + 5 * RECORD_LEN;
        bytes.splice(at..at, [0xDEu8, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02]);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got, flows, "all ten records recovered around the insertion");
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
        assert!(health.reconciles());
        assert_eq!(health.quarantined_bytes, 7);
        assert_eq!(health.resyncs, 1);
    }

    #[test]
    fn resilient_recovers_inside_extended_layouts() {
        // Corruption in one extended record's known prefix loses only
        // that record; the unknown tail bytes never confuse the walk.
        let flows = plausible_sample(8);
        let record_len = RECORD_LEN + 12;
        let mut bytes = encode_padded(&flows, record_len);
        let off = HEADER_LEN + 2 * record_len + 21; // record 2's bytes field
        bytes[off] ^= 0x04;
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got.len(), 7);
        assert_eq!(got[..2], flows[..2]);
        assert_eq!(got[2..], flows[3..]);
        assert!(health.reconciles());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Recovered);
    }

    #[test]
    fn resilient_decodes_duplicated_record() {
        let flows = plausible_sample(4);
        let mut bytes = encode(&flows);
        let start = HEADER_LEN + RECORD_LEN;
        let dup: Vec<u8> = bytes[start..start + RECORD_LEN].to_vec();
        bytes.splice(start..start, dup);
        let (got, health) = decode_resilient(&bytes);
        assert_eq!(got.len(), 5);
        assert_eq!(got[1], got[2]);
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Ok);
        assert!(health.reconciles());
    }

    #[test]
    fn resilient_abandons_bad_header() {
        let (got, health) = decode_resilient(b"XXXX\x00\x01whatever");
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert!(health.reconciles());

        let mut bytes = encode(&plausible_sample(2));
        bytes[5] = 9;
        let (got, health) = decode_resilient(&bytes);
        assert!(got.is_empty());
        assert_eq!(health.status(), spoofwatch_net::IngestStatus::Unrecoverable);
        assert_eq!(health.events[0].kind, FaultKind::BadVersion);
    }

    #[test]
    fn implausible_records_are_not_real_flows() {
        // The all-max stress record used above fails the product
        // identity, as random garbage almost surely does.
        assert!(!plausible_record(&sample()[1]));
        for f in plausible_sample(50) {
            assert!(plausible_record(&f));
        }
    }

    #[test]
    fn writer_counts() {
        let mut w = IpfixWriter::new(Vec::new()).unwrap();
        assert_eq!(w.count(), 0);
        for f in sample() {
            w.write_record(&f).unwrap();
        }
        assert_eq!(w.count(), 2);
    }
}
