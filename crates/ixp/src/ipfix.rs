//! "IPFIX-lite": a fixed-layout binary codec for flow records.
//!
//! Layout (big-endian):
//!
//! ```text
//! file   := magic "IPFX" | version u16 | record*
//! record := ts u32 | src u32 | dst u32 | proto u8 | sport u16 | dport u16
//!         | packets u32 | bytes u64 | pkt_size u16 | member u32
//! ```
//!
//! Records are fixed-size (35 bytes), so the reader can detect torn files
//! exactly and random access is trivial.

use bytes::{Buf, BufMut};
use spoofwatch_net::{Asn, FlowRecord, Proto};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"IPFX";
const VERSION: u16 = 1;
/// Size of one encoded record.
pub const RECORD_LEN: usize = 35;

/// IPFIX-lite decode errors.
#[derive(Debug)]
pub enum IpfixError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Stream ended inside a record.
    Truncated,
}

impl fmt::Display for IpfixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpfixError::Io(e) => write!(f, "IPFIX-lite I/O error: {e}"),
            IpfixError::BadMagic => f.write_str("IPFIX-lite: bad magic"),
            IpfixError::BadVersion(v) => write!(f, "IPFIX-lite: unsupported version {v}"),
            IpfixError::Truncated => f.write_str("IPFIX-lite: truncated record"),
        }
    }
}

impl std::error::Error for IpfixError {}

impl From<io::Error> for IpfixError {
    fn from(e: io::Error) -> Self {
        IpfixError::Io(e)
    }
}

/// Encode one record into a 35-byte array.
pub fn encode_record(f: &FlowRecord) -> [u8; RECORD_LEN] {
    let mut out = [0u8; RECORD_LEN];
    let mut buf = &mut out[..];
    buf.put_u32(f.ts);
    buf.put_u32(f.src);
    buf.put_u32(f.dst);
    buf.put_u8(f.proto.number());
    buf.put_u16(f.sport);
    buf.put_u16(f.dport);
    buf.put_u32(f.packets);
    buf.put_u64(f.bytes);
    buf.put_u16(f.pkt_size);
    buf.put_u32(f.member.0);
    out
}

/// Decode one 35-byte record.
pub fn decode_record(mut data: &[u8]) -> Result<FlowRecord, IpfixError> {
    if data.len() < RECORD_LEN {
        return Err(IpfixError::Truncated);
    }
    Ok(FlowRecord {
        ts: data.get_u32(),
        src: data.get_u32(),
        dst: data.get_u32(),
        proto: Proto::from_number(data.get_u8()),
        sport: data.get_u16(),
        dport: data.get_u16(),
        packets: data.get_u32(),
        bytes: data.get_u64(),
        pkt_size: data.get_u16(),
        member: Asn(data.get_u32()),
    })
}

/// Streaming writer.
pub struct IpfixWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> IpfixWriter<W> {
    /// Write the header and return the writer.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(MAGIC)?;
        inner.write_all(&VERSION.to_be_bytes())?;
        Ok(IpfixWriter { inner, written: 0 })
    }

    /// Append one record.
    pub fn write_record(&mut self, f: &FlowRecord) -> io::Result<()> {
        self.inner.write_all(&encode_record(f))?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.written
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming reader.
pub struct IpfixReader<R: Read> {
    inner: R,
}

impl<R: Read> IpfixReader<R> {
    /// Read and validate the header.
    pub fn new(mut inner: R) -> Result<Self, IpfixError> {
        let mut magic = [0u8; 4];
        inner.read_exact(&mut magic).map_err(|_| IpfixError::BadMagic)?;
        if &magic != MAGIC {
            return Err(IpfixError::BadMagic);
        }
        let mut ver = [0u8; 2];
        inner.read_exact(&mut ver).map_err(|_| IpfixError::Truncated)?;
        let version = u16::from_be_bytes(ver);
        if version != VERSION {
            return Err(IpfixError::BadVersion(version));
        }
        Ok(IpfixReader { inner })
    }

    /// Read the next record; `Ok(None)` at clean end-of-file.
    pub fn next_record(&mut self) -> Result<Option<FlowRecord>, IpfixError> {
        let mut buf = [0u8; RECORD_LEN];
        let mut got = 0usize;
        while got < RECORD_LEN {
            match self.inner.read(&mut buf[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => return Err(IpfixError::Truncated),
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        decode_record(&buf).map(Some)
    }

    /// Drain all remaining records.
    pub fn collect_records(&mut self) -> Result<Vec<FlowRecord>, IpfixError> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Encode a batch to memory.
pub fn encode(flows: &[FlowRecord]) -> Vec<u8> {
    let mut w = IpfixWriter::new(Vec::with_capacity(6 + flows.len() * RECORD_LEN))
        .expect("Vec writes cannot fail");
    for f in flows {
        w.write_record(f).expect("Vec writes cannot fail");
    }
    w.finish().expect("Vec writes cannot fail")
}

/// Decode a complete buffer.
pub fn decode(data: &[u8]) -> Result<Vec<FlowRecord>, IpfixError> {
    IpfixReader::new(data)?.collect_records()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FlowRecord> {
        vec![
            FlowRecord {
                ts: 100,
                src: 0x0A000001,
                dst: 0xC0000201,
                proto: Proto::Udp,
                sport: 53124,
                dport: 123,
                packets: 3,
                bytes: 180,
                pkt_size: 60,
                member: Asn(64496 - 1),
            },
            FlowRecord {
                ts: u32::MAX,
                src: 0,
                dst: u32::MAX,
                proto: Proto::Other(255),
                sport: 0,
                dport: 65535,
                packets: u32::MAX,
                bytes: u64::MAX,
                pkt_size: u16::MAX,
                member: Asn(u32::MAX),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let flows = sample();
        assert_eq!(decode(&encode(&flows)).unwrap(), flows);
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn record_size_is_fixed() {
        let bytes = encode(&sample());
        assert_eq!(bytes.len(), 6 + 2 * RECORD_LEN);
    }

    #[test]
    fn bad_magic_and_version() {
        assert!(matches!(decode(b"XXXX\x00\x01"), Err(IpfixError::BadMagic)));
        let mut bytes = encode(&[]);
        bytes[5] = 9;
        assert!(matches!(decode(&bytes), Err(IpfixError::BadVersion(9))));
    }

    #[test]
    fn truncation_detected_at_every_cut() {
        let bytes = encode(&sample());
        for cut in 6..bytes.len() {
            match decode(&bytes[..cut]) {
                Ok(flows) => assert_eq!(
                    (cut - 6) % RECORD_LEN,
                    0,
                    "cut {cut} decoded {} records",
                    flows.len()
                ),
                Err(IpfixError::Truncated) => {}
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
    }

    #[test]
    fn writer_counts() {
        let mut w = IpfixWriter::new(Vec::new()).unwrap();
        assert_eq!(w.count(), 0);
        for f in sample() {
            w.write_record(&f).unwrap();
        }
        assert_eq!(w.count(), 2);
    }
}
