//! A pluggable time source.
//!
//! The streaming runner's watchdog and restart backoff are
//! timing-sensitive: tested against the real clock they either sleep
//! for real (slow tests) or flake under load (a 10 ms sleep can take
//! 200 ms on a busy CI box). Every timing decision therefore goes
//! through the [`Clock`] trait: production uses [`RealClock`], tests
//! use [`ManualClock`] whose time advances only when the code under
//! test sleeps — making stall detection and backoff schedules exactly
//! reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic time source plus the ability to wait on it.
///
/// `now_ns` must be monotonic non-decreasing within one clock instance;
/// the absolute epoch is unspecified (only differences are meaningful).
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's (arbitrary) epoch.
    fn now_ns(&self) -> u64;

    /// Wait for `d` of this clock's time.
    fn sleep(&self, d: Duration);

    /// Convenience: the elapsed time since an earlier `now_ns` reading.
    fn since_ns(&self, earlier_ns: u64) -> u64 {
        self.now_ns().saturating_sub(earlier_ns)
    }
}

/// The production clock: monotonic [`Instant`] time and real
/// [`std::thread::sleep`].
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A clock whose epoch is its moment of construction.
    pub fn new() -> RealClock {
        RealClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        // ~584 years of range; saturate rather than wrap on the absurd.
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A deterministic test clock.
///
/// Time stands still except when explicitly advanced — either by the
/// test ([`ManualClock::advance`]) or by the code under test calling
/// [`Clock::sleep`], which advances time instantly instead of blocking.
/// A watchdog loop that `sleep`s its tick therefore runs its timeout
/// schedule at full speed with no wall-clock dependence at all.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
    /// Nanoseconds each `now_ns` read advances time by (0 = reads are
    /// pure observations, the default).
    tick_ns: u64,
}

impl ManualClock {
    /// A manual clock starting at time zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A manual clock where every `now_ns` *read* advances time by
    /// `step` before reporting it. Code that measures a duration with
    /// two reads (`t1 - t0`) therefore observes exactly `step`
    /// regardless of real elapsed time — which makes latency
    /// instrumentation assertable to the nanosecond in tests.
    pub fn with_autotick(step: Duration) -> ManualClock {
        ManualClock {
            ns: AtomicU64::new(0),
            tick_ns: u64::try_from(step.as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let add = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.ns.fetch_add(add, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        // With autotick off (tick_ns == 0) this is a plain load.
        self.ns
            .fetch_add(self.tick_ns, Ordering::SeqCst)
            .saturating_add(self.tick_ns)
    }

    fn sleep(&self, d: Duration) {
        // Sleeping *is* advancing: the sleeper wakes exactly when its
        // deadline arrives, and nothing else moves the clock meanwhile.
        self.advance(d);
        // Yield so other real threads (e.g. a worker the watchdog is
        // monitoring) get scheduled between manual-clock ticks.
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        c.sleep(Duration::from_millis(1));
        assert!(c.now_ns() > a);
        assert!(c.since_ns(a) >= 1_000_000);
    }

    #[test]
    fn manual_clock_advances_only_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0, "time stands still");
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now_ns(), 1_000_000_000);
        c.sleep(Duration::from_millis(250));
        assert_eq!(c.now_ns(), 1_250_000_000, "sleep advances instantly");
        assert_eq!(c.since_ns(1_000_000_000), 250_000_000);
    }

    #[test]
    fn manual_clock_autotick_makes_durations_exact() {
        let c = ManualClock::with_autotick(Duration::from_micros(5));
        let t0 = c.now_ns();
        assert_eq!(t0, 5_000);
        assert_eq!(c.since_ns(t0), 5_000, "each read steps exactly once");
        // Explicit advances compose with the per-read tick.
        c.advance(Duration::from_millis(1));
        assert_eq!(c.now_ns(), 1_015_000);
    }

    #[test]
    fn manual_clock_is_shareable() {
        use std::sync::Arc;
        let c = Arc::new(ManualClock::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.sleep(Duration::from_secs(2)));
        h.join().expect("join");
        assert_eq!(c.now_ns(), 2_000_000_000);
    }
}
