//! Span/event tracing with a bounded ring-buffer flight recorder.
//!
//! A [`Tracer`] records structured events (name + key=value fields +
//! monotonic timestamp) into a fixed-capacity ring: old events fall off
//! the back, so memory is bounded no matter how long a study runs.
//! [`Span`] guards wrap a timed region — a `span_begin` event on entry,
//! a `span_end` event (with `duration_ns`, and `panicked=true` when the
//! guard is dropped during unwinding) on exit.
//!
//! The ring doubles as a **flight recorder**: when something goes wrong
//! (a worker panic quarantines a chunk, the watchdog flags a stall) the
//! caller triggers a dump and gets the last N events as JSONL — the
//! trace that was in the air at the moment of the incident, including
//! the `span_begin` of whatever was active when it happened. When armed
//! with a path, dumps are also written to disk (latest dump wins).

use crate::clock::{Clock, RealClock};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanBegin,
    /// A span closed (fields carry `duration_ns` and `panicked`).
    SpanEnd,
    /// A point-in-time event.
    Event,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Event => "event",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Clock timestamp (ns since the tracer's clock epoch).
    pub ts_ns: u64,
    /// Begin/end/point.
    pub kind: EventKind,
    /// Event or span name.
    pub name: String,
    /// Span identity linking begin and end (0 for point events).
    pub span_id: u64,
    /// Structured fields.
    pub fields: Vec<(String, FieldValue)>,
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl TraceEvent {
    /// Render as one JSON object (one JSONL line, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"ts_ns\":{},\"type\":\"{}\",\"name\":\"",
            self.ts_ns,
            self.kind.as_str()
        );
        escape_json(&mut out, &self.name);
        out.push('"');
        if self.span_id != 0 {
            let _ = write!(out, ",\"span\":{}", self.span_id);
        }
        for (k, v) in &self.fields {
            out.push_str(",\"");
            escape_json(&mut out, k);
            out.push_str("\":");
            match v {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::I64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::F64(x) => {
                    if x.is_finite() {
                        let _ = write!(out, "{x}");
                    } else {
                        out.push_str("null"); // JSON has no Inf/NaN
                    }
                }
                FieldValue::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
                FieldValue::Str(s) => {
                    out.push('"');
                    escape_json(&mut out, s);
                    out.push('"');
                }
            }
        }
        out.push('}');
        out
    }
}

struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// The tracer: a clocked, bounded event ring with span guards and
/// flight-recorder dumps. Share via `Arc`.
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    clock: Arc<dyn Clock>,
    ring: Mutex<Ring>,
    next_span_id: AtomicU64,
    dump_path: Mutex<Option<PathBuf>>,
    last_dump: Mutex<Option<String>>,
    dumps: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A live tracer keeping the last `capacity` events (minimum 1) on
    /// the given clock.
    pub fn new(capacity: usize, clock: Arc<dyn Clock>) -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: true,
            capacity: capacity.max(1),
            clock,
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
            next_span_id: AtomicU64::new(1),
            dump_path: Mutex::new(None),
            last_dump: Mutex::new(None),
            dumps: AtomicU64::new(0),
        })
    }

    /// A live tracer on the real clock.
    pub fn with_capacity(capacity: usize) -> Arc<Tracer> {
        Tracer::new(capacity, Arc::new(RealClock::new()))
    }

    /// A tracer that records nothing and dumps empty traces.
    pub fn disabled() -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: false,
            capacity: 1,
            clock: Arc::new(RealClock::new()),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
            next_span_id: AtomicU64::new(1),
            dump_path: Mutex::new(None),
            last_dump: Mutex::new(None),
            dumps: AtomicU64::new(0),
        })
    }

    /// Whether events are recorded at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The tracer's clock (shared with whoever needs coherent times).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    fn lock_ring(&self) -> MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = self.lock_ring();
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// Record a point-in-time event.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            ts_ns: self.clock.now_ns(),
            kind: EventKind::Event,
            name: name.to_string(),
            span_id: 0,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    /// Open a span: records `span_begin` now, `span_end` when the
    /// returned guard drops (noting `panicked=true` if dropped during
    /// unwinding).
    pub fn span(&self, name: &str, fields: &[(&str, FieldValue)]) -> Span<'_> {
        let t0 = self.clock.now_ns();
        if !self.enabled {
            return Span {
                tracer: self,
                name: String::new(),
                span_id: 0,
                t0,
            };
        }
        let span_id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        self.push(TraceEvent {
            ts_ns: t0,
            kind: EventKind::SpanBegin,
            name: name.to_string(),
            span_id,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
        Span {
            tracer: self,
            name: name.to_string(),
            span_id,
            t0,
        }
    }

    /// Events currently in the ring plus how many older ones were
    /// evicted.
    pub fn events(&self) -> (Vec<TraceEvent>, u64) {
        let ring = self.lock_ring();
        (ring.events.iter().cloned().collect(), ring.dropped)
    }

    /// Arm the flight recorder: every [`trigger_dump`](Self::trigger_dump)
    /// also writes the JSONL to `path` (latest dump wins).
    pub fn arm(&self, path: impl AsRef<Path>) {
        *self
            .dump_path
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(path.as_ref().to_path_buf());
    }

    /// The armed dump path, if any.
    pub fn dump_path(&self) -> Option<PathBuf> {
        self.dump_path
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Render the ring as JSONL (oldest first), prefixed with one
    /// header object recording the dump reason and eviction count.
    pub fn dump_jsonl(&self, reason: &str) -> String {
        let (events, dropped) = self.events();
        let mut out = String::with_capacity(64 + events.len() * 96);
        let mut header = String::new();
        escape_json(&mut header, reason);
        let _ = writeln!(
            out,
            "{{\"type\":\"flight_recorder_dump\",\"reason\":\"{header}\",\"events\":{},\"evicted\":{dropped}}}",
            events.len(),
        );
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Dump the ring: records the dump itself as an event, renders
    /// JSONL, stores it as [`last_dump`](Self::last_dump), and writes it
    /// to the armed path if any. Returns the JSONL. No-op (returns
    /// `None`) on a disabled tracer.
    pub fn trigger_dump(&self, reason: &str) -> Option<String> {
        if !self.enabled {
            return None;
        }
        self.event("flight_dump_triggered", &[("reason", reason.into())]);
        let dump = self.dump_jsonl(reason);
        self.dumps.fetch_add(1, Ordering::Relaxed);
        *self
            .last_dump
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = Some(dump.clone());
        if let Some(path) = self.dump_path() {
            let _ = std::fs::write(&path, &dump); // best-effort: telemetry must not fail the study
        }
        Some(dump)
    }

    /// The most recent dump, if any was triggered.
    pub fn last_dump(&self) -> Option<String> {
        self.last_dump
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// How many dumps have been triggered.
    pub fn dump_count(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }
}

/// A span guard; see [`Tracer::span`].
#[must_use = "a span measures the region until it is dropped"]
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: String,
    span_id: u64,
    t0: u64,
}

impl Span<'_> {
    /// The span's identity (0 on a disabled tracer).
    pub fn id(&self) -> u64 {
        self.span_id
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.span_id == 0 {
            return;
        }
        let now = self.tracer.clock.now_ns();
        self.tracer.push(TraceEvent {
            ts_ns: now,
            kind: EventKind::SpanEnd,
            name: std::mem::take(&mut self.name),
            span_id: self.span_id,
            fields: vec![
                (
                    "duration_ns".to_string(),
                    FieldValue::U64(now.saturating_sub(self.t0)),
                ),
                (
                    "panicked".to_string(),
                    FieldValue::Bool(std::thread::panicking()),
                ),
            ],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual_tracer(cap: usize) -> (Arc<Tracer>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(cap, Arc::clone(&clock) as Arc<dyn Clock>);
        (tracer, clock)
    }

    /// A minimal recursive-descent JSON well-formedness check (the
    /// vendored serde_json is serialize-only, so we verify our
    /// hand-rolled output with a hand-rolled parser).
    fn json_well_formed(s: &str) -> bool {
        fn skip_ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
                i += 1;
            }
            i
        }
        fn value(b: &[u8], i: usize) -> Option<usize> {
            let i = skip_ws(b, i);
            match b.get(i)? {
                b'{' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b'}') {
                        return Some(i + 1);
                    }
                    loop {
                        i = string(b, skip_ws(b, i))?;
                        i = skip_ws(b, i);
                        if b.get(i) != Some(&b':') {
                            return None;
                        }
                        i = value(b, i + 1)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b'}' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'[' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b']') {
                        return Some(i + 1);
                    }
                    loop {
                        i = value(b, i)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b']' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'"' => string(b, i),
                b't' => b[i..].starts_with(b"true").then_some(i + 4),
                b'f' => b[i..].starts_with(b"false").then_some(i + 5),
                b'n' => b[i..].starts_with(b"null").then_some(i + 4),
                b'-' | b'0'..=b'9' => {
                    let mut j = i + 1;
                    while j < b.len()
                        && matches!(b[j], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
                    {
                        j += 1;
                    }
                    Some(j)
                }
                _ => None,
            }
        }
        fn string(b: &[u8], i: usize) -> Option<usize> {
            if b.get(i) != Some(&b'"') {
                return None;
            }
            let mut i = i + 1;
            while let Some(&c) = b.get(i) {
                match c {
                    b'"' => return Some(i + 1),
                    b'\\' => i += 2,
                    0x00..=0x1f => return None,
                    _ => i += 1,
                }
            }
            None
        }
        let b = s.as_bytes();
        value(b, 0).map(|i| skip_ws(b, i)) == Some(b.len())
    }

    #[test]
    fn spans_record_begin_end_and_duration() {
        let (tracer, clock) = manual_tracer(16);
        {
            let _span = tracer.span("work", &[("seq", 7u64.into())]);
            clock.advance(std::time::Duration::from_micros(5));
        }
        let (events, dropped) = tracer.events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::SpanBegin);
        assert_eq!(events[1].kind, EventKind::SpanEnd);
        assert_eq!(events[0].span_id, events[1].span_id);
        assert_eq!(
            events[1].fields[0],
            ("duration_ns".to_string(), FieldValue::U64(5_000))
        );
        assert_eq!(
            events[1].fields[1],
            ("panicked".to_string(), FieldValue::Bool(false))
        );
    }

    #[test]
    fn panicking_span_is_marked() {
        let (tracer, _clock) = manual_tracer(16);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = tracer.span("doomed", &[]);
            panic!("injected");
        }));
        assert!(result.is_err());
        let (events, _) = tracer.events();
        let end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd)
            .expect("span_end recorded during unwind");
        assert!(end
            .fields
            .iter()
            .any(|(k, v)| k == "panicked" && *v == FieldValue::Bool(true)));
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let (tracer, _clock) = manual_tracer(4);
        for i in 0..10u64 {
            tracer.event("tick", &[("i", i.into())]);
        }
        let (events, dropped) = tracer.events();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        // The survivors are the newest four.
        assert_eq!(events[0].fields[0].1, FieldValue::U64(6));
        assert_eq!(events[3].fields[0].1, FieldValue::U64(9));
    }

    #[test]
    fn dump_is_valid_jsonl() {
        let (tracer, clock) = manual_tracer(16);
        tracer.event(
            "weird \"name\"\n",
            &[
                ("s", "tricky \"string\"\t".into()),
                ("f", 1.5f64.into()),
                ("neg", (-3i64).into()),
                ("ok", true.into()),
                ("inf", f64::INFINITY.into()),
            ],
        );
        {
            let _s = tracer.span("outer", &[]);
            clock.advance(std::time::Duration::from_nanos(42));
        }
        let dump = tracer.trigger_dump("test").expect("enabled");
        let mut lines = dump.lines();
        let header = lines.next().expect("header line");
        assert!(json_well_formed(header), "header parses: {header}");
        assert!(header.contains("\"reason\":\"test\""));
        for line in lines {
            assert!(json_well_formed(line), "every line parses: {line}");
            assert!(line.contains("\"ts_ns\":"));
            assert!(line.contains("\"type\":\""));
        }
        assert!(dump.contains("\"type\":\"span_begin\""));
        assert!(dump.contains("\"duration_ns\":42"));
        assert_eq!(tracer.dump_count(), 1);
        assert_eq!(tracer.last_dump(), Some(dump));
    }

    #[test]
    fn armed_dump_writes_file() {
        let (tracer, _clock) = manual_tracer(8);
        let path = std::env::temp_dir().join(format!(
            "obs-flight-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        tracer.arm(&path);
        tracer.event("incident", &[]);
        tracer.trigger_dump("unit test").expect("enabled");
        let text = std::fs::read_to_string(&path).expect("dump file");
        assert!(text.contains("\"incident\""));
        assert!(text.contains("flight_recorder_dump"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        tracer.event("x", &[]);
        {
            let _s = tracer.span("y", &[]);
        }
        let (events, dropped) = tracer.events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
        assert!(tracer.trigger_dump("r").is_none());
        assert!(tracer.last_dump().is_none());
    }
}
