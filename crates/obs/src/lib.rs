//! spoofwatch-obs: the observability layer for the spoofed-traffic
//! study pipeline.
//!
//! Three pieces, all std-only so every other crate in the workspace can
//! depend on this one:
//!
//! - [`metrics`]: a lock-cheap metrics registry — counters, gauges, and
//!   log-linear histograms — rendered in Prometheus text exposition
//!   format, snapshotted to a file or served from a tiny blocking
//!   `/metrics` endpoint ([`expo::serve`]). Handles from a *disabled*
//!   registry are inert `Option::None` wrappers: one branch on the hot
//!   path, no allocation, no locking.
//! - [`trace`]: span/event tracing into a bounded ring buffer that
//!   doubles as a flight recorder — when a worker panics or the
//!   watchdog flags a stall, the last N events dump as JSONL.
//! - [`sample`]: a seeded reservoir sampler for bounded exemplar
//!   collection (e.g. decision-provenance records attached to class
//!   counters) whose disabled form costs one branch per offer.
//! - [`clock`]: the [`Clock`] abstraction (real + manual test clock)
//!   that makes the runner's watchdog and backoff deterministic under
//!   test.
//!
//! # Global registry
//!
//! Deep decode paths (IPFIX/MRT/pcap fault taxonomies) cannot thread a
//! registry handle through every call site, so they report to a
//! process-global registry. It starts **disabled** — every handle it
//! hands out is a no-op — unless the `SPOOFWATCH_METRICS` environment
//! variable is set (to anything but `0`/`off`/`false`) or the host
//! installs a live registry with [`install_global`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod clock;
pub mod expo;
pub mod metrics;
pub mod sample;
pub mod trace;

pub use clock::{Clock, ManualClock, RealClock};
pub use expo::{
    fetch_metrics, parse_exposition, serve, serve_with, Exposition, MetricsServer, ServeOptions,
};
pub use sample::ReservoirSampler;
pub use metrics::{
    Counter, FamilySnapshot, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricsRegistry,
    SeriesSnapshot, SeriesValue, Snapshot,
};
pub use trace::{EventKind, FieldValue, Span, TraceEvent, Tracer};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

fn env_enabled() -> bool {
    match std::env::var("SPOOFWATCH_METRICS") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "off" || v == "false")
        }
        Err(_) => false,
    }
}

/// The process-global registry used by instrumentation that cannot be
/// handed a registry explicitly (decoder fault taxonomies, pipeline
/// counters). Disabled — all handles inert — unless `SPOOFWATCH_METRICS`
/// is set or [`install_global`] ran first.
pub fn global() -> &'static Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| {
        if env_enabled() {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        }
    })
}

/// Install `registry` as the process-global registry. Returns `false`
/// if the global was already initialized (first install — or first
/// [`global`] call — wins; the registry cannot be swapped mid-flight
/// because live handles point into it).
pub fn install_global(registry: Arc<MetricsRegistry>) -> bool {
    GLOBAL.set(registry).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_stable_across_calls() {
        let a = Arc::clone(global());
        let b = Arc::clone(global());
        assert!(Arc::ptr_eq(&a, &b));
        // Whatever state the global is in, a second install must fail.
        assert!(!install_global(MetricsRegistry::new()));
    }
}
