//! Prometheus text-exposition transport: a parser/validator for
//! scraped output, a tiny blocking `/metrics` HTTP endpoint, and the
//! matching one-shot client.
//!
//! The parser exists so CI can assert that what the registry *exports*
//! is well-formed — not merely that internal counters look right. The
//! server is deliberately minimal: one blocking [`TcpListener`], one
//! request per connection, `GET /metrics` only. It is an operational
//! peephole for a long-running study, not a web framework.

use crate::metrics::MetricsRegistry;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Why an exposition document was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpositionError {
    /// A line fit neither a comment nor a sample.
    BadLine(String),
    /// A sample's value did not parse as a float.
    BadValue(String),
    /// Label syntax error (unterminated quote, missing `=`, …).
    BadLabels(String),
    /// A `# TYPE` declared something other than counter/gauge/histogram
    /// /summary/untyped.
    BadType(String),
    /// A histogram family violated its structural invariants.
    BadHistogram(String),
}

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpositionError::BadLine(l) => write!(f, "unparseable line: {l:?}"),
            ExpositionError::BadValue(l) => write!(f, "bad sample value: {l:?}"),
            ExpositionError::BadLabels(l) => write!(f, "bad label syntax: {l:?}"),
            ExpositionError::BadType(t) => write!(f, "unknown metric type: {t:?}"),
            ExpositionError::BadHistogram(m) => write!(f, "histogram invariant violated: {m}"),
        }
    }
}

impl std::error::Error for ExpositionError {}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Full sample name as written (`family`, `family_bucket`, …).
    pub name: String,
    /// Label pairs in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations by family name.
    pub types: BTreeMap<String, String>,
    /// `# HELP` declarations by family name.
    pub helps: BTreeMap<String, String>,
    /// Every sample in document order.
    pub samples: Vec<ParsedSample>,
}

fn unescape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// A parsed label set: sorted `(key, value)` pairs.
pub type LabelSet = Vec<(String, String)>;

/// Parse `{k="v",…}`; returns the labels and the rest of the line.
fn parse_labels(s: &str) -> Result<(LabelSet, &str), ExpositionError> {
    let bad = || ExpositionError::BadLabels(s.to_string());
    let mut labels = Vec::new();
    let mut rest = s.strip_prefix('{').ok_or_else(bad)?;
    loop {
        rest = rest.trim_start_matches(',');
        if let Some(after) = rest.strip_prefix('}') {
            return Ok((labels, after));
        }
        let eq = rest.find('=').ok_or_else(bad)?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].strip_prefix('"').ok_or_else(bad)?;
        // Find the closing quote, honoring backslash escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(bad)?;
        labels.push((key, unescape_label_value(&rest[..end])));
        rest = &rest[end + 1..];
    }
}

/// Parse a Prometheus text-exposition document.
pub fn parse_exposition(text: &str) -> Result<Exposition, ExpositionError> {
    let mut out = Exposition::default();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("HELP ") {
                if let Some((name, help)) = rest.split_once(' ') {
                    out.helps.insert(name.to_string(), help.to_string());
                } else {
                    out.helps.insert(rest.to_string(), String::new());
                }
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                let (name, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| ExpositionError::BadLine(line.to_string()))?;
                match kind {
                    "counter" | "gauge" | "histogram" | "summary" | "untyped" => {}
                    other => return Err(ExpositionError::BadType(other.to_string())),
                }
                out.types.insert(name.to_string(), kind.to_string());
            }
            continue; // other comments are legal and ignored
        }
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| ExpositionError::BadLine(line.to_string()))?;
        let name = &line[..name_end];
        if name.is_empty() {
            return Err(ExpositionError::BadLine(line.to_string()));
        }
        let rest = &line[name_end..];
        let (labels, rest) = if rest.starts_with('{') {
            parse_labels(rest)?
        } else {
            (Vec::new(), rest)
        };
        let mut parts = rest.split_whitespace();
        let value_str = parts
            .next()
            .ok_or_else(|| ExpositionError::BadLine(line.to_string()))?;
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|_| ExpositionError::BadValue(line.to_string()))?,
        };
        out.samples.push(ParsedSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(out)
}

impl Exposition {
    /// The first sample matching `name` and containing every given
    /// label pair.
    pub fn sample(&self, name: &str, labels: &[(&str, &str)]) -> Option<&ParsedSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && labels.iter().all(|(k, v)| {
                    s.labels.iter().any(|(sk, sv)| sk == k && sv == v)
                })
        })
    }

    /// Sum of every sample named `name`.
    pub fn sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Structural validation:
    ///
    /// * every histogram family's `_bucket` series (per label set) has
    ///   strictly ascending `le` values, non-decreasing cumulative
    ///   counts, and ends in `+Inf`;
    /// * the `+Inf` bucket equals the family's `_count` for the same
    ///   label set;
    /// * every typed family actually has samples.
    pub fn validate(&self) -> Result<(), ExpositionError> {
        for (family, kind) in &self.types {
            if kind != "histogram" {
                let has = self.samples.iter().any(|s| &s.name == family);
                if !has {
                    return Err(ExpositionError::BadHistogram(format!(
                        "typed family {family} has no samples"
                    )));
                }
                continue;
            }
            let bucket_name = format!("{family}_bucket");
            let count_name = format!("{family}_count");
            // Group buckets by their non-`le` labels.
            let mut groups: BTreeMap<LabelSet, Vec<(f64, f64)>> = BTreeMap::new();
            for s in self.samples.iter().filter(|s| s.name == bucket_name) {
                let mut key: LabelSet = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                key.sort();
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| match v.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => v.parse().unwrap_or(f64::NAN),
                    })
                    .ok_or_else(|| {
                        ExpositionError::BadHistogram(format!("{bucket_name} without le"))
                    })?;
                groups.entry(key).or_default().push((le, s.value));
            }
            if groups.is_empty() {
                return Err(ExpositionError::BadHistogram(format!(
                    "histogram {family} has no buckets"
                )));
            }
            for (key, buckets) in groups {
                let mut prev_le = f64::NEG_INFINITY;
                let mut prev_cum = 0.0f64;
                for (le, cum) in &buckets {
                    if *le <= prev_le || le.is_nan() {
                        return Err(ExpositionError::BadHistogram(format!(
                            "{family}{key:?}: le not ascending at {le}"
                        )));
                    }
                    if *cum < prev_cum {
                        return Err(ExpositionError::BadHistogram(format!(
                            "{family}{key:?}: cumulative count decreased at le={le}"
                        )));
                    }
                    prev_le = *le;
                    prev_cum = *cum;
                }
                if prev_le.is_finite() {
                    return Err(ExpositionError::BadHistogram(format!(
                        "{family}{key:?}: missing +Inf bucket"
                    )));
                }
                let label_refs: Vec<(&str, &str)> =
                    key.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                let count = self
                    .sample(&count_name, &label_refs)
                    .map(|s| s.value)
                    .ok_or_else(|| {
                        ExpositionError::BadHistogram(format!("{family}{key:?}: missing _count"))
                    })?;
                if (count - prev_cum).abs() > 0.0 {
                    return Err(ExpositionError::BadHistogram(format!(
                        "{family}{key:?}: +Inf bucket {prev_cum} != count {count}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Socket and shutdown tuning for [`serve_with`].
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Read timeout on accepted sockets: a scraper that connects and
    /// then stalls is cut off after this long instead of wedging the
    /// single-threaded exporter.
    pub read_timeout: Duration,
    /// Write timeout on accepted sockets (a scraper that stops reading
    /// mid-response is likewise cut off).
    pub write_timeout: Duration,
    /// How often the accept loop re-checks the stop flag while idle.
    /// Bounds shutdown latency even if nothing ever connects again.
    pub poll_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            poll_interval: Duration::from_millis(25),
        }
    }
}

/// Handle to a running `/metrics` endpoint; dropping it (or calling
/// [`MetricsServer::stop`] / [`MetricsServer::shutdown`]) stops and
/// joins the serving thread — the listener never outlives the handle.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread. Idempotent; the
    /// consuming [`shutdown`](Self::shutdown) and `Drop` both route
    /// here.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Fast path: nudge a blocked accept awake. The accept loop
        // polls the stop flag on a nonblocking listener, so shutdown
        // completes within one poll interval even if this connect
        // fails (e.g. the interface went away).
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Consuming alias of [`stop`](Self::stop).
    pub fn shutdown(mut self) {
        self.stop();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop();
        }
    }
}

fn handle_request(registry: &MetricsRegistry, mut stream: TcpStream, opts: &ServeOptions) {
    // A socket accepted from a nonblocking listener may inherit the
    // flag on some platforms; force blocking so the timeouts below
    // govern.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(opts.read_timeout));
    let _ = stream.set_write_timeout(Some(opts.write_timeout));
    // Read enough of the request to see the request line; tolerate
    // clients that send the whole header in one segment (ours does).
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap_or(0);
    let request = String::from_utf8_lossy(&buf[..n]);
    let first = request.lines().next().unwrap_or("");
    let mut parts = first.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && (path == "/metrics" || path == "/") {
        let body = registry.render_prometheus();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "not found; try /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Serve `registry` over HTTP at `addr` (e.g. `"127.0.0.1:0"`) on a
/// background thread with default [`ServeOptions`]. One connection at
/// a time, `GET /metrics`.
pub fn serve(registry: Arc<MetricsRegistry>, addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
    serve_with(registry, addr, ServeOptions::default())
}

/// [`serve`] with explicit socket timeouts and shutdown poll interval.
///
/// The listener runs nonblocking and polls the stop flag between
/// accepts, so dropping (or stopping) the returned handle always joins
/// the thread within one poll interval — no leaked listener thread —
/// and the per-socket timeouts mean a scraper that connects and stalls
/// delays the next scrape by at most `read_timeout + write_timeout`.
pub fn serve_with(
    registry: Arc<MetricsRegistry>,
    addr: impl ToSocketAddrs,
    opts: ServeOptions,
) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("spoofwatch-metrics".to_string())
        .spawn(move || loop {
            if stop_flag.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => handle_request(&registry, stream, &opts),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(opts.poll_interval);
                }
                Err(_) => continue,
            }
        })?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// One-shot scrape of a `/metrics` endpoint — the curl equivalent used
/// by CI and tests. Returns the response body.
pub fn fetch_metrics(addr: impl ToSocketAddrs) -> io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(
        format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (header, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    let status = header.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::other(format!("non-200 response: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_the_registry_renders() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a", &[("k", "v with \"quotes\" and \\slashes\\")])
            .add(3);
        reg.gauge("depth", "d", &[]).set(-7);
        let h = reg.histogram("lat_ns", "l", &[("stage", "x")]);
        for v in [1u64, 2, 3, 100, 10_000] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        let parsed = parse_exposition(&text).expect("parse");
        parsed.validate().expect("validate");
        assert_eq!(parsed.types.get("a_total").map(String::as_str), Some("counter"));
        let s = parsed
            .sample("a_total", &[("k", "v with \"quotes\" and \\slashes\\")])
            .expect("escaped label value roundtrips");
        assert_eq!(s.value, 3.0);
        assert_eq!(
            parsed.sample("depth", &[]).map(|s| s.value),
            Some(-7.0)
        );
        assert_eq!(parsed.sum("lat_ns_count"), 5.0);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(matches!(
            parse_exposition("metric{unterminated 3"),
            Err(ExpositionError::BadLabels(_))
        ));
        assert!(matches!(
            parse_exposition("metric notanumber"),
            Err(ExpositionError::BadValue(_))
        ));
        assert!(matches!(
            parse_exposition("# TYPE m flarble"),
            Err(ExpositionError::BadType(_))
        ));
    }

    #[test]
    fn validate_catches_broken_histograms() {
        // Decreasing cumulative counts.
        let doc = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 5
";
        let parsed = parse_exposition(doc).expect("parse");
        assert!(matches!(
            parsed.validate(),
            Err(ExpositionError::BadHistogram(_))
        ));
        // Missing +Inf.
        let doc = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_sum 9
h_count 5
";
        assert!(parse_exposition(doc).expect("parse").validate().is_err());
        // +Inf disagrees with count.
        let doc = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 4
h_sum 9
h_count 5
";
        assert!(parse_exposition(doc).expect("parse").validate().is_err());
    }

    #[test]
    fn label_escaping_edge_cases_roundtrip() {
        let reg = MetricsRegistry::new();
        // Every character class the exposition format escapes: raw
        // backslash, double quote, and embedded newline — plus their
        // pathological combinations at string edges.
        let nasty = [
            "back\\slash",
            "quo\"te",
            "line\nbreak",
            "\\",
            "\"",
            "\n",
            "\\n literal then real\n",
            "trailing backslash\\",
        ];
        for (i, v) in nasty.iter().enumerate() {
            reg.counter("edge_total", "edges", &[("v", v)]).add(i as u64 + 1);
        }
        let text = reg.render_prometheus();
        let parsed = parse_exposition(&text).expect("parse");
        parsed.validate().expect("validate");
        // The document stays line-structured: a raw newline in a label
        // value would split its sample across two lines and change the
        // sample count.
        let lines = parsed.samples.iter().filter(|s| s.name == "edge_total").count();
        assert_eq!(lines, nasty.len(), "one sample line per label value");
        for (i, v) in nasty.iter().enumerate() {
            let s = parsed
                .sample("edge_total", &[("v", v)])
                .unwrap_or_else(|| panic!("label value {v:?} did not roundtrip"));
            assert_eq!(s.value, i as f64 + 1.0);
        }
    }

    #[test]
    fn empty_histogram_renders_and_validates() {
        let reg = MetricsRegistry::new();
        // Registered but never recorded: must still expose a +Inf
        // bucket, _sum, and _count (all zero) and pass validation.
        let _h = reg.histogram("idle_ns", "never recorded", &[("stage", "cold")]);
        let text = reg.render_prometheus();
        let parsed = parse_exposition(&text).expect("parse");
        parsed.validate().expect("validate");
        let inf = parsed
            .sample("idle_ns_bucket", &[("stage", "cold"), ("le", "+Inf")])
            .expect("+Inf bucket present for empty histogram");
        assert_eq!(inf.value, 0.0);
        assert_eq!(parsed.sample("idle_ns_count", &[("stage", "cold")]).map(|s| s.value), Some(0.0));
        assert_eq!(parsed.sample("idle_ns_sum", &[("stage", "cold")]).map(|s| s.value), Some(0.0));
    }

    #[test]
    fn disagreement_and_exemplar_families_roundtrip() {
        // The families the provenance layer exports: the pairwise
        // method-disagreement matrix and the exemplar-bearing per-class
        // counters. Render → parse → validate must hold over them.
        let reg = MetricsRegistry::new();
        for (a, b, from, to, n) in [
            ("naive", "full_cone_org", "valid", "invalid", 7u64),
            ("naive", "full_cone_org", "valid", "valid", 93),
            ("customer_cone", "customer_cone_org", "invalid", "valid", 2),
        ] {
            reg.counter(
                "spoofwatch_method_disagreement_total",
                "Pairwise class transitions between method variants",
                &[("a", a), ("b", b), ("from", from), ("to", to)],
            )
            .add(n);
        }
        reg.counter(
            "spoofwatch_classified_flows_total",
            "per-class flows (exemplars attach out of band)",
            &[("class", "invalid"), ("method", "full_cone")],
        )
        .add(9);
        let parsed = parse_exposition(&reg.render_prometheus()).expect("parse");
        parsed.validate().expect("validate");
        assert_eq!(parsed.sum("spoofwatch_method_disagreement_total"), 102.0);
        let s = parsed
            .sample(
                "spoofwatch_method_disagreement_total",
                &[("a", "naive"), ("b", "full_cone_org"), ("from", "valid"), ("to", "invalid")],
            )
            .expect("matrix cell");
        assert_eq!(s.value, 7.0);
    }

    #[test]
    fn explicit_stop_joins_and_is_idempotent() {
        let reg = MetricsRegistry::new();
        reg.counter("up_total", "u", &[]).inc();
        let mut server = serve(Arc::clone(&reg), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        assert!(fetch_metrics(addr).is_ok());
        server.stop();
        assert!(fetch_metrics(addr).is_err(), "listener gone after stop()");
        server.stop(); // second stop is a no-op, not a hang or panic
        drop(server); // and so is the drop afterwards
    }

    #[test]
    fn stalled_scraper_cannot_wedge_the_exporter() {
        let reg = MetricsRegistry::new();
        reg.counter("up_total", "u", &[]).inc();
        let opts = ServeOptions {
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_millis(50),
            poll_interval: Duration::from_millis(5),
        };
        let server = serve_with(Arc::clone(&reg), "127.0.0.1:0", opts).expect("bind");
        let addr = server.addr();
        // A scraper that connects and then goes silent. The serial
        // server is stuck in its read for at most read_timeout.
        let stalled = TcpStream::connect(addr).expect("connect");
        // A well-behaved scrape right behind it must still succeed.
        let body = fetch_metrics(addr).expect("fetch despite stalled peer");
        assert!(body.contains("up_total 1"));
        drop(stalled);
        // Shutdown still joins promptly with the tight poll interval.
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            t0.elapsed()
        );
        assert!(fetch_metrics(addr).is_err());
    }

    #[test]
    fn server_serves_and_client_fetches() {
        let reg = MetricsRegistry::new();
        reg.counter("up_total", "u", &[]).inc();
        let server = serve(Arc::clone(&reg), "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let body = fetch_metrics(addr).expect("fetch");
        assert!(body.contains("up_total 1"));
        let parsed = parse_exposition(&body).expect("parse");
        parsed.validate().expect("validate");
        // Counters keep moving between scrapes.
        reg.counter("up_total", "u", &[]).inc();
        let body = fetch_metrics(addr).expect("second fetch");
        assert!(body.contains("up_total 2"));
        server.shutdown();
        assert!(fetch_metrics(addr).is_err(), "server is down after shutdown");
    }
}
