//! Seeded reservoir sampling for bounded exemplar collection.
//!
//! Counters tell an operator *how many* flows landed in a class;
//! exemplars tell them *which ones and why*. [`ReservoirSampler`] keeps
//! a uniform, bounded sample of an unbounded stream (Vitter's
//! Algorithm R) with two properties the classify hot path depends on:
//!
//! * **Deterministic** — the kept set is a pure function of the seed
//!   and the offer sequence, so tests and replayed runs agree exactly.
//! * **Lazy** — [`offer_with`](ReservoirSampler::offer_with) takes a
//!   closure and only invokes it for offers that are actually admitted,
//!   so a *disabled* (zero-capacity) sampler costs one branch per offer
//!   and never allocates; an enabled one pays construction cost only
//!   for the `O(k · log(n/k))` admitted offers, not for all `n`.

/// xorshift64* — the same tiny deterministic generator style the shed
/// sampler uses; good enough for reservoir admission, dependency-free.
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A seeded, fixed-capacity uniform reservoir over a stream of `T`.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    items: Vec<T>,
    capacity: usize,
    seen: u64,
    rng: u64,
}

impl<T> ReservoirSampler<T> {
    /// A sampler keeping at most `capacity` items, admission decisions
    /// driven by `seed`. `capacity == 0` is the disabled sampler.
    pub fn new(seed: u64, capacity: usize) -> ReservoirSampler<T> {
        ReservoirSampler {
            items: Vec::new(), // allocates only on first admission
            capacity,
            // A zero xorshift state is a fixed point; premix the seed.
            rng: seed ^ 0x9E37_79B9_7F4A_7C15 | 1,
            seen: 0,
        }
    }

    /// The disabled sampler: every offer is one branch, nothing is
    /// constructed or stored.
    pub fn disabled() -> ReservoirSampler<T> {
        ReservoirSampler::new(0, 0)
    }

    /// Whether this sampler can ever admit an item.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Offer one stream element. `make` runs only if the element is
    /// admitted (reservoir not yet full, or it won the replacement
    /// draw) — the caller's expensive record construction is skipped
    /// for rejected offers and for a disabled sampler.
    pub fn offer_with(&mut self, make: impl FnOnce() -> T) {
        if self.capacity == 0 {
            return;
        }
        self.seen += 1;
        if self.items.len() < self.capacity {
            if self.items.capacity() == 0 {
                self.items.reserve_exact(self.capacity);
            }
            self.items.push(make());
            return;
        }
        // Algorithm R: replace a random slot with probability k/seen.
        let j = xorshift64(&mut self.rng) % self.seen;
        if (j as usize) < self.capacity {
            self.items[j as usize] = make();
        }
    }

    /// The current sample, in admission order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total elements offered (admitted or not) since construction.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Maximum items the reservoir retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop the sample and the offer count, keeping seed state — the
    /// next window starts fresh but stays deterministic.
    pub fn clear(&mut self) {
        self.items.clear();
        self.seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_stays_bounded() {
        let mut s = ReservoirSampler::new(7, 8);
        for i in 0..1000u64 {
            s.offer_with(|| i);
        }
        assert_eq!(s.items().len(), 8);
        assert_eq!(s.seen(), 1000);
        assert!(s.items().iter().all(|&v| v < 1000));
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut s = ReservoirSampler::new(seed, 5);
            for i in 0..500u64 {
                s.offer_with(|| i);
            }
            s.items().to_vec()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds sample differently");
    }

    #[test]
    fn disabled_never_constructs() {
        let mut s: ReservoirSampler<String> = ReservoirSampler::disabled();
        assert!(!s.is_enabled());
        for _ in 0..100 {
            s.offer_with(|| unreachable!("disabled sampler must not construct"));
        }
        assert!(s.items().is_empty());
        assert_eq!(s.seen(), 0);
    }

    #[test]
    fn rejected_offers_do_not_construct() {
        // Once the reservoir is full, most offers lose the draw; count
        // how many times `make` actually ran.
        let mut s = ReservoirSampler::new(3, 4);
        let mut built = 0u64;
        for i in 0..10_000u64 {
            s.offer_with(|| {
                built += 1;
                i
            });
        }
        assert_eq!(s.items().len(), 4);
        // E[built] = 4 + sum_{n=5..10000} 4/n ≈ 35; anything near 10000
        // means laziness is broken.
        assert!(built < 200, "built {built} of 10000 offers");
    }

    #[test]
    fn roughly_uniform() {
        // Each of 100 elements should land in a 10-slot reservoir with
        // p = 0.1; over 2000 seeds, per-element hit rates concentrate.
        let mut hits = [0u32; 100];
        for seed in 0..2000u64 {
            let mut s = ReservoirSampler::new(seed, 10);
            for i in 0..100usize {
                s.offer_with(|| i);
            }
            for &i in s.items() {
                hits[i] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                (100..300).contains(&h),
                "element {i} kept {h}/2000 times (expect ~200)"
            );
        }
    }

    #[test]
    fn clear_resets_sample_but_stays_deterministic() {
        let mut s = ReservoirSampler::new(9, 4);
        for i in 0..50u64 {
            s.offer_with(|| i);
        }
        s.clear();
        assert!(s.items().is_empty());
        assert_eq!(s.seen(), 0);
        for i in 0..4u64 {
            s.offer_with(|| i);
        }
        assert_eq!(s.items(), &[0, 1, 2, 3]);
    }
}
