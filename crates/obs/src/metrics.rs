//! A lock-cheap metrics registry with Prometheus text exposition.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path must be safe by default.** Handles returned by a
//!    disabled registry are no-ops (one branch on a `None`); handles
//!    from an enabled registry are a single relaxed atomic RMW. The
//!    registry mutex is taken only at registration and render time —
//!    never on `inc`/`set`/`record`.
//! 2. **Histograms are log-linear.** Each power-of-two octave is split
//!    into four linear sub-buckets, so any recorded value lands in a
//!    bucket whose width is at most a quarter of its magnitude — good
//!    enough for p50/p90/p99 latency estimation with a fixed, small
//!    memory footprint and no per-record allocation.
//! 3. **Exposition is the contract.** [`MetricsRegistry::render_prometheus`]
//!    emits the Prometheus text format (v0.0.4): `# HELP`/`# TYPE`
//!    headers, escaped label values, cumulative `_bucket{le=...}`
//!    series ending in `+Inf`, `_sum` and `_count`. The same registry
//!    state is available programmatically via [`MetricsRegistry::snapshot`]
//!    so accounting invariants can be asserted against the *exported*
//!    numbers, not a parallel bookkeeping path.

use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Largest power-of-two octave a histogram resolves before overflowing
/// into the `+Inf` bucket: 2^47 ≈ 1.6 days in nanoseconds, 128 TiB in
/// bytes.
const MAX_MSB: u32 = 47;
/// Finite buckets: 4 unit buckets for values 0–3, then 4 sub-buckets
/// per octave for octaves 2..=[`MAX_MSB`].
const BUCKETS: usize = 4 * MAX_MSB as usize;
/// Index of the overflow (`+Inf`) bucket.
const OVERFLOW: usize = BUCKETS;

/// Log-linear bucket index for `v` (see module docs).
fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let m = 63 - v.leading_zeros();
    if m > MAX_MSB {
        return OVERFLOW;
    }
    let sub = ((v >> (m - 2)) & 3) as usize;
    4 * (m as usize - 1) + sub
}

/// Inclusive upper bound of finite bucket `i` (the Prometheus `le`).
fn bucket_upper(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let m = (i / 4 + 1) as u32;
    let sub = (i % 4) as u64;
    (1u64 << m) + (sub + 1) * (1u64 << (m - 2)) - 1
}

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A log-linear distribution of recorded values.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Shared storage behind a histogram handle.
#[derive(Debug)]
pub struct HistogramCore {
    buckets: Vec<AtomicU64>, // BUCKETS + 1 slots; count derived from them
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: (0..=BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                let le = if i == OVERFLOW {
                    f64::INFINITY
                } else {
                    bucket_upper(i) as f64
                };
                buckets.push((le, cumulative));
            }
        }
        HistogramSnapshot {
            count: cumulative,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A monotonic counter handle. Cloning shares the underlying cell; a
/// handle from a disabled registry is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A counter that ignores everything (what disabled registries
    /// hand out).
    pub const fn noop() -> Counter {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge handle (set/add/sub). No-op when detached.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A gauge that ignores everything.
    pub const fn noop() -> Gauge {
        Gauge(None)
    }

    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A histogram handle. No-op when detached.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A histogram that ignores everything.
    pub const fn noop() -> Histogram {
        Histogram(None)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Current distribution (empty for a no-op handle).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.as_ref().map_or_else(
            || HistogramSnapshot {
                count: 0,
                sum: 0,
                buckets: Vec::new(),
            },
            |h| h.snapshot(),
        )
    }
}

#[derive(Debug)]
enum SeriesStorage {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    series: BTreeMap<Vec<(String, String)>, SeriesStorage>,
}

/// The registry: a named collection of metric families.
///
/// Construct with [`MetricsRegistry::new`] (live) or
/// [`MetricsRegistry::disabled`] (every handle is a no-op — the default
/// for library code so uninstrumented users pay one branch per event).
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    inner: Mutex<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit()))
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl MetricsRegistry {
    /// A live registry.
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry {
            enabled: true,
            inner: Mutex::new(BTreeMap::new()),
        })
    }

    /// A registry whose handles are all no-ops and whose exposition is
    /// empty. This is the hot-path-safe default.
    pub fn disabled() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry {
            enabled: false,
            inner: Mutex::new(BTreeMap::new()),
        })
    }

    /// Whether handles from this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn family<'a>(
        guard: &'a mut BTreeMap<String, Family>,
        name: &str,
        help: &str,
        kind: MetricKind,
    ) -> Option<&'a mut Family> {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let fam = guard.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        if fam.kind != kind {
            debug_assert!(false, "metric {name:?} re-registered as a different kind");
            return None;
        }
        Some(fam)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Family>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The counter `name{labels}`, registering it on first use. `help`
    /// from the first registration wins.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        let mut guard = self.lock();
        let Some(fam) = Self::family(&mut guard, name, help, MetricKind::Counter) else {
            return Counter::noop();
        };
        let cell = fam
            .series
            .entry(label_key(labels))
            .or_insert_with(|| SeriesStorage::Counter(Arc::new(AtomicU64::new(0))));
        match cell {
            SeriesStorage::Counter(c) => Counter(Some(Arc::clone(c))),
            _ => Counter::noop(),
        }
    }

    /// The gauge `name{labels}`, registering it on first use.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        if !self.enabled {
            return Gauge::noop();
        }
        let mut guard = self.lock();
        let Some(fam) = Self::family(&mut guard, name, help, MetricKind::Gauge) else {
            return Gauge::noop();
        };
        let cell = fam
            .series
            .entry(label_key(labels))
            .or_insert_with(|| SeriesStorage::Gauge(Arc::new(AtomicI64::new(0))));
        match cell {
            SeriesStorage::Gauge(g) => Gauge(Some(Arc::clone(g))),
            _ => Gauge::noop(),
        }
    }

    /// The histogram `name{labels}`, registering it on first use.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        let mut guard = self.lock();
        let Some(fam) = Self::family(&mut guard, name, help, MetricKind::Histogram) else {
            return Histogram::noop();
        };
        let cell = fam
            .series
            .entry(label_key(labels))
            .or_insert_with(|| SeriesStorage::Histogram(Arc::new(HistogramCore::new())));
        match cell {
            SeriesStorage::Histogram(h) => Histogram(Some(Arc::clone(h))),
            _ => Histogram::noop(),
        }
    }

    /// A point-in-time copy of every family for programmatic reads.
    pub fn snapshot(&self) -> Snapshot {
        let guard = self.lock();
        let families = guard
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                kind: fam.kind,
                help: fam.help.clone(),
                series: fam
                    .series
                    .iter()
                    .map(|(labels, storage)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match storage {
                            SeriesStorage::Counter(c) => {
                                SeriesValue::Counter(c.load(Ordering::Relaxed))
                            }
                            SeriesStorage::Gauge(g) => {
                                SeriesValue::Gauge(g.load(Ordering::Relaxed))
                            }
                            SeriesStorage::Histogram(h) => {
                                SeriesValue::Histogram(h.snapshot())
                            }
                        },
                    })
                    .collect(),
            })
            .collect();
        Snapshot { families }
    }

    /// Render the registry in the Prometheus text exposition format
    /// (v0.0.4).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Write the current exposition atomically-ish (tmp + rename) to
    /// `path`, so scrapers of the file never see a torn snapshot.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.render_prometheus().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// Escape a `# HELP` string: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double quote, newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
}

fn fmt_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else {
        // Bucket bounds are integral by construction.
        format!("{}", le as u64)
    }
}

/// A point-in-time copy of one registry, suitable both for rendering
/// and for asserting accounting invariants against the exported values.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Every family, sorted by name.
    pub families: Vec<FamilySnapshot>,
}

/// One metric family in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Family name (`spoofwatch_…`).
    pub name: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// The `# HELP` text.
    pub help: String,
    /// Every labelled series of the family, sorted by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// One labelled series in a [`FamilySnapshot`].
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The series' value at snapshot time.
    pub value: SeriesValue,
}

/// A snapshot value, by metric kind.
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

/// A histogram's state: non-empty buckets as `(le, cumulative_count)`,
/// plus total count and sum.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets in ascending `le` order with cumulative
    /// counts; the last entry's cumulative count equals `count`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile (0 < q ≤ 1): the upper bound of the
    /// bucket containing the target rank. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        self.buckets
            .iter()
            .find(|(_, cum)| *cum >= rank)
            .map(|(le, _)| *le)
    }

    /// Mean of observed values. `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

impl Snapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesValue> {
        let key = label_key(labels);
        self.families
            .iter()
            .find(|f| f.name == name)?
            .series
            .iter()
            .find(|s| s.labels == key)
            .map(|s| &s.value)
    }

    /// Value of the counter `name{labels}`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)? {
            SeriesValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Sum of every series of the counter family `name`.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.families
            .iter()
            .filter(|f| f.name == name)
            .flat_map(|f| &f.series)
            .map(|s| match &s.value {
                SeriesValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Value of the gauge `name{labels}`, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.find(name, labels)? {
            SeriesValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Distribution of the histogram `name{labels}`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.find(name, labels)? {
            SeriesValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Render as the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str("# HELP ");
            out.push_str(&fam.name);
            out.push(' ');
            out.push_str(&escape_help(&fam.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&fam.name);
            out.push(' ');
            out.push_str(fam.kind.as_str());
            out.push('\n');
            for series in &fam.series {
                match &series.value {
                    SeriesValue::Counter(v) => {
                        out.push_str(&fam.name);
                        render_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SeriesValue::Gauge(v) => {
                        out.push_str(&fam.name);
                        render_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    SeriesValue::Histogram(h) => {
                        for (le, cum) in &h.buckets {
                            out.push_str(&fam.name);
                            out.push_str("_bucket");
                            render_labels(
                                &mut out,
                                &series.labels,
                                Some(("le", &fmt_le(*le))),
                            );
                            out.push(' ');
                            out.push_str(&cum.to_string());
                            out.push('\n');
                        }
                        // The spec requires a +Inf bucket equal to count.
                        if h.buckets.last().is_none_or(|(le, _)| le.is_finite()) {
                            out.push_str(&fam.name);
                            out.push_str("_bucket");
                            render_labels(&mut out, &series.labels, Some(("le", "+Inf")));
                            out.push(' ');
                            out.push_str(&h.count.to_string());
                            out.push('\n');
                        }
                        out.push_str(&fam.name);
                        out.push_str("_sum");
                        render_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&h.sum.to_string());
                        out.push('\n');
                        out.push_str(&fam.name);
                        out.push_str("_count");
                        render_labels(&mut out, &series.labels, None);
                        out.push(' ');
                        out.push_str(&h.count.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_tile_the_line() {
        // Every finite bucket's range is [prev_upper+1, upper], and the
        // index function maps both endpoints back to the bucket.
        let mut prev_upper: Option<u64> = None;
        for i in 0..BUCKETS {
            let upper = bucket_upper(i);
            let lower = prev_upper.map_or(0, |p| p + 1);
            assert!(lower <= upper, "bucket {i}: {lower} > {upper}");
            assert_eq!(bucket_index(lower), i, "lower endpoint of bucket {i}");
            assert_eq!(bucket_index(upper), i, "upper endpoint of bucket {i}");
            prev_upper = Some(upper);
        }
        // Past the last finite bucket lies overflow.
        let last = bucket_upper(BUCKETS - 1);
        assert_eq!(bucket_index(last + 1), OVERFLOW);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Log-linear with 4 sub-buckets: bucket width ≤ value/4, so the
        // upper bound overestimates by at most ~25%.
        for v in [5u64, 100, 1_000, 123_456, 1 << 30, (1 << 40) + 12345] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            assert!(
                (upper - v) as f64 <= v as f64 * 0.25 + 1.0,
                "v={v} upper={upper}"
            );
        }
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("x_total", "x", &[]);
        let g = reg.gauge("g", "g", &[]);
        let h = reg.histogram("h", "h", &[]);
        c.inc();
        c.add(10);
        g.set(5);
        h.record(123);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        assert!(reg.render_prometheus().is_empty());
        assert!(!reg.is_enabled());
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("req_total", "requests", &[("code", "200")]);
        c.inc();
        c.add(4);
        // A second handle to the same series shares storage.
        reg.counter("req_total", "requests", &[("code", "200")]).inc();
        let other = reg.counter("req_total", "requests", &[("code", "500")]);
        other.inc();
        let g = reg.gauge("depth", "queue depth", &[]);
        g.set(3);
        g.add(2);
        g.sub(1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("req_total", &[("code", "200")]), Some(6));
        assert_eq!(snap.counter("req_total", &[("code", "500")]), Some(1));
        assert_eq!(snap.counter_sum("req_total"), 7);
        assert_eq!(snap.gauge("depth", &[]), Some(4));
        assert_eq!(snap.counter("req_total", &[("code", "404")]), None);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        reg.counter("m_total", "m", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("m_total", "m", &[("b", "2"), ("a", "1")]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("m_total", &[("b", "2"), ("a", "1")]), Some(2));
    }

    #[test]
    fn histogram_quantiles_estimate_within_bucket_error() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", "latency", &[]);
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500500);
        let p50 = snap.quantile(0.5).expect("non-empty");
        let p99 = snap.quantile(0.99).expect("non-empty");
        assert!((500.0..=640.0).contains(&p50), "p50={p50}");
        assert!((990.0..=1280.0).contains(&p99), "p99={p99}");
        assert!(snap.quantile(1.0).expect("max") >= 1000.0);
        assert!((snap.mean().expect("mean") - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_monotone() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", "latency", &[("stage", "classify")]);
        for v in [0u64, 1, 3, 17, 17, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0;
        for (le, cum) in &snap.buckets {
            assert!(*le > prev_le, "le not ascending");
            assert!(*cum >= prev_cum, "cumulative decreased");
            prev_le = *le;
            prev_cum = *cum;
        }
        assert_eq!(prev_cum, 7, "last bucket holds the total");
        assert!(prev_le.is_infinite(), "u64::MAX lands in +Inf");
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{stage=\"classify\",le=\"+Inf\"} 7"));
        assert!(text.contains("lat_ns_count{stage=\"classify\"} 7"));
    }

    #[test]
    fn exposition_escapes_label_values_and_help() {
        let reg = MetricsRegistry::new();
        reg.counter(
            "weird_total",
            "line one\nwith \\backslash",
            &[("path", "a\"b\\c\nd")],
        )
        .inc();
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP weird_total line one\\nwith \\\\backslash"));
        assert!(text.contains("weird_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
        // No raw newline may survive inside a sample line.
        for line in text.lines() {
            assert!(!line.contains('\r'));
        }
    }

    #[test]
    fn kind_conflict_yields_noop_not_corruption() {
        let reg = MetricsRegistry::new();
        reg.counter("m", "m", &[]).inc();
        // Same name as a different kind: in release builds this hands
        // back a no-op rather than corrupting the family.
        #[cfg(not(debug_assertions))]
        {
            let g = reg.gauge("m", "m", &[]);
            g.set(9);
            assert_eq!(reg.snapshot().counter("m", &[]), Some(1));
        }
    }

    #[test]
    fn write_snapshot_creates_parseable_file() {
        let reg = MetricsRegistry::new();
        reg.counter("file_total", "f", &[]).add(5);
        let path = std::env::temp_dir().join(format!(
            "obs-snap-{}-{:?}.prom",
            std::process::id(),
            std::thread::current().id()
        ));
        reg.write_snapshot(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("file_total 5"));
        let _ = std::fs::remove_file(&path);
    }
}
