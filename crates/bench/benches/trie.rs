//! Performance of the prefix trie — the per-packet hot path of the
//! classifier (two LPM lookups per flow).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_net::Ipv4Prefix;
use spoofwatch_trie::{PrefixSet, PrefixTrie};
use std::hint::black_box;

/// A realistic routed table: every announced prefix of the default
/// synthetic Internet (~12K prefixes, /8../24 mix).
fn routed_prefixes() -> Vec<Ipv4Prefix> {
    let net = Internet::generate(InternetConfig {
        seed: 3,
        ..InternetConfig::default()
    });
    net.topology
        .ases()
        .flat_map(|a| a.prefixes.iter().copied())
        .collect()
}

fn bench_trie(c: &mut Criterion) {
    let prefixes = routed_prefixes();
    let trie: PrefixTrie<u32> = prefixes
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, i as u32))
        .collect();
    let mut rng = StdRng::seed_from_u64(1);
    let probes: Vec<u32> = (0..10_000).map(|_| rng.random()).collect();

    let mut group = c.benchmark_group("trie");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("lpm_lookup_10k_random", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &addr in &probes {
                if trie.lookup(black_box(addr)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    group.throughput(Throughput::Elements(prefixes.len() as u64));
    group.bench_function("insert_routed_table", |b| {
        b.iter_batched(
            PrefixTrie::<u32>::new,
            |mut t| {
                for (i, p) in prefixes.iter().enumerate() {
                    t.insert(*p, i as u32);
                }
                black_box(t.len())
            },
            BatchSize::LargeInput,
        )
    });

    // Ablation: the trie against a linear scan over the prefix list —
    // the design-choice justification for building a Patricia trie at
    // all (DESIGN.md §4).
    let few: Vec<Ipv4Prefix> = prefixes.iter().take(64).copied().collect();
    let small_trie: PrefixTrie<()> = few.iter().map(|p| (*p, ())).collect();
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("ablation_trie_64_prefixes", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &addr in &probes {
                if small_trie.lookup(black_box(addr)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("ablation_linear_scan_64_prefixes", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &addr in &probes {
                // Longest match by linear scan.
                let best = few
                    .iter()
                    .filter(|p| p.contains(black_box(addr)))
                    .max_by_key(|p| p.len());
                if best.is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    group.bench_function("covered_units_and_aggregate", |b| {
        let set: PrefixSet = prefixes.iter().collect();
        b.iter(|| {
            let agg = set.aggregate();
            black_box((set.covered_units(), agg.len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trie);
criterion_main!(benches);
