//! End-to-end classification performance: cone construction and per-flow
//! classification throughput, serial vs. parallel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spoofwatch_core::Classifier;
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_ixp::{Trace, TrafficConfig};
use spoofwatch_net::{InferenceMethod, OrgMode};
use std::hint::black_box;

fn bench_classify(c: &mut Criterion) {
    // A mid-size world keeps bench times sane while staying far from
    // toy-sized (700 ASes, ~200 members).
    let net = Internet::generate(InternetConfig {
        seed: 5,
        num_ases: 700,
        num_ixp_members: 200,
        ..InternetConfig::default()
    });
    let trace = Trace::generate(
        &net,
        &TrafficConfig {
            seed: 5,
            regular_flows: 100_000,
            ..TrafficConfig::default()
        },
    );
    let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);

    let mut group = c.benchmark_group("classify");
    group.sample_size(10);

    group.bench_function("build_classifier_all_cones", |b| {
        b.iter(|| {
            black_box(Classifier::build(
                black_box(&net.announcements),
                &net.orgs_dataset,
            ))
        })
    });

    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("classify_serial_full_cone", |b| {
        b.iter(|| {
            let mut counts = [0usize; 4];
            for f in &trace.flows {
                let class =
                    classifier.classify_with(f, InferenceMethod::FullCone, OrgMode::OrgAdjusted);
                counts[class.index()] += 1;
            }
            black_box(counts)
        })
    });

    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("classify_parallel_full_cone", |b| {
        b.iter(|| {
            black_box(classifier.classify_trace(
                &trace.flows,
                InferenceMethod::FullCone,
                OrgMode::OrgAdjusted,
            ))
        })
    });

    // Method ablation: the naive per-prefix set test vs the cone bitmap.
    for (name, method) in [
        ("classify_serial_naive", InferenceMethod::Naive),
        ("classify_serial_customer_cone", InferenceMethod::CustomerCone),
    ] {
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut invalid = 0usize;
                for f in &trace.flows {
                    if classifier.classify_with(f, method, OrgMode::OrgAdjusted)
                        == spoofwatch_net::TrafficClass::Invalid
                    {
                        invalid += 1;
                    }
                }
                black_box(invalid)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
