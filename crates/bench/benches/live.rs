//! Live ingest overhead: end-to-end throughput of a line-rate live
//! session over the in-process transport versus plain file replay on
//! the same trace, plus the ladder-evaluation microbench that gates the
//! consumer's admission path.
//!
//! Two contracts are *asserted*: a clean line-rate session must be
//! bit-identical to file replay with zero shedding and exact
//! reconciliation, and the live-layer tax — the full cost of the wire
//! codec, frame CRCs, credit grants, and the admission buffer — must
//! stay within 4x of the plain in-process `StudyRunner`. (The tax is
//! per-chunk wire work — frame encode, CRC, reassembly, decode — plus
//! poll-paced credit grants; it reads near 3x on a small synthetic
//! trace where chunks are cheap, and shrinks as per-chunk classify
//! work grows.)
//!
//! An overloaded session (tight window, slow consumer) is also run and
//! recorded, not asserted beyond its invariants: shedding is booked
//! exactly (`offered == processed + shed + quarantined`) and the
//! buffer high-water mark never exceeds the window.
//!
//! The measured numbers are written to `BENCH_live.json` at the repo
//! root as the tracked baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spoofwatch_core::{
    CheckpointStore, Classifier, LiveLadder, LiveServerConfig, LiveStudy, OverloadState,
    RunnerConfig, LIVE_WIRE_MAGIC,
};
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_ixp::{ipfix, LiveProducerConfig, LiveScenario, Trace, TrafficConfig};
use spoofwatch_net::wire::ShardTransport;
use spoofwatch_net::{InferenceMethod, OrgMode};
use std::hint::black_box;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

const CHUNK_RECORDS: usize = 100;

fn runner_config() -> RunnerConfig {
    RunnerConfig {
        workers: 2,
        checkpoint_every: 8,
        track_disagreement: true,
        ..RunnerConfig::default()
    }
}

/// One timed live session over an in-process pair. `slow_ms` injects a
/// per-chunk classify delay to force the ladder under a tight window.
fn live_run(
    bytes: &Arc<Vec<u8>>,
    classifier: &Classifier,
    scratch: &Path,
    tag: &str,
    window: usize,
    ladder: LiveLadder,
    slow_ms: Option<u64>,
) -> (LiveStudy, f64) {
    let (consumer, producer) = ShardTransport::channel_pair(LIVE_WIRE_MAGIC, 64);
    let scenario = LiveScenario::from_ipfix(bytes.to_vec(), CHUNK_RECORDS);
    let producer_thread = std::thread::spawn(move || {
        let mut transport = producer;
        spoofwatch_ixp::run_live_producer(&mut transport, &scenario, &LiveProducerConfig::default())
    });

    let store = CheckpointStore::open(scratch.join(format!("{tag}-ckpt"))).expect("open store");
    let mut cfg = LiveServerConfig::new(runner_config());
    cfg.window = window;
    cfg.ladder = Some(ladder);

    let t0 = Instant::now();
    let study = match slow_ms {
        None => spoofwatch_core::serve_live(classifier, &cfg, &store, consumer),
        Some(ms) => {
            spoofwatch_core::serve_live_with(classifier, &cfg, &store, consumer, |flows| {
                std::thread::sleep(Duration::from_millis(ms));
                classifier.classify_trace(flows, InferenceMethod::FullCone, OrgMode::OrgAdjusted)
            })
        }
    }
    .expect("live session");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    producer_thread
        .join()
        .expect("producer thread")
        .expect("producer result");
    (study, wall_ms)
}

#[derive(serde::Serialize)]
struct LiveBaseline {
    bench: &'static str,
    records: u64,
    chunk_records: usize,
    /// Cores available to this run; on a 1-core host the producer and
    /// consumer serialize, so the tax reads higher there.
    cores: usize,
    ladder_eval_ns: f64,
    /// Plain in-process `StudyRunner`, no live layer: the floor the
    /// live tax is measured against.
    file_replay_wall_ms: f64,
    /// Clean line-rate session wall over file-replay wall — the full
    /// cost of the wire codec, CRC framing, credit-based admission,
    /// and the buffer hand-off.
    live_layer_tax: f64,
    live_wall_ms: f64,
    live_records_per_sec: f64,
    /// The overloaded session: shed fraction and ladder churn under a
    /// tight window with a deliberately slow consumer.
    overload_shed_fraction: f64,
    overload_transitions: u64,
    overload_max_buffered: usize,
}

/// Mean ns per ladder evaluation across the occupancy sweep, best of
/// three — the cost paid at every chunk admission.
fn ladder_ns(ladder: &LiveLadder, window: usize) -> f64 {
    let occupancies: Vec<usize> = (0..=window).collect();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut state = OverloadState::Normal;
        let mut rounds = 0u64;
        for _ in 0..10_000 {
            for &occ in &occupancies {
                state = ladder.evaluate(black_box(state), black_box(occ));
                rounds += 1;
            }
        }
        black_box(state);
        best = best.min(t0.elapsed().as_nanos() as f64 / rounds as f64);
    }
    best
}

fn bench_live(c: &mut Criterion) {
    let net = Internet::generate(InternetConfig::tiny(81));
    let mut tc = TrafficConfig::tiny(82);
    tc.regular_flows = 6_000;
    let trace = Trace::generate(&net, &tc);
    let bytes = Arc::new(ipfix::encode(&trace.flows));
    let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
    let ladder = LiveLadder::for_window(8);

    let mut group = c.benchmark_group("live");
    group.throughput(Throughput::Elements(1));
    group.bench_function("ladder_eval", |b| {
        let mut state = OverloadState::Normal;
        let mut occ = 0usize;
        b.iter(|| {
            occ = (occ + 1) % 9;
            state = ladder.evaluate(black_box(state), black_box(occ));
            black_box(state)
        })
    });
    group.finish();
    let ladder_eval_ns = ladder_ns(&ladder, 8);
    println!("ladder evaluation: {ladder_eval_ns:.1} ns");

    let scratch =
        std::env::temp_dir().join(format!("spoofwatch-bench-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch");

    // The floor: the plain runner reading the file directly.
    let (file_report, file_replay_wall_ms) = {
        use spoofwatch_ixp::chunked::ChunkedIpfixReader;
        let store = CheckpointStore::open(scratch.join("file-ckpt")).expect("open file store");
        let mut source = ChunkedIpfixReader::new(&bytes, CHUNK_RECORDS);
        let t0 = Instant::now();
        let report = spoofwatch_core::StudyRunner::new(&classifier, runner_config())
            .run(&mut source, &store)
            .expect("file replay");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        assert!(report.health.records.offered > 0);
        (report, wall)
    };
    println!("file-replay floor: {file_replay_wall_ms:.0} ms");

    // The clean line-rate session: must be bit-identical and cheap.
    // The clean run parks the ladder's thresholds above any real
    // occupancy: the tax measurement must never shed on a scheduling
    // hiccup (the credit window still bounds the buffer).
    let (clean, live_wall_ms) = live_run(
        &bytes,
        &classifier,
        &scratch,
        "clean",
        16,
        LiveLadder::for_window(1 << 20),
        None,
    );
    assert_eq!(
        clean.report.breakdown, file_report.breakdown,
        "live session must be bit-identical to file replay"
    );
    assert!(
        clean.session.reconciles() && clean.session.live_shed_records == 0,
        "clean session must reconcile with zero shedding"
    );
    let live_layer_tax = live_wall_ms / file_replay_wall_ms;
    let live_records_per_sec = clean.session.records.offered as f64 / (live_wall_ms / 1e3);
    println!(
        "live line-rate: {live_wall_ms:.0} ms, {live_records_per_sec:.0} records/s, \
         {live_layer_tax:.2}x vs file replay"
    );
    assert!(
        live_layer_tax < 4.0,
        "the live layer must cost under 4x file replay (got {live_layer_tax:.2}x)"
    );

    // The overloaded session: invariants hold, numbers are recorded.
    let (loaded, _) = live_run(
        &bytes,
        &classifier,
        &scratch,
        "overload",
        4,
        LiveLadder::for_window(4),
        Some(10),
    );
    assert!(
        loaded.session.reconciles(),
        "overloaded session must still reconcile exactly"
    );
    assert!(
        loaded.session.max_buffered_chunks <= 4,
        "the buffer must never exceed the window"
    );
    let overload_shed_fraction =
        loaded.session.live_shed_records as f64 / loaded.session.records.offered as f64;
    println!(
        "overload (window 4, slow consumer): {:.0}% shed, {} transitions, peak buffer {}",
        overload_shed_fraction * 100.0,
        loaded.session.transitions,
        loaded.session.max_buffered_chunks,
    );
    let _ = std::fs::remove_dir_all(&scratch);

    write_baseline(LiveBaseline {
        bench: "live",
        records: trace.flows.len() as u64,
        chunk_records: CHUNK_RECORDS,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ladder_eval_ns,
        file_replay_wall_ms,
        live_layer_tax,
        live_wall_ms,
        live_records_per_sec,
        overload_shed_fraction,
        overload_transitions: loaded.session.transitions,
        overload_max_buffered: loaded.session.max_buffered_chunks,
    });
}

fn write_baseline(baseline: LiveBaseline) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_live.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(path, json + "\n").expect("write BENCH_live.json");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_live);
criterion_main!(benches);
