//! The batch-vectorized classify path versus the scalar one, and the
//! zero-copy columnar decode versus the record-at-a-time decoder.
//!
//! Four contracts are *asserted* (not just reported), so a regression
//! that makes the batch path pointless fails CI:
//!
//! * `classify_batch_into` beats per-flow `classify_with` by **≥3×**
//!   on the full trace (the ISSUE's floor; `BENCH_batch.json` records
//!   the measured ratio);
//! * steady-state batch classification performs **zero heap
//!   allocations** (counted by this binary's global allocator);
//! * the batch results are byte-identical to the scalar ones on the
//!   bench fixture itself;
//! * a 64-flow batch still plans exactly one worker under the
//!   re-derived [`spoofwatch_core::PARALLEL_CUTOFF`].
//!
//! The prefetch on/off delta of the columnar LPM probe is measured on
//! a uniform-random corpus (worst case for the 64 MiB level-1 array)
//! and recorded; it is machine-dependent, so it is reported rather
//! than asserted.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spoofwatch_core::{planned_classify_workers, BatchScratch, Classifier, PARALLEL_CUTOFF};
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_ixp::{ipfix, Trace, TrafficConfig};
use spoofwatch_net::{FlowBatch, InferenceMethod, OrgMode, TrafficClass};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Heap operations since process start — the probe behind the
/// zero-allocation assertion. Counts allocs and grows (frees are
/// irrelevant: a path that never allocates never frees).
static HEAP_OPS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter
// update has no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_OPS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[derive(serde::Serialize)]
struct SizeResult {
    batch_records: usize,
    batch_ns: f64,
}

#[derive(serde::Serialize)]
struct BatchBaseline {
    bench: &'static str,
    classify_flows: usize,
    classify_scalar_ns: f64,
    classify_batch_ns: f64,
    classify_speedup: f64,
    sizes: Vec<SizeResult>,
    prefetch_on_ns: f64,
    prefetch_off_ns: f64,
    prefetch_speedup: f64,
    decode_records: usize,
    decode_resilient_ns: f64,
    decode_columnar_ns: f64,
    decode_speedup: f64,
    steady_state_heap_ops: u64,
    parallel_cutoff: usize,
    compiled_infos: usize,
    compiled_entries: usize,
}

/// Mean ns per record: one warm-up pass, then best of seven timed
/// passes of `run` over `n` records (best-of absorbs scheduler noise
/// on shared cores far better than a mean does).
fn per_record_ns(n: usize, mut run: impl FnMut() -> usize) -> f64 {
    black_box(run());
    let mut best = f64::INFINITY;
    for _ in 0..7 {
        let t0 = Instant::now();
        black_box(run());
        best = best.min(t0.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

fn bench_batch(c: &mut Criterion) {
    // The same world as `benches/lpm.rs`, so classify_scalar_ns here is
    // directly comparable with BENCH_lpm.json's classify_compiled_ns.
    let net = Internet::generate(InternetConfig::tiny(5));
    let mut tc = TrafficConfig::tiny(6);
    tc.regular_flows = 20_000;
    let trace = Trace::generate(&net, &tc);
    let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
    let flows = trace.flows;
    let method = InferenceMethod::FullCone;
    let org = OrgMode::OrgAdjusted;

    // ---- decode: record-at-a-time vs columnar into a reused arena ----
    let bytes = ipfix::encode(&flows);
    let mut arena = FlowBatch::new();
    let decode_resilient_ns = per_record_ns(flows.len(), || {
        let (records, health) = ipfix::decode_resilient(black_box(&bytes));
        black_box(health.ok_records as usize + records.len())
    });
    let decode_columnar_ns = per_record_ns(flows.len(), || {
        let health = ipfix::decode_columnar(black_box(&bytes), &mut arena);
        black_box(health.ok_records as usize + arena.len())
    });
    // Resilience accounting must be preserved: every input record is
    // credited, and the decoders agree with each other.
    assert_eq!(arena.len(), flows.len());
    assert_eq!(arena.to_records(), flows);
    println!(
        "decode: resilient {decode_resilient_ns:.1} ns/rec, columnar {decode_columnar_ns:.1} ns/rec, {:.2}x",
        decode_resilient_ns / decode_columnar_ns
    );

    // ---- classify: scalar vs batch, with criterion-visible groups ----
    let batch = FlowBatch::from_records(&flows);
    let mut scratch = BatchScratch::new();
    let mut classes: Vec<TrafficClass> = Vec::with_capacity(flows.len());

    let mut group = c.benchmark_group("batch_classify");
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("scalar_classify_with", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for f in &flows {
                acc += classifier.classify_with(black_box(f), method, org).index();
            }
            black_box(acc)
        })
    });
    group.bench_function("classify_batch_into", |b| {
        b.iter(|| {
            classifier.classify_batch_into(black_box(&batch), method, org, &mut scratch, &mut classes);
            black_box(classes.len())
        })
    });
    group.finish();

    // Byte-identity on the bench fixture itself, for every variant.
    for v in spoofwatch_core::METHOD_VARIANTS {
        classifier.classify_batch_into(&batch, v.method, v.org, &mut scratch, &mut classes);
        for (f, &got) in flows.iter().zip(&classes) {
            assert_eq!(
                got,
                classifier.classify_with(f, v.method, v.org),
                "batch diverges from scalar at src {:#010x} under {v}",
                f.src
            );
        }
    }

    let scalar_ns = per_record_ns(flows.len(), || {
        let mut acc = 0usize;
        for f in &flows {
            acc += classifier.classify_with(black_box(f), method, org).index();
        }
        acc
    });
    let batch_ns = per_record_ns(flows.len(), || {
        classifier.classify_batch_into(black_box(&batch), method, org, &mut scratch, &mut classes);
        classes.len()
    });
    let speedup = scalar_ns / batch_ns;
    println!("classify: scalar {scalar_ns:.1} ns/rec, batch {batch_ns:.1} ns/rec, {speedup:.2}x");
    assert!(
        speedup >= 3.0,
        "the batch path must be at least 3x the scalar one (got {speedup:.2}x)"
    );

    // ---- batch-size sweep: 64 / 1k / 64k records ----
    let mut sizes = Vec::new();
    for target in [64usize, 1024, 65_536] {
        let mut tile = FlowBatch::with_capacity(target);
        while tile.len() < target {
            let take = (target - tile.len()).min(flows.len());
            tile.extend_from_records(&flows[..take]);
        }
        // Warm the scratch for this tile, then measure.
        classifier.classify_batch_into(&tile, method, org, &mut scratch, &mut classes);
        let ns = per_record_ns(tile.len(), || {
            classifier.classify_batch_into(black_box(&tile), method, org, &mut scratch, &mut classes);
            classes.len()
        });
        println!("batch[{target}]: {ns:.1} ns/rec");
        sizes.push(SizeResult {
            batch_records: target,
            batch_ns: ns,
        });
    }

    // ---- zero allocations in steady state ----
    // Scratch and output are warm from the runs above; from here on the
    // classify path must not touch the heap at all.
    classifier.classify_batch_into(&batch, method, org, &mut scratch, &mut classes);
    let before = HEAP_OPS.load(Ordering::Relaxed);
    for _ in 0..5 {
        classifier.classify_batch_into(black_box(&batch), method, org, &mut scratch, &mut classes);
        black_box(classes.len());
    }
    let steady_state_heap_ops = HEAP_OPS.load(Ordering::Relaxed) - before;
    assert_eq!(
        steady_state_heap_ops, 0,
        "steady-state batch classification must perform zero heap allocations"
    );
    println!("steady-state heap ops across 5 batches: {steady_state_heap_ops}");

    // ---- prefetch on/off on a uniform-random corpus ----
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let probes: Vec<u32> = (0..1_000_000).map(|_| rng.random()).collect();
    let mut codes = Vec::with_capacity(probes.len());
    let prefetch_on_ns = per_record_ns(probes.len(), || {
        classifier
            .compiled()
            .classify_codes_into(black_box(&probes), &mut codes, true);
        codes.len()
    });
    let prefetch_off_ns = per_record_ns(probes.len(), || {
        classifier
            .compiled()
            .classify_codes_into(black_box(&probes), &mut codes, false);
        codes.len()
    });
    println!(
        "prefetch: on {prefetch_on_ns:.1} ns/probe, off {prefetch_off_ns:.1} ns/probe, {:.2}x",
        prefetch_off_ns / prefetch_on_ns
    );

    // ---- the re-derived inline cutoff contract ----
    for threads in [1, 2, 8, 64] {
        assert_eq!(
            planned_classify_workers(64, threads),
            1,
            "a 64-flow batch must classify inline with zero spawns"
        );
    }
    assert_eq!(planned_classify_workers(PARALLEL_CUTOFF - 1, 8), 1);
    assert!(planned_classify_workers(PARALLEL_CUTOFF, 8) > 1);

    write_baseline(BatchBaseline {
        bench: "batch",
        classify_flows: flows.len(),
        classify_scalar_ns: scalar_ns,
        classify_batch_ns: batch_ns,
        classify_speedup: speedup,
        sizes,
        prefetch_on_ns,
        prefetch_off_ns,
        prefetch_speedup: prefetch_off_ns / prefetch_on_ns,
        decode_records: flows.len(),
        decode_resilient_ns,
        decode_columnar_ns,
        decode_speedup: decode_resilient_ns / decode_columnar_ns,
        steady_state_heap_ops,
        parallel_cutoff: PARALLEL_CUTOFF,
        compiled_infos: classifier.compiled().num_infos(),
        compiled_entries: classifier.compiled().len(),
    });
}

fn write_baseline(baseline: BatchBaseline) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(path, json + "\n").expect("write BENCH_batch.json");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
