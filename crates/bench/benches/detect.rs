//! Online-detection overhead: the per-record cost of accumulating the
//! detect payload (including the streaming entropy sketches), the
//! per-window cost of the detector bank, and — the contract the rollup
//! hot path relies on — a bounded whole-run tax when detection rides an
//! otherwise identical rollup study.
//!
//! Beyond reporting numbers, this harness *asserts* the documented
//! ≤5% rollup-path tax contract. Detection splits across the pipeline:
//! payload accumulation runs worker-side, in parallel with
//! classification, while the serial rollup commit path — the stage that
//! cannot scale out — only merges bounded payloads, runs the detector
//! bank once per closed window, and encodes the payload into the ring.
//! The contract binds that serial path: detection's commit-side
//! additions, amortized per record, must stay under 5% of the study's
//! per-record budget. A regression that moves per-record work onto the
//! commit path (or unbounds a payload) blows the ratio up immediately.
//! Worker-side accumulation carries its own per-record ceiling so it
//! cannot silently regress either; being parallel, it is priced in
//! ns/record rather than as a share of the serial path. Incident
//! *emission* is deliberately outside both: each fired window costs one
//! fsynced provenance file, proportional to incidents, not to traffic.
//!
//! The steady-state study walls (detectors armed on calm traffic, zero
//! incidents) are measured and reported alongside, and the measured
//! numbers are written to `BENCH_detect.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spoofwatch_core::detect::{DetectConfig, DetectEngine, WindowDetect};
use spoofwatch_core::{
    read_incident_log, CheckpointStore, Classifier, RollupConfig, RunnerConfig, StudyRunner,
    WindowAccum,
};
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_ixp::chunked::ChunkedIpfixReader;
use spoofwatch_ixp::{ipfix, Trace, TrafficConfig};
use spoofwatch_net::{FlowRecord, InferenceMethod, OrgMode, Proto, TrafficClass};
use std::time::Instant;

const CHUNK_RECORDS: usize = 500;
const WINDOW_CHUNKS: u64 = 4;

fn runner_config() -> RunnerConfig {
    RunnerConfig {
        workers: 2,
        queue_depth: 4,
        checkpoint_every: 8,
        stall_timeout_ms: 0,
        ..RunnerConfig::default()
    }
}

#[derive(serde::Serialize)]
struct DetectBaseline {
    bench: &'static str,
    records: u64,
    chunk_records: usize,
    windows: usize,
    cores: usize,
    /// Worker-side payload accumulation over a mixed-class chunk,
    /// ns/record (counts, TTL histogram, reservoir draw).
    from_chunk_ns_per_record: f64,
    /// The same accumulation over an all-suspect chunk — every record
    /// feeds the per-bit and /24 entropy sketches.
    entropy_ns_per_record: f64,
    /// Commit-side detector bank per closed window, ns (Page–Hinkley
    /// per class and member, burst + TTL baselines, provenance build).
    observe_ns_per_window: f64,
    /// Everything detection adds to the serial commit path per closed
    /// window, ns: payload merges, the detector bank, ring encoding.
    serial_detect_ns_per_window: f64,
    /// Best-of-N wall of the steady-state rollup study without
    /// detection.
    rollup_wall_ms: f64,
    /// ... and with online detection armed (calm traffic, no alarms).
    rollup_detect_wall_ms: f64,
    /// The enforced contract: detection's serial commit-path additions
    /// amortized per record, as a fraction of the study's per-record
    /// budget. Must stay under 0.05.
    serial_tax: f64,
    /// Incidents the calm study fired (expected 0 — steady state).
    incidents: usize,
}

/// Best-of-N wall of `f`, milliseconds.
fn best_wall_ms(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Calm steady-state traffic for the tax contract: a fixed member mix
/// with stable per-member shares, stable TTL profiles, and a thin bogon
/// trickle — enough to keep every detector baseline warm without
/// tripping a single alarm.
fn calm_flows(net: &Internet) -> Vec<FlowRecord> {
    const CHUNKS: usize = 48;
    let mut rng = StdRng::seed_from_u64(93);
    let members: Vec<_> = net
        .ixp_members
        .iter()
        .copied()
        .filter(|m| net.random_addr_of(&mut rng, *m).is_some())
        .take(4)
        .collect();
    assert!(members.len() == 4, "tiny internet has 4 addressable members");
    let mut flows = Vec::with_capacity(CHUNKS * CHUNK_RECORDS);
    for i in 0..CHUNKS * CHUNK_RECORDS {
        let member = members[i % members.len()];
        let (src, ttl) = if rng.random_bool(0.02) {
            (0x0A01_0200 + rng.random_range(0..256), 58 + rng.random_range(0..4) as u8)
        } else {
            let src = net
                .random_addr_of(&mut rng, member)
                .expect("member has address space");
            (src, 50 + rng.random_range(0..12) as u8)
        };
        flows.push(FlowRecord {
            ts: rng.random_range(0..3600),
            src,
            dst: 0x0808_0808,
            proto: Proto::Udp,
            sport: rng.random_range(1025..65000),
            dport: 443,
            packets: 1,
            bytes: 40,
            pkt_size: 40,
            member,
            ttl,
        });
    }
    flows
}

/// Build per-window detect payloads and accums from classified chunks.
fn windows_of(
    flows: &[spoofwatch_net::FlowRecord],
    classes: &[TrafficClass],
) -> Vec<WindowAccum> {
    let mut windows = Vec::new();
    let window_records = CHUNK_RECORDS * WINDOW_CHUNKS as usize;
    for (i, (fs, cs)) in flows
        .chunks(window_records)
        .zip(classes.chunks(window_records))
        .enumerate()
    {
        let mut w = WindowAccum::start(i as u64, (i as u64) * WINDOW_CHUNKS);
        w.chunks = WINDOW_CHUNKS;
        for c in cs {
            w.class_flows[c.index()] += 1;
        }
        w.detect = Some(WindowDetect::from_chunk(fs, cs, 7, i as u64));
        windows.push(w);
    }
    windows
}

fn bench_detect(c: &mut Criterion) {
    let net = Internet::generate(InternetConfig::tiny(91));
    let mut tc = TrafficConfig::tiny(92);
    tc.regular_flows = 20_000;
    let trace = Trace::generate(&net, &tc);
    let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
    let classes = classifier.classify_trace(
        &trace.flows,
        InferenceMethod::FullCone,
        OrgMode::OrgAdjusted,
    );

    // Worker-side accumulation: a real mixed chunk, then an all-suspect
    // chunk so every record runs the entropy sketches.
    let chunk_flows = &trace.flows[..CHUNK_RECORDS];
    let chunk_classes = &classes[..CHUNK_RECORDS];
    let suspect_classes = vec![TrafficClass::Bogon; CHUNK_RECORDS];
    let mut group = c.benchmark_group("detect");
    group.throughput(Throughput::Elements(CHUNK_RECORDS as u64));
    group.bench_function("from_chunk_mixed", |b| {
        b.iter(|| {
            black_box(WindowDetect::from_chunk(
                black_box(chunk_flows),
                black_box(chunk_classes),
                7,
                3,
            ))
        })
    });
    group.bench_function("from_chunk_all_suspect", |b| {
        b.iter(|| {
            black_box(WindowDetect::from_chunk(
                black_box(chunk_flows),
                black_box(&suspect_classes),
                7,
                3,
            ))
        })
    });
    group.finish();

    let per_record = |classes: &[TrafficClass]| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            for seq in 0..50u64 {
                black_box(WindowDetect::from_chunk(chunk_flows, classes, 7, seq));
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / (50 * CHUNK_RECORDS) as f64);
        }
        best
    };
    let from_chunk_ns_per_record = per_record(chunk_classes);
    let entropy_ns_per_record = per_record(&suspect_classes);
    println!(
        "payload accumulation: {from_chunk_ns_per_record:.0} ns/record mixed, \
         {entropy_ns_per_record:.0} ns/record all-suspect"
    );
    // Worker-side ceiling: accumulation is parallel, but it still rides
    // every record — cap it so an unbounded reservoir or a re-sorted
    // chunk cannot sneak back in.
    const MAX_ACCUM_NS: f64 = 250.0;
    assert!(
        entropy_ns_per_record < MAX_ACCUM_NS,
        "worker-side payload accumulation costs {entropy_ns_per_record:.0} ns/record \
         (ceiling {MAX_ACCUM_NS})"
    );

    // Commit-side detector bank per closed window.
    let windows = windows_of(&trace.flows, &classes);
    let observe_ns_per_window = {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let mut engine = DetectEngine::new(DetectConfig::default());
            let t0 = Instant::now();
            let mut fired = 0usize;
            for w in &windows {
                fired += engine.observe(w).len();
            }
            black_box(fired);
            best = best.min(t0.elapsed().as_nanos() as f64 / windows.len() as f64);
        }
        best
    };
    println!(
        "detector bank: {observe_ns_per_window:.0} ns/window over {} windows",
        windows.len()
    );

    // Steady-state study walls: calm scripted traffic — a stable member
    // mix with a thin bogon trickle — keeps every detector armed but
    // silent, so the walls compare the hot path, not incident
    // persistence.
    let calm = calm_flows(&net);
    let calm_bytes = ipfix::encode(&calm);
    let scratch =
        std::env::temp_dir().join(format!("spoofwatch-bench-detect-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch");
    let run = |tag: &str, detect: bool| {
        let dir = scratch.join(format!("{tag}-ring"));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(scratch.join(format!("{tag}-ckpt")));
        let store =
            CheckpointStore::open(scratch.join(format!("{tag}-ckpt"))).expect("open store");
        let mut rollup = RollupConfig::new(&dir, WINDOW_CHUNKS);
        if detect {
            rollup.detect = Some(DetectConfig::default());
        }
        let mut source = ChunkedIpfixReader::new(&calm_bytes, CHUNK_RECORDS);
        StudyRunner::new(&classifier, runner_config())
            .with_rollups(rollup)
            .run(&mut source, &store)
            .expect("rollup run");
    };
    // Warm caches once so the first timed run isn't penalized.
    run("warm", true);
    const RUNS: usize = 5;
    let rollup_wall_ms = best_wall_ms(RUNS, || run("plain", false));
    let rollup_detect_wall_ms = best_wall_ms(RUNS, || run("detect", true));
    let (records, torn) =
        read_incident_log(&scratch.join("detect-ring")).expect("incident log");
    assert!(torn.is_empty(), "clean incident log");
    println!(
        "steady-state rollup study ({} records): {rollup_wall_ms:.1} ms plain, \
         {rollup_detect_wall_ms:.1} ms with detection armed, {} incidents",
        calm.len(),
        records.len()
    );
    assert!(
        records.is_empty(),
        "calm traffic fired {} incidents — steady state is not steady",
        records.len()
    );
    let _ = std::fs::remove_dir_all(&scratch);

    // The enforced ≤5% contract, on the path that cannot scale out: the
    // serial commit-side additions of detection — merging each chunk's
    // bounded payload into the window, running the detector bank at
    // close, and encoding the payload into the ring — amortized per
    // record against the study's per-record budget. Measured as tight
    // single-threaded loops over precomputed chunks, so the ratio is
    // deterministic where multi-threaded walls on a loaded box are not.
    let calm_classes = classifier.classify_trace(
        &calm,
        InferenceMethod::FullCone,
        OrgMode::OrgAdjusted,
    );
    let window_records = CHUNK_RECORDS * WINDOW_CHUNKS as usize;
    let calm_windows = calm.len() / window_records;
    let payloads: Vec<Vec<WindowDetect>> = (0..calm_windows)
        .map(|w| {
            (0..WINDOW_CHUNKS as usize)
                .map(|k| {
                    let seq = w * WINDOW_CHUNKS as usize + k;
                    let lo = seq * CHUNK_RECORDS;
                    WindowDetect::from_chunk(
                        &calm[lo..lo + CHUNK_RECORDS],
                        &calm_classes[lo..lo + CHUNK_RECORDS],
                        7,
                        seq as u64,
                    )
                })
                .collect()
        })
        .collect();
    let base_accums: Vec<WindowAccum> = (0..calm_windows)
        .map(|w| {
            let mut a = WindowAccum::start(w as u64, (w as u64) * WINDOW_CHUNKS);
            a.chunks = WINDOW_CHUNKS;
            for c in &calm_classes[w * window_records..(w + 1) * window_records] {
                a.class_flows[c.index()] += 1;
            }
            a
        })
        .collect();
    let serial_pass = |detect: bool| -> f64 {
        let mut best = f64::INFINITY;
        let mut buf = Vec::new();
        for _ in 0..5 {
            let mut engine = DetectEngine::new(DetectConfig::default());
            let t0 = Instant::now();
            for (w, base) in base_accums.iter().enumerate() {
                let mut accum = base.clone();
                if detect {
                    let mut d = WindowDetect::new();
                    for p in &payloads[w] {
                        d.merge(p);
                    }
                    accum.detect = Some(d);
                    black_box(engine.observe(&accum).len());
                }
                buf.clear();
                accum.encode_into(&mut buf);
                black_box(buf.len());
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / calm_windows as f64);
        }
        best
    };
    serial_pass(true); // warm-up
    let serial_plain_ns = serial_pass(false);
    let serial_detect_ns_per_window = serial_pass(true) - serial_plain_ns;
    let record_budget_ns = rollup_wall_ms * 1e6 / calm.len() as f64;
    let serial_tax =
        serial_detect_ns_per_window / (window_records as f64 * record_budget_ns);
    println!(
        "serial commit path: +{serial_detect_ns_per_window:.0} ns/window for detection \
         ({:.2} ns/record against a {record_budget_ns:.0} ns/record budget → \
         {:.2}% serial tax)",
        serial_detect_ns_per_window / window_records as f64,
        100.0 * serial_tax
    );
    const MAX_SERIAL_TAX: f64 = 0.05;
    assert!(
        serial_tax < MAX_SERIAL_TAX,
        "detection taxes the serial rollup commit path {:.2}% per record \
         (ceiling {:.0}%)",
        100.0 * serial_tax,
        100.0 * MAX_SERIAL_TAX
    );

    write_baseline(DetectBaseline {
        bench: "detect",
        records: calm.len() as u64,
        chunk_records: CHUNK_RECORDS,
        windows: windows.len(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        from_chunk_ns_per_record,
        entropy_ns_per_record,
        observe_ns_per_window,
        serial_detect_ns_per_window,
        rollup_wall_ms,
        rollup_detect_wall_ms,
        serial_tax,
        incidents: records.len(),
    });
}

fn write_baseline(baseline: DetectBaseline) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detect.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(path, json + "\n").expect("write BENCH_detect.json");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
