//! Observability overhead: the cost of metric updates with telemetry
//! enabled, and — the contract the instrumented hot paths rely on — the
//! near-zero cost when telemetry is disabled.
//!
//! Beyond reporting numbers, this harness *asserts* that a disabled
//! `Counter::inc` and a disabled `Histogram::record` stay under
//! 20 ns/call (best of three timed runs), so a regression that puts
//! real work behind the disabled path fails CI instead of silently
//! taxing every decoded record.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spoofwatch_obs::MetricsRegistry;
use std::time::Instant;

fn bench_obs(c: &mut Criterion) {
    let live = MetricsRegistry::new();
    let dead = MetricsRegistry::disabled();

    let live_ctr = live.counter("bench_events_total", "bench", &[("lane", "hot")]);
    let dead_ctr = dead.counter("bench_events_total", "bench", &[("lane", "hot")]);
    let live_hist = live.histogram("bench_latency_ns", "bench", &[]);
    let dead_hist = dead.histogram("bench_latency_ns", "bench", &[]);

    let mut group = c.benchmark_group("obs");
    group.bench_function("counter_inc_enabled", |b| b.iter(|| live_ctr.inc()));
    group.bench_function("counter_inc_disabled", |b| b.iter(|| dead_ctr.inc()));
    group.bench_function("histogram_record_enabled", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2_654_435_761).wrapping_rem(1 << 30);
            live_hist.record(black_box(v))
        })
    });
    group.bench_function("histogram_record_disabled", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2_654_435_761).wrapping_rem(1 << 30);
            dead_hist.record(black_box(v))
        })
    });
    group.bench_function("registry_snapshot_render", |b| {
        b.iter(|| black_box(live.snapshot().render_prometheus()))
    });
    group.finish();

    assert_disabled_overhead();
}

/// Time `calls` invocations of `f` and return mean ns/call, best of
/// three runs (the minimum absorbs scheduler noise).
fn best_of_three(calls: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..calls {
            f();
        }
        let per_call = t0.elapsed().as_nanos() as f64 / calls as f64;
        best = best.min(per_call);
    }
    best
}

fn assert_disabled_overhead() {
    const CALLS: u64 = 5_000_000;
    const CEILING_NS: f64 = 20.0;
    let dead = MetricsRegistry::disabled();
    let ctr = dead.counter("bench_disabled_total", "bench", &[]);
    let hist = dead.histogram("bench_disabled_ns", "bench", &[]);

    let inc_ns = best_of_three(CALLS, || ctr.inc());
    let mut v = 0u64;
    let rec_ns = best_of_three(CALLS, || {
        v = v.wrapping_add(2_654_435_761);
        hist.record(black_box(v));
    });
    println!(
        "  disabled-path contract: counter.inc {inc_ns:.2} ns/call, \
         histogram.record {rec_ns:.2} ns/call (ceiling {CEILING_NS} ns)"
    );
    assert!(
        inc_ns < CEILING_NS,
        "disabled Counter::inc costs {inc_ns:.2} ns/call (ceiling {CEILING_NS} ns)"
    );
    assert!(
        rec_ns < CEILING_NS,
        "disabled Histogram::record costs {rec_ns:.2} ns/call (ceiling {CEILING_NS} ns)"
    );
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
