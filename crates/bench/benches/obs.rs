//! Observability overhead: the cost of metric updates with telemetry
//! enabled, and — the contract the instrumented hot paths rely on — the
//! near-zero cost when telemetry is disabled.
//!
//! Beyond reporting numbers, this harness *asserts* two contracts:
//!
//! * a disabled `Counter::inc` and a disabled `Histogram::record` stay
//!   under 20 ns/call (best of three timed runs), so a regression that
//!   puts real work behind the disabled path fails CI instead of
//!   silently taxing every decoded record;
//! * `Classifier::classify_trace_sampled` with a *disabled* provenance
//!   sampler stays within 5% of the plain `classify_trace` path — the
//!   sampling hook must cost one branch per flow, not an allocation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spoofwatch_core::{Classifier, ProvenanceSampler};
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_ixp::{Trace, TrafficConfig};
use spoofwatch_obs::MetricsRegistry;
use std::time::Instant;

fn bench_obs(c: &mut Criterion) {
    let live = MetricsRegistry::new();
    let dead = MetricsRegistry::disabled();

    let live_ctr = live.counter("bench_events_total", "bench", &[("lane", "hot")]);
    let dead_ctr = dead.counter("bench_events_total", "bench", &[("lane", "hot")]);
    let live_hist = live.histogram("bench_latency_ns", "bench", &[]);
    let dead_hist = dead.histogram("bench_latency_ns", "bench", &[]);

    let mut group = c.benchmark_group("obs");
    group.bench_function("counter_inc_enabled", |b| b.iter(|| live_ctr.inc()));
    group.bench_function("counter_inc_disabled", |b| b.iter(|| dead_ctr.inc()));
    group.bench_function("histogram_record_enabled", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2_654_435_761).wrapping_rem(1 << 30);
            live_hist.record(black_box(v))
        })
    });
    group.bench_function("histogram_record_disabled", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2_654_435_761).wrapping_rem(1 << 30);
            dead_hist.record(black_box(v))
        })
    });
    group.bench_function("registry_snapshot_render", |b| {
        b.iter(|| black_box(live.snapshot().render_prometheus()))
    });
    group.finish();

    bench_provenance_sampling(c);
    assert_disabled_overhead();
    assert_disabled_sampler_overhead();
}

/// Classification with and without the provenance-sampling hook, plus
/// the live-sampler cost for scale.
fn bench_provenance_sampling(c: &mut Criterion) {
    let (classifier, flows) = sampling_fixture();
    let method = spoofwatch_net::InferenceMethod::FullCone;
    let org = spoofwatch_net::OrgMode::OrgAdjusted;

    let mut group = c.benchmark_group("provenance");
    group.bench_function("classify_trace_plain", |b| {
        b.iter(|| black_box(classifier.classify_trace(black_box(&flows), method, org)))
    });
    group.bench_function("classify_trace_sampler_disabled", |b| {
        let mut sampler = ProvenanceSampler::disabled();
        b.iter(|| {
            black_box(classifier.classify_trace_sampled(
                black_box(&flows),
                method,
                org,
                &mut sampler,
            ))
        })
    });
    group.bench_function("classify_trace_sampler_live_16", |b| {
        b.iter(|| {
            let mut sampler = ProvenanceSampler::new(7, 16);
            black_box(classifier.classify_trace_sampled(
                black_box(&flows),
                method,
                org,
                &mut sampler,
            ))
        })
    });
    group.finish();
}

fn sampling_fixture() -> (Classifier, Vec<spoofwatch_net::FlowRecord>) {
    let net = Internet::generate(InternetConfig::tiny(5));
    let mut tc = TrafficConfig::tiny(6);
    tc.regular_flows = 20_000;
    let trace = Trace::generate(&net, &tc);
    let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
    (classifier, trace.flows)
}

/// Time `calls` invocations of `f` and return mean ns/call, best of
/// three runs (the minimum absorbs scheduler noise).
fn best_of_three(calls: u64, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..calls {
            f();
        }
        let per_call = t0.elapsed().as_nanos() as f64 / calls as f64;
        best = best.min(per_call);
    }
    best
}

fn assert_disabled_overhead() {
    const CALLS: u64 = 5_000_000;
    const CEILING_NS: f64 = 20.0;
    let dead = MetricsRegistry::disabled();
    let ctr = dead.counter("bench_disabled_total", "bench", &[]);
    let hist = dead.histogram("bench_disabled_ns", "bench", &[]);

    let inc_ns = best_of_three(CALLS, || ctr.inc());
    let mut v = 0u64;
    let rec_ns = best_of_three(CALLS, || {
        v = v.wrapping_add(2_654_435_761);
        hist.record(black_box(v));
    });
    println!(
        "  disabled-path contract: counter.inc {inc_ns:.2} ns/call, \
         histogram.record {rec_ns:.2} ns/call (ceiling {CEILING_NS} ns)"
    );
    assert!(
        inc_ns < CEILING_NS,
        "disabled Counter::inc costs {inc_ns:.2} ns/call (ceiling {CEILING_NS} ns)"
    );
    assert!(
        rec_ns < CEILING_NS,
        "disabled Histogram::record costs {rec_ns:.2} ns/call (ceiling {CEILING_NS} ns)"
    );
}

/// The disabled-sampler classify path must track the plain path within
/// 5% — the provenance hook's whole design is that the cold branch is
/// free.
fn assert_disabled_sampler_overhead() {
    const RUNS: usize = 5;
    const MAX_RATIO: f64 = 1.05;
    let (classifier, flows) = sampling_fixture();
    let method = spoofwatch_net::InferenceMethod::FullCone;
    let org = spoofwatch_net::OrgMode::OrgAdjusted;

    let time = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..RUNS {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_nanos() as f64);
        }
        best
    };
    // Warm caches once so the first timed run isn't penalized.
    black_box(classifier.classify_trace(&flows, method, org));
    let plain_ns = time(&mut || {
        black_box(classifier.classify_trace(black_box(&flows), method, org));
    });
    let mut sampler = ProvenanceSampler::disabled();
    let sampled_ns = time(&mut || {
        black_box(classifier.classify_trace_sampled(black_box(&flows), method, org, &mut sampler));
    });
    let ratio = sampled_ns / plain_ns;
    println!(
        "  sampler-disabled contract: plain {:.2} ms, sampled {:.2} ms, ratio {ratio:.3} \
         (ceiling {MAX_RATIO})",
        plain_ns / 1e6,
        sampled_ns / 1e6,
    );
    assert!(
        ratio < MAX_RATIO,
        "classify with disabled sampler is {ratio:.3}x the plain path (ceiling {MAX_RATIO})"
    );
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
