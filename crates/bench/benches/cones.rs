//! Cone-construction performance: SCC condensation plus bitset
//! reachability over the AS-path graph, at several topology scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spoofwatch_asgraph::{augment_with_orgs, ReachCones};
use spoofwatch_bgp::RoutedTable;
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_net::Asn;
use std::hint::black_box;

fn bench_cones(c: &mut Criterion) {
    let mut group = c.benchmark_group("cones");
    group.sample_size(10);
    for num_ases in [500usize, 1000, 2000] {
        let net = Internet::generate(InternetConfig {
            seed: 13,
            num_ases,
            num_ixp_members: (num_ases / 4).min(727),
            ..InternetConfig::default()
        });
        let table = RoutedTable::build(net.announcements.iter());
        let units = table.origin_units();
        let mut edges: Vec<(Asn, Asn)> = table.edges().iter().copied().collect();
        edges.sort_unstable();

        group.bench_with_input(
            BenchmarkId::new("full_cone", num_ases),
            &num_ases,
            |b, _| b.iter(|| black_box(ReachCones::compute(black_box(&edges), &units))),
        );
        group.bench_with_input(
            BenchmarkId::new("full_cone_org_adjusted", num_ases),
            &num_ases,
            |b, _| {
                b.iter(|| {
                    let mut e = edges.clone();
                    augment_with_orgs(&mut e, &net.orgs_dataset);
                    black_box(ReachCones::compute(&e, &units))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("routed_table_build", num_ases),
            &num_ases,
            |b, _| b.iter(|| black_box(RoutedTable::build(net.announcements.iter()))),
        );
        group.bench_with_input(
            BenchmarkId::new("relationship_inference", num_ases),
            &num_ases,
            |b, _| {
                b.iter(|| {
                    black_box(spoofwatch_core::relinfer::Relationships::infer(
                        net.announcements.iter().map(|a| &a.path),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cones);
criterion_main!(benches);
