//! Wire-format throughput: IPFIX-lite, MRT-lite, pcap, and packet
//! crafting/parsing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spoofwatch_bgp::{mrt, Announcement, AsPath, Update};
use spoofwatch_ixp::ipfix;
use spoofwatch_net::{Asn, FlowRecord, Ipv4Prefix, Proto};
use spoofwatch_packet::{craft, flow::extract_flow, PcapPacket, PcapReader, PcapWriter};
use std::hint::black_box;
use std::io::Cursor;

fn sample_flows(n: usize) -> Vec<FlowRecord> {
    let mut rng = StdRng::seed_from_u64(9);
    (0..n)
        .map(|_| FlowRecord {
            ts: rng.random(),
            src: rng.random(),
            dst: rng.random(),
            proto: Proto::from_number(rng.random_range(0..20)),
            sport: rng.random(),
            dport: rng.random(),
            packets: rng.random_range(1..100),
            bytes: rng.random_range(40..100_000),
            pkt_size: rng.random_range(40..1500),
            member: Asn(rng.random_range(1..60_000)),
            ttl: 0,
        })
        .collect()
}

fn sample_updates(n: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|_| {
            let prefix = Ipv4Prefix::new_truncating(rng.random(), rng.random_range(8..=24));
            if rng.random_bool(0.8) {
                let hops: Vec<u32> = (0..rng.random_range(1..6)).map(|_| rng.random_range(1..60_000)).collect();
                Update::Announce {
                    ts: rng.random(),
                    peer: Asn(rng.random_range(1..1000)),
                    announcement: Announcement::new(prefix, AsPath::from(hops)),
                }
            } else {
                Update::Withdraw {
                    ts: rng.random(),
                    peer: Asn(rng.random_range(1..1000)),
                    prefix,
                }
            }
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let flows = sample_flows(50_000);
    let encoded_flows = ipfix::encode(&flows);
    let updates = sample_updates(20_000);
    let encoded_updates = mrt::encode(&updates);

    let mut group = c.benchmark_group("codecs");
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("ipfix_encode_50k", |b| {
        b.iter(|| black_box(ipfix::encode(black_box(&flows))))
    });
    group.bench_function("ipfix_decode_50k", |b| {
        b.iter(|| black_box(ipfix::decode(black_box(&encoded_flows)).unwrap()))
    });

    group.throughput(Throughput::Elements(updates.len() as u64));
    group.bench_function("mrt_encode_20k", |b| {
        b.iter(|| black_box(mrt::encode(black_box(&updates))))
    });
    group.bench_function("mrt_decode_20k", |b| {
        b.iter(|| black_box(mrt::decode(black_box(&encoded_updates)).unwrap()))
    });

    // Packet pipeline: craft → pcap write → pcap read → flow extraction.
    let packets: Vec<Vec<u8>> = (0..5_000)
        .map(|i| {
            let i = i as u32;
            craft::udp(i, !i, (i % 60_000) as u16, 123, &[0u8; 40])
        })
        .collect();
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("craft_udp_5k", |b| {
        b.iter(|| {
            for i in 0..5_000u32 {
                black_box(craft::udp(i, !i, (i % 60_000) as u16, 123, &[0u8; 40]));
            }
        })
    });
    group.bench_function("extract_flow_5k", |b| {
        b.iter(|| {
            for p in &packets {
                black_box(extract_flow(black_box(p)).unwrap());
            }
        })
    });
    group.bench_function("pcap_roundtrip_5k", |b| {
        b.iter(|| {
            let mut w = PcapWriter::new(Vec::new()).unwrap();
            for (i, p) in packets.iter().enumerate() {
                w.write_packet(&PcapPacket::full(i as u32, 0, p.clone())).unwrap();
            }
            let bytes = w.finish().unwrap();
            let mut r = PcapReader::new(Cursor::new(bytes)).unwrap();
            black_box(r.collect_packets().unwrap().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
