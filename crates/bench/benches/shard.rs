//! Shard scaling: end-to-end throughput of the sharded study over the
//! in-process transport at 1, 2, and 4 shards, plus the partition-hash
//! microbench that gates the splitter's decode loop.
//!
//! Three contracts are *asserted*: a clean run at every shard count
//! with `offered == processed + shed + quarantined` and zero loss, a
//! merged breakdown identical across shard counts, and a bounded
//! shard-layer tax — the 1-shard sharded run (full wire codec, frame
//! CRCs, heartbeats, ack-paced window) must stay within 3x of the
//! plain in-process `StudyRunner` on the same trace. (On a 1-core host
//! the coordinator's decode+partition+frame-encode pass serializes
//! with the worker instead of overlapping it, so the tax reads close
//! to 2x there; with idle cores it approaches 1x.)
//!
//! The scaling numbers themselves are recorded, not asserted: wall
//! clock speedup is bounded by the host's core count (written to the
//! baseline as `cores` — on a 1-core CI box flat scaling is the
//! expected reading) and by the coordinator's serial decode+partition
//! pass. The near-linear target (`near_linear_target_efficiency`) is
//! written into the baseline so multi-core trajectories make
//! regressions visible.
//!
//! The measured numbers are written to `BENCH_shard.json` at the repo
//! root as the tracked baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spoofwatch_core::{
    CheckpointStore, Classifier, ShardConfig, ShardCoordinator, ShardPlan, ShardStudyReport,
    ShardWorkerConfig, SHARD_WIRE_MAGIC,
};
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_ixp::{ipfix, Trace, TrafficConfig};
use spoofwatch_net::{FlowRecord, InProcHub};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const CHUNK_RECORDS: usize = 100;

fn runner_config() -> spoofwatch_core::RunnerConfig {
    spoofwatch_core::RunnerConfig {
        workers: 2,
        checkpoint_every: 8,
        track_disagreement: true,
        ..spoofwatch_core::RunnerConfig::default()
    }
}

/// One timed coordinator run with `shards` in-process workers over a
/// fresh scratch directory. Returns the merged report and wall time.
fn sharded_run(
    bytes: &Arc<Vec<u8>>,
    classifier: &Arc<Classifier>,
    scratch: &PathBuf,
    shards: u32,
) -> (ShardStudyReport, f64) {
    let hub = Arc::new(InProcHub::new(SHARD_WIRE_MAGIC, 16));
    let mut cfg = ShardConfig::new(ShardPlan::new(shards, 0xbe9c), CHUNK_RECORDS);
    cfg.backoff_base_ms = 5;
    cfg.backoff_max_ms = 40;

    let spawn_hub = Arc::clone(&hub);
    let spawn_classifier = Arc::clone(classifier);
    let spawn_scratch = scratch.clone();
    let spawn = move |shard_id: u32| {
        let transport = spawn_hub.connect().expect("hub connect");
        let classifier = Arc::clone(&spawn_classifier);
        let ckpt = spawn_scratch.join(format!("s{shards}-shard{shard_id}-ckpt"));
        std::thread::spawn(move || {
            let cfg = ShardWorkerConfig::new(shard_id, runner_config());
            let store = CheckpointStore::open(&ckpt).expect("open shard store");
            let _ = spoofwatch_core::serve_shard(&classifier, &cfg, &store, transport);
        });
    };

    let t0 = Instant::now();
    let merged = ShardCoordinator::new(bytes, cfg)
        .run(hub.as_ref(), &spawn)
        .expect("sharded run");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (merged, wall_ms)
}

#[derive(serde::Serialize)]
struct ShardRun {
    shards: u32,
    wall_ms: f64,
    records_per_sec: f64,
    scaling_vs_single: f64,
}

#[derive(serde::Serialize)]
struct ShardBaseline {
    bench: &'static str,
    records: u64,
    chunk_records: usize,
    /// Cores available to this run: wall-clock scaling is bounded by
    /// this, so flat scaling on a 1-core host is the expected reading.
    cores: usize,
    partition_hash_ns: f64,
    /// Plain in-process `StudyRunner`, no shard layer: the floor the
    /// shard tax is measured against.
    single_node_wall_ms: f64,
    /// 1-shard wall over single-node wall — the full cost of the wire
    /// codec, CRC framing, heartbeats, and the ack-paced window.
    shard_layer_tax: f64,
    runs: Vec<ShardRun>,
    /// Aspirational parallel efficiency at 4 shards
    /// (scaling_vs_single / shards) on a multi-core host; the
    /// coordinator's serial decode+partition pass is the known ceiling.
    near_linear_target_efficiency: f64,
}

/// Mean ns per flow for the splitter's partition hash, best of three.
fn partition_ns(plan: &ShardPlan, flows: &[FlowRecord]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for f in flows {
            acc += plan.shard_of(black_box(f)) as u64;
        }
        black_box(acc);
        best = best.min(t0.elapsed().as_nanos() as f64 / flows.len() as f64);
    }
    best
}

fn bench_shard(c: &mut Criterion) {
    let net = Internet::generate(InternetConfig::tiny(71));
    let mut tc = TrafficConfig::tiny(72);
    tc.regular_flows = 2_000;
    let trace = Trace::generate(&net, &tc);
    let bytes = Arc::new(ipfix::encode(&trace.flows));
    let classifier = Arc::new(Classifier::build(&net.announcements, &net.orgs_dataset));
    let plan = ShardPlan::new(4, 0xbe9c);

    let mut group = c.benchmark_group("shard");
    group.throughput(Throughput::Elements(trace.flows.len() as u64));
    group.bench_function("partition_hash", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for f in &trace.flows {
                acc += plan.shard_of(black_box(f)) as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
    let partition_hash_ns = partition_ns(&plan, &trace.flows);
    println!("partition hash: {partition_hash_ns:.1} ns/flow");

    let scratch = std::env::temp_dir().join(format!("spoofwatch-bench-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("create scratch");

    // The floor: the plain runner with no shard layer at all.
    let single_node_wall_ms = {
        use spoofwatch_ixp::chunked::ChunkedIpfixReader;
        let store =
            CheckpointStore::open(scratch.join("single-node-ckpt")).expect("open single store");
        let mut source = ChunkedIpfixReader::new(&bytes, CHUNK_RECORDS);
        let t0 = Instant::now();
        let report = spoofwatch_core::StudyRunner::new(&classifier, runner_config())
            .run(&mut source, &store)
            .expect("single-node run");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        assert!(report.health.records.offered > 0);
        wall
    };
    println!("single-node floor: {single_node_wall_ms:.0} ms");

    let mut runs = Vec::new();
    let mut single_ms = 0.0;
    let mut reference_breakdown = None;
    for shards in [1u32, 2, 4] {
        let (merged, wall_ms) = sharded_run(&bytes, &classifier, &scratch, shards);
        assert!(
            merged.shards.iter().all(|s| s.completed && s.deaths == 0),
            "{shards}-shard run must complete cleanly"
        );
        assert!(
            merged.records.reconciles() && merged.records.lost == 0,
            "{shards}-shard accounting must reconcile with zero loss"
        );
        match &reference_breakdown {
            None => reference_breakdown = Some(merged.breakdown.clone()),
            Some(reference) => assert_eq!(
                &merged.breakdown, reference,
                "merged breakdown must not depend on the shard count"
            ),
        }
        if shards == 1 {
            single_ms = wall_ms;
        }
        let records_per_sec = merged.records.offered as f64 / (wall_ms / 1e3);
        let scaling_vs_single = single_ms / wall_ms;
        println!(
            "{shards} shard(s): {wall_ms:.0} ms, {records_per_sec:.0} records/s, \
             {scaling_vs_single:.2}x vs single"
        );
        runs.push(ShardRun {
            shards,
            wall_ms,
            records_per_sec,
            scaling_vs_single,
        });
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let shard_layer_tax = single_ms / single_node_wall_ms;
    println!("shard layer tax (1 shard vs plain runner): {shard_layer_tax:.2}x");
    assert!(
        shard_layer_tax < 3.0,
        "the shard layer must cost under 3x the plain runner (got {shard_layer_tax:.2}x)"
    );

    write_baseline(ShardBaseline {
        bench: "shard",
        records: trace.flows.len() as u64,
        chunk_records: CHUNK_RECORDS,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        partition_hash_ns,
        single_node_wall_ms,
        shard_layer_tax,
        runs,
        near_linear_target_efficiency: 0.75,
    });
}

fn write_baseline(baseline: ShardBaseline) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(path, json + "\n").expect("write BENCH_shard.json");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
