//! The compiled LPM fast path versus the Patricia trie, and the cost
//! of classifying through an epoch-swap cell.
//!
//! Three contracts are *asserted* (not just reported), so a regression
//! that makes the compiled path pointless fails CI:
//!
//! * `FrozenLpm` answers random lookups at least 2× faster than the
//!   trie it was frozen from, at every bogon mix (0%, 1%, 5%);
//! * the fused single-walk `classify_with` beats the reference
//!   two-trie-walk `classify_with_tries`;
//! * a 64-flow batch plans exactly one worker — the inline, zero-spawn
//!   path ([`spoofwatch_core::planned_classify_workers`]).
//!
//! The measured numbers are written to `BENCH_lpm.json` at the repo
//! root as the tracked baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spoofwatch_core::{planned_classify_workers, Classifier, EpochSwap};
use spoofwatch_internet::{bogon, Internet, InternetConfig};
use spoofwatch_ixp::{Trace, TrafficConfig};
use spoofwatch_net::{
    parse_addr, Asn, FlowRecord, InferenceMethod, Ipv4Prefix, OrgMode, Proto, TrafficClass,
};
use spoofwatch_trie::{FrozenLpm, PrefixSet, PrefixTrie};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A realistic routed table: every announced prefix of the default
/// synthetic Internet (~12K prefixes, /8../24 mix).
fn routed_prefixes() -> Vec<Ipv4Prefix> {
    let net = Internet::generate(InternetConfig {
        seed: 3,
        ..InternetConfig::default()
    });
    net.topology
        .ases()
        .flat_map(|a| a.prefixes.iter().copied())
        .collect()
}

/// `n` probe addresses with `bogon_pct`% drawn from bogon ranges and
/// the rest rejection-sampled to be bogon-free (routed or not).
fn mixed_probes(seed: u64, bogons: &PrefixSet, n: usize, bogon_pct: u32) -> Vec<u32> {
    let ranges: Vec<Ipv4Prefix> = bogons.iter().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.random_ratio(bogon_pct, 100) {
                let r = ranges[rng.random_range(0..ranges.len())];
                let host_bits = 32 - r.len();
                let mask = if host_bits == 32 {
                    u32::MAX
                } else {
                    (1u32 << host_bits) - 1
                };
                r.bits() | (rng.random::<u32>() & mask)
            } else {
                loop {
                    let a: u32 = rng.random();
                    if !bogons.contains_addr(a) {
                        break a;
                    }
                }
            }
        })
        .collect()
}

/// Mean ns per probe over the whole probe set, best of three passes.
fn lookup_ns(probes: &[u32], mut f: impl FnMut(u32) -> bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut hits = 0usize;
        for &addr in probes {
            if f(black_box(addr)) {
                hits += 1;
            }
        }
        black_box(hits);
        best = best.min(t0.elapsed().as_nanos() as f64 / probes.len() as f64);
    }
    best
}

#[derive(serde::Serialize)]
struct MixResult {
    bogon_pct: u32,
    trie_ns: f64,
    frozen_ns: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct LpmBaseline {
    bench: &'static str,
    table_prefixes: usize,
    probes_per_mix: usize,
    mixes: Vec<MixResult>,
    frozen_memory_bytes: usize,
    frozen_spill_chunks: usize,
    classify_flows: usize,
    classify_tries_ns: f64,
    classify_compiled_ns: f64,
    classify_speedup: f64,
    compiled_table_entries: usize,
    compiled_memory_bytes: usize,
    swap_load_ns: f64,
    swap_publishes: u64,
}

fn bench_lpm(c: &mut Criterion) {
    let prefixes = routed_prefixes();
    let trie: PrefixTrie<u32> = prefixes
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, i as u32))
        .collect();
    let frozen: FrozenLpm<u32> = trie.freeze();
    let bogons = bogon::bogon_set();

    let mut mixes = Vec::new();
    let mut group = c.benchmark_group("lpm");
    for bogon_pct in [0u32, 1, 5] {
        let probes = mixed_probes(0xF0 + bogon_pct as u64, &bogons, 10_000, bogon_pct);
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_function(format!("trie_bogon{bogon_pct}pct"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &addr in &probes {
                    if trie.lookup(black_box(addr)).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.bench_function(format!("frozen_bogon{bogon_pct}pct"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &addr in &probes {
                    if frozen.lookup(black_box(addr)).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });

        // Differential sanity on the bench fixture itself.
        for &addr in &probes {
            assert_eq!(
                trie.lookup(addr).map(|(p, v)| (p, *v)),
                frozen.lookup(addr).map(|(p, v)| (p, *v)),
                "frozen diverges from trie at {addr:#010x}"
            );
        }

        let trie_ns = lookup_ns(&probes, |a| trie.lookup(a).is_some());
        let frozen_ns = lookup_ns(&probes, |a| frozen.lookup(a).is_some());
        let speedup = trie_ns / frozen_ns;
        println!(
            "lpm[{bogon_pct}% bogon]: trie {trie_ns:.1} ns, frozen {frozen_ns:.1} ns, {speedup:.1}x"
        );
        assert!(
            speedup >= 2.0,
            "frozen LPM must be at least 2x the trie (got {speedup:.2}x at {bogon_pct}% bogon)"
        );
        mixes.push(MixResult {
            bogon_pct,
            trie_ns,
            frozen_ns,
            speedup,
        });
    }
    group.finish();

    let (classify, swap) = bench_fused_classify(c);
    write_baseline(LpmBaseline {
        bench: "lpm",
        table_prefixes: prefixes.len(),
        probes_per_mix: 10_000,
        mixes,
        frozen_memory_bytes: frozen.memory_bytes(),
        frozen_spill_chunks: frozen.spill_chunks(),
        classify_flows: classify.0,
        classify_tries_ns: classify.1,
        classify_compiled_ns: classify.2,
        classify_speedup: classify.1 / classify.2,
        compiled_table_entries: classify.3,
        compiled_memory_bytes: classify.4,
        swap_load_ns: swap.0,
        swap_publishes: swap.1,
    });
}

/// The fused classify microbench plus swap-under-load; returns
/// ((flows, tries_ns, compiled_ns, entries, bytes), (load_ns, publishes)).
fn bench_fused_classify(c: &mut Criterion) -> ((usize, f64, f64, usize, usize), (f64, u64)) {
    let net = Internet::generate(InternetConfig::tiny(5));
    let mut tc = TrafficConfig::tiny(6);
    tc.regular_flows = 20_000;
    let trace = Trace::generate(&net, &tc);
    let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
    let flows = trace.flows;
    let method = InferenceMethod::FullCone;
    let org = OrgMode::OrgAdjusted;

    let mut group = c.benchmark_group("classify");
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("two_trie_walks", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for f in &flows {
                acc += classifier.classify_with_tries(black_box(f), method, org).index();
            }
            black_box(acc)
        })
    });
    group.bench_function("compiled_single_walk", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for f in &flows {
                acc += classifier.classify_with(black_box(f), method, org).index();
            }
            black_box(acc)
        })
    });
    group.finish();

    let tries_ns = classify_ns(&flows, |f| classifier.classify_with_tries(f, method, org));
    let compiled_ns = classify_ns(&flows, |f| classifier.classify_with(f, method, org));
    let speedup = tries_ns / compiled_ns;
    println!(
        "classify: tries {tries_ns:.1} ns/flow, compiled {compiled_ns:.1} ns/flow, {speedup:.2}x"
    );
    assert!(
        speedup > 1.0,
        "the compiled single-walk path must beat the two-trie-walk reference (got {speedup:.2}x)"
    );

    // The zero-spawn contract for small batches.
    for threads in [1, 2, 8, 64] {
        assert_eq!(
            planned_classify_workers(64, threads),
            1,
            "a 64-flow batch must classify inline with zero spawns"
        );
    }

    let swap = swap_under_load();
    ((
        flows.len(),
        tries_ns,
        compiled_ns,
        classifier.compiled().len(),
        classifier.compiled().memory_bytes(),
    ), swap)
}

fn classify_ns(flows: &[FlowRecord], mut f: impl FnMut(&FlowRecord) -> TrafficClass) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let mut acc = 0usize;
        for flow in flows {
            acc += f(black_box(flow)).index();
        }
        black_box(acc);
        best = best.min(t0.elapsed().as_nanos() as f64 / flows.len() as f64);
    }
    best
}

/// Classify continuously through an [`EpochSwap`] while a background
/// thread publishes rebuilt classifiers, and measure the per-chunk
/// guard cost. Asserts the reader only ever observes whole-epoch
/// verdicts (Valid from epoch A, Unrouted from epoch B — never a
/// mix within one chunk, never anything else).
fn swap_under_load() -> (f64, u64) {
    use spoofwatch_bgp::{Announcement, AsPath};
    let build = |prefix: &str| {
        Classifier::build(
            &[Announcement::new(
                prefix.parse().expect("prefix"),
                AsPath::from(vec![3u32]),
            )],
            &spoofwatch_asgraph::As2Org::new(),
        )
    };
    let probe = FlowRecord {
        ts: 0,
        src: parse_addr("20.0.0.1").expect("addr"),
        dst: 1,
        proto: Proto::Udp,
        sport: 53,
        dport: 53,
        packets: 1,
        bytes: 64,
        pkt_size: 64,
        member: Asn(3),
        ttl: 0,
    };
    let chunk: Vec<FlowRecord> = vec![probe; 512];
    let swap = Arc::new(EpochSwap::new(build("20.0.0.0/8")));
    let stop = Arc::new(AtomicBool::new(false));

    let publisher = {
        let swap = Arc::clone(&swap);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut published = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Alternate epochs: probe Valid under A, Unrouted under B.
                let next = if published % 2 == 0 {
                    build("40.0.0.0/8")
                } else {
                    build("20.0.0.0/8")
                };
                swap.publish(next);
                published += 1;
            }
            published
        })
    };

    let mut chunks = 0u64;
    let mut guard_ns_total = 0u128;
    let t_run = Instant::now();
    while t_run.elapsed().as_millis() < 200 {
        let t0 = Instant::now();
        let guard = swap.load();
        guard_ns_total += t0.elapsed().as_nanos();
        let classes: Vec<TrafficClass> = chunk.iter().map(|f| guard.classify(f)).collect();
        // Whole-epoch visibility: one chunk, one classifier, one class.
        let first = classes[0];
        assert!(
            first == TrafficClass::Valid || first == TrafficClass::Unrouted,
            "unexpected class {first} under swap"
        );
        assert!(
            classes.iter().all(|c| *c == first),
            "verdicts tore within a chunk despite the per-chunk guard"
        );
        chunks += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let publishes = publisher.join().expect("publisher");
    let load_ns = guard_ns_total as f64 / chunks.max(1) as f64;
    println!(
        "swap-under-load: {chunks} chunks classified across {publishes} publications, \
         guard load {load_ns:.0} ns/chunk"
    );
    assert!(publishes > 0, "publisher never published");
    (load_ns, publishes)
}

fn write_baseline(baseline: LpmBaseline) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lpm.json");
    let json = serde_json::to_string_pretty(&baseline).expect("serialize baseline");
    std::fs::write(path, json + "\n").expect("write BENCH_lpm.json");
    println!("baseline written to {path}");
}

criterion_group!(benches, bench_lpm);
criterion_main!(benches);
