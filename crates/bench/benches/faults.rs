//! Resilient-decoder throughput under injected corruption: how much does
//! resynchronization cost when 0% / 1% / 5% of input bytes carry bit
//! flips? Complements `codecs.rs`, which measures the clean fast path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use spoofwatch_bgp::{mrt, Announcement, AsPath, Update};
use spoofwatch_ixp::ipfix;
use spoofwatch_net::{Asn, FaultInjector, FlowRecord, Ipv4Prefix, Proto};
use spoofwatch_packet::{pcap, PcapPacket, PcapWriter};
use std::hint::black_box;

/// Flows that satisfy the IPFIX-lite plausibility invariant
/// (`bytes == packets * pkt_size`), so resync can realign on them.
fn plausible_flows(n: usize) -> Vec<FlowRecord> {
    let mut rng = StdRng::seed_from_u64(9);
    (0..n)
        .map(|_| {
            let packets: u32 = rng.random_range(1..100);
            let pkt_size: u16 = rng.random_range(40..1500);
            FlowRecord {
                ts: rng.random(),
                src: rng.random(),
                dst: rng.random(),
                proto: Proto::from_number(rng.random_range(0..20)),
                sport: rng.random(),
                dport: rng.random(),
                packets,
                bytes: packets as u64 * pkt_size as u64,
                pkt_size,
                member: Asn(rng.random_range(1..60_000)),
                ttl: 0,
            }
        })
        .collect()
}

fn sample_updates(n: usize) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|_| {
            let prefix = Ipv4Prefix::new_truncating(rng.random(), rng.random_range(8..=24));
            if rng.random_bool(0.8) {
                let hops: Vec<u32> = (0..rng.random_range(1..6))
                    .map(|_| rng.random_range(1..60_000))
                    .collect();
                Update::Announce {
                    ts: rng.random(),
                    peer: Asn(rng.random_range(1..1000)),
                    announcement: Announcement::new(prefix, AsPath::from(hops)),
                }
            } else {
                Update::Withdraw {
                    ts: rng.random(),
                    peer: Asn(rng.random_range(1..1000)),
                    prefix,
                }
            }
        })
        .collect()
}

fn sample_capture(n: usize) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).expect("vec write");
    for i in 0..n as u32 {
        let body: Vec<u8> = (0..60 + (i % 600) as usize)
            .map(|j| (0x20 + ((i as usize + j) % 90)) as u8)
            .collect();
        w.write_packet(&PcapPacket::full(i, 0, body)).expect("vec write");
    }
    w.finish().expect("vec write")
}

/// Corrupt `percent`% of bytes (one flipped bit each) past the header.
fn corrupted(clean: &[u8], percent: f64, protect: usize, seed: u64) -> Vec<u8> {
    let mut dirty = clean.to_vec();
    let mut inj = FaultInjector::new(seed).protect_prefix(protect);
    inj.corrupt_percent(&mut dirty, percent);
    dirty
}

fn bench_faults(c: &mut Criterion) {
    let encoded_flows = ipfix::encode(&plausible_flows(50_000));
    let encoded_updates = mrt::encode(&sample_updates(20_000));
    let capture = sample_capture(5_000);

    let mut group = c.benchmark_group("faults");
    for percent in [0.0, 1.0, 5.0] {
        let tag = percent as u32;

        let dirty = corrupted(&encoded_flows, percent, 6, 21);
        group.throughput(Throughput::Bytes(dirty.len() as u64));
        group.bench_function(format!("ipfix_resilient_50k_{tag}pct"), |b| {
            b.iter(|| black_box(ipfix::decode_resilient(black_box(&dirty))))
        });

        let dirty = corrupted(&encoded_updates, percent, 6, 22);
        group.throughput(Throughput::Bytes(dirty.len() as u64));
        group.bench_function(format!("mrt_resilient_20k_{tag}pct"), |b| {
            b.iter(|| black_box(mrt::decode_resilient(black_box(&dirty))))
        });

        let dirty = corrupted(&capture, percent, 24, 23);
        group.throughput(Throughput::Bytes(dirty.len() as u64));
        group.bench_function(format!("pcap_resilient_5k_{tag}pct"), |b| {
            b.iter(|| black_box(pcap::decode_resilient(black_box(&dirty))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
