//! Streaming-runner overhead: chunked decode + supervised classification
//! vs. the batch pipeline, plus the cost of checkpointing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spoofwatch_core::{CheckpointStore, Classifier, RunnerConfig, ShedPolicy, StudyRunner};
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_ixp::chunked::ChunkedIpfixReader;
use spoofwatch_ixp::{ipfix, Trace, TrafficConfig};
use spoofwatch_net::{InferenceMethod, OrgMode};
use std::hint::black_box;

fn bench_runner(c: &mut Criterion) {
    let net = Internet::generate(InternetConfig {
        seed: 9,
        num_ases: 700,
        num_ixp_members: 200,
        ..InternetConfig::default()
    });
    let trace = Trace::generate(
        &net,
        &TrafficConfig {
            seed: 9,
            regular_flows: 100_000,
            ..TrafficConfig::default()
        },
    );
    let bytes = ipfix::encode(&trace.flows);
    let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
    let scratch = std::env::temp_dir().join(format!("spoofwatch-bench-runner-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut group = c.benchmark_group("runner");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.flows.len() as u64));

    group.bench_function("batch_classify_trace", |b| {
        b.iter(|| {
            black_box(classifier.classify_trace(
                black_box(&trace.flows),
                InferenceMethod::FullCone,
                OrgMode::OrgAdjusted,
            ))
        })
    });

    let mut idx = 0u64;
    for (label, checkpoint_every, shed) in [
        ("streaming_checkpointed", 64u64, ShedPolicy::Block),
        ("streaming_checkpoint_heavy", 4, ShedPolicy::Block),
        ("streaming_sampling", 64, ShedPolicy::Sample { keep_one_in: 2 }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                idx += 1;
                let dir = scratch.join(format!("{label}-{idx}"));
                let store = CheckpointStore::open(&dir).expect("open store");
                let cfg = RunnerConfig {
                    checkpoint_every,
                    shed,
                    stall_timeout_ms: 0,
                    ..RunnerConfig::default()
                };
                let mut source = ChunkedIpfixReader::new(&bytes, 2_000);
                let report = StudyRunner::new(&classifier, cfg)
                    .run(&mut source, &store)
                    .expect("streaming run");
                let _ = std::fs::remove_dir_all(&dir);
                black_box(report)
            })
        });
    }

    group.finish();
    let _ = std::fs::remove_dir_all(&scratch);
}

criterion_group!(benches, bench_runner);
criterion_main!(benches);
