//! Experiment binary: see `spoofwatch_bench::experiments::fig7`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig7(&scenario);
    spoofwatch_bench::report("fig7", &comparisons);
}
