//! Experiment binary: see `spoofwatch_bench::experiments::survey`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::survey(&scenario);
    spoofwatch_bench::report("survey", &comparisons);
}
