//! Experiment binary: see `spoofwatch_bench::experiments::fig6`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig6(&scenario);
    spoofwatch_bench::report("fig6", &comparisons);
}
