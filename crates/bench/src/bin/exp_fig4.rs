//! Experiment binary: see `spoofwatch_bench::experiments::fig4`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig4(&scenario);
    spoofwatch_bench::report("fig4", &comparisons);
}
