//! Experiment binary: see `spoofwatch_bench::experiments::fig9`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig9(&scenario);
    spoofwatch_bench::report("fig9", &comparisons);
}
