//! Experiment binary: see `spoofwatch_bench::experiments::ablation`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::ablation(&scenario);
    spoofwatch_bench::report("ablation", &comparisons);
}
