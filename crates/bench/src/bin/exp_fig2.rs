//! Experiment binary: see `spoofwatch_bench::experiments::fig2`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig2(&scenario);
    spoofwatch_bench::report("fig2", &comparisons);
}
