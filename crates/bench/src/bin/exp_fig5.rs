//! Experiment binary: see `spoofwatch_bench::experiments::fig5`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig5(&scenario);
    spoofwatch_bench::report("fig5", &comparisons);
}
