//! Experiment binary: see `spoofwatch_bench::experiments::fig11`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig11(&scenario);
    spoofwatch_bench::report("fig11", &comparisons);
}
