//! Run every experiment over one shared scenario and print the combined
//! paper-vs-measured record (the source of EXPERIMENTS.md).
use spoofwatch_bench::{experiments, report, Comparison, Scenario};

type Experiment = fn(&Scenario) -> Vec<Comparison>;

fn main() {
    let s = Scenario::from_env();
    let mut all = Vec::new();
    let runs: Vec<(&str, Experiment)> = vec![
        ("fig1a", experiments::fig1a),
        ("fig2", experiments::fig2),
        ("table1", experiments::table1),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9", experiments::fig9),
        ("fig10", experiments::fig10),
        ("fig11", experiments::fig11),
        ("fphunt", experiments::fphunt),
        ("spoofer", experiments::spoofer),
        ("survey", experiments::survey),
        ("evaluation", experiments::evaluation),
        ("ablation", experiments::ablation),
    ];
    for (name, f) in runs {
        println!("\n================ {name} ================");
        let comparisons = f(&s);
        report(name, &comparisons);
        all.extend(comparisons);
    }
    println!("\n================ summary ================");
    report("all", &all);
    let holds = all.iter().filter(|c| c.shape_holds).count();
    println!("shape holds for {holds}/{} comparisons", all.len());
}
