//! Experiment binary: see `spoofwatch_bench::experiments::table1`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::table1(&scenario);
    spoofwatch_bench::report("table1", &comparisons);
}
