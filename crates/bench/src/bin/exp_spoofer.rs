//! Experiment binary: see `spoofwatch_bench::experiments::spoofer`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::spoofer(&scenario);
    spoofwatch_bench::report("spoofer", &comparisons);
}
