//! Experiment binary: see `spoofwatch_bench::experiments::fig1a`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig1a(&scenario);
    spoofwatch_bench::report("fig1a", &comparisons);
}
