//! Experiment binary: see `spoofwatch_bench::experiments::fphunt`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fphunt(&scenario);
    spoofwatch_bench::report("fphunt", &comparisons);
}
