//! Experiment binary: see `spoofwatch_bench::experiments::fig10`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig10(&scenario);
    spoofwatch_bench::report("fig10", &comparisons);
}
