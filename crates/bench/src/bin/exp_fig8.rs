//! Experiment binary: see `spoofwatch_bench::experiments::fig8`.
fn main() {
    let scenario = spoofwatch_bench::Scenario::from_env();
    let comparisons = spoofwatch_bench::experiments::fig8(&scenario);
    spoofwatch_bench::report("fig8", &comparisons);
}
