//! One function per paper table/figure; the `exp-*` binaries are thin
//! wrappers and `repro-all` chains everything.

use crate::{Comparison, Scenario};
use spoofwatch_analysis as analysis;
use spoofwatch_core::fphunt::{hunt, HuntConfig};
use spoofwatch_core::stray::StrayReport;
use spoofwatch_core::{MemberBreakdown, Table1};
use spoofwatch_internet::traceroute;
use spoofwatch_net::flow::ports;
use spoofwatch_net::{OrgMode, TrafficClass};
use spoofwatch_spoofer::{crosscheck, SpooferCampaign};
use std::collections::HashSet;

fn pct(x: f64) -> String {
    analysis::render::pct(x)
}

/// Figure 1a: IPv4 address-space category shares.
pub fn fig1a(s: &Scenario) -> Vec<Comparison> {
    let mut routed = spoofwatch_trie::PrefixSet::new();
    for a in s.net.topology.ases() {
        for p in &a.prefixes {
            routed.insert(*p);
        }
    }
    let sum = spoofwatch_internet::addressing::summarize(&routed);
    println!(
        "Figure 1a — bogon {:.1}% / routed {:.1}% / unrouted {:.1}% (routed {:.2}M /24s)",
        100.0 * sum.bogon_frac,
        100.0 * sum.routed_frac,
        100.0 * sum.unrouted_frac,
        sum.routed_slash24 / 1e6,
    );
    vec![
        Comparison::new("F1a", "bogon share", "13.8%", pct(100.0 * sum.bogon_frac),
            (sum.bogon_frac - 0.138).abs() < 0.01),
        Comparison::new("F1a", "routed share", "68.1%", pct(100.0 * sum.routed_frac),
            (sum.routed_frac - 0.681).abs() < 0.05),
        Comparison::new("F1a", "unrouted share", "18.1%", pct(100.0 * sum.unrouted_frac),
            (sum.unrouted_frac - 0.181).abs() < 0.05),
    ]
}

/// Figure 2: per-AS valid space under the five variants.
pub fn fig2(s: &Scenario) -> Vec<Comparison> {
    let fig = analysis::fig2::Fig2::compute(&s.classifier);
    println!("{}", fig.render());
    let full_org = fig.curve("Full Cone (multi-AS orgs)");
    let naive = fig.curve("Naive");
    let n = full_org.sizes.len();
    let covering = full_org.ases_covering(fig.routed_slash24, 0.999);
    // Paper shape: Full ≥ CC and Full ≥ Naive at every quantile; a
    // sizeable fraction of ASes is valid for (almost) everything under
    // the Full Cone; curves agree on the small stubs.
    // Naive ⊆ FULL is structural (an on-path AS reaches the origin in
    // the path graph); CC ⊆ FULL held empirically in the paper but the
    // *inferred* customer cone can occasionally exceed the observed path
    // graph, so a small violation quota is allowed.
    let naive_dominated = (0..=20).all(|i| {
        let q = i as f64 / 20.0;
        full_org.quantile(q) >= naive.quantile(q) - 1e-9
    });
    // AS-level CC ⊆ FULL: held exactly in the paper's data; with an
    // *inferred* customer cone a small violation share is expected.
    let full_cones = s.classifier
        .cones(spoofwatch_net::InferenceMethod::FullCone, OrgMode::OrgAdjusted)
        .expect("precomputed");
    let cc_cones = s.classifier
        .cones(spoofwatch_net::InferenceMethod::CustomerCone, OrgMode::OrgAdjusted)
        .expect("precomputed");
    let ases: Vec<_> = s.classifier.table().ases().collect();
    let contained = ases
        .iter()
        .filter(|a| cc_cones.valid_units(**a) <= full_cones.valid_units(**a))
        .count();
    let cc_containment = contained as f64 / ases.len().max(1) as f64;
    println!("CC ⊆ FULL holds for {:.1}% of ASes", 100.0 * cc_containment);
    let dominance = naive_dominated && cc_containment > 0.7;
    let stub_agree = (naive.quantile(0.02) - full_org.quantile(0.02)).abs()
        <= naive.quantile(0.02).max(1.0);
    vec![
        Comparison::new("F2", "FULL dominates CC and Naive at all quantiles", "containment holds",
            format!("{dominance}"), dominance),
        Comparison::new("F2", "ASes valid for entire routed space (FULL+orgs)",
            "~5K of 57K (8.8%)",
            format!("{covering} of {n} ({:.1}%)", 100.0 * covering as f64 / n as f64),
            covering > 0),
        Comparison::new("F2", "approaches agree on smallest stubs", "≈12K smallest agree",
            format!("{stub_agree}"), stub_agree),
    ]
}

/// Table 1 plus the §4.3 multi-AS-org impact numbers.
pub fn table1(s: &Scenario) -> Vec<Comparison> {
    let t = Table1::compute(&s.classifier, &s.trace.flows);
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{} ({})", r.members, pct(r.members_pct)),
                format!("{} ({})", analysis::render::si(r.bytes as f64), pct(r.bytes_pct)),
                format!("{} ({})", analysis::render::si(r.packets as f64), pct(r.packets_pct)),
            ]
        })
        .collect();
    println!(
        "Table 1 — contributions per class ({} members, {} sampled pkts)\n{}",
        t.total_members,
        t.total_packets,
        analysis::render::table(&["class", "members", "bytes", "packets"], &rows)
    );

    // §4.3: impact of the org adjustment on Invalid FULL and Invalid CC.
    let plain = Table1::compute_with_org(&s.classifier, &s.trace.flows, OrgMode::Plain);
    let red = |label: &str| {
        let before = plain.row(label).expect("row").bytes as f64;
        let after = t.row(label).expect("row").bytes as f64;
        if before == 0.0 {
            0.0
        } else {
            100.0 * (1.0 - after / before)
        }
    };
    let full_red = red("Invalid FULL");
    let cc_red = red("Invalid CC");
    println!(
        "§4.3 org adjustment removes {:.1}% of Invalid FULL bytes, {:.1}% of Invalid CC bytes",
        full_red, cc_red
    );

    let row = |label: &str| t.row(label).expect("row");
    vec![
        Comparison::new("T1", "Bogon members", "525 (72.0%)",
            format!("{} ({})", row("Bogon").members, pct(row("Bogon").members_pct)),
            row("Bogon").members_pct > 50.0),
        Comparison::new("T1", "Unrouted members", "378 (52.0%)",
            format!("{} ({})", row("Unrouted").members, pct(row("Unrouted").members_pct)),
            (30.0..75.0).contains(&row("Unrouted").members_pct)),
        Comparison::new("T1", "Invalid FULL members", "393 (54.1%)",
            format!("{} ({})", row("Invalid FULL").members, pct(row("Invalid FULL").members_pct)),
            (30.0..80.0).contains(&row("Invalid FULL").members_pct)),
        Comparison::new("T1", "Invalid NAIVE members", "611 (84.0%)",
            format!("{} ({})", row("Invalid NAIVE").members, pct(row("Invalid NAIVE").members_pct)),
            row("Invalid NAIVE").members_pct >= row("Invalid FULL").members_pct),
        Comparison::new("T1", "Bogon traffic share (pkts)", "0.02%",
            pct(row("Bogon").packets_pct), row("Bogon").packets_pct < 1.0),
        Comparison::new("T1", "Invalid FULL < Invalid NAIVE (pkts)", "0.03% < 1.29%",
            format!("{} < {}", pct(row("Invalid FULL").packets_pct), pct(row("Invalid NAIVE").packets_pct)),
            row("Invalid FULL").packets <= row("Invalid NAIVE").packets),
        Comparison::new("T1", "Invalid FULL < Invalid CC (pkts)", "0.03% < 0.3%",
            format!("{} < {}", pct(row("Invalid FULL").packets_pct), pct(row("Invalid CC").packets_pct)),
            row("Invalid FULL").packets <= row("Invalid CC").packets),
        Comparison::new("S43", "org adjustment reduces Invalid FULL bytes", "~15%",
            pct(full_red), full_red >= 0.0),
        Comparison::new("S43", "org adjustment reduces Invalid CC bytes", "~85%",
            pct(cc_red), cc_red >= full_red),
    ]
}

/// Figure 4: per-member class-share CCDFs.
pub fn fig4(s: &Scenario) -> Vec<Comparison> {
    let breakdown = MemberBreakdown::from_classes(&s.trace.flows, &s.classes);
    let fig = analysis::ccdf::Fig4::compute(&breakdown);
    println!("{}", fig.render());
    let bogon_max = fig.curve(TrafficClass::Bogon).max_share();
    let unrouted_max = fig.curve(TrafficClass::Unrouted).max_share();
    let invalid_max = fig.curve(TrafficClass::Invalid).max_share();
    vec![
        Comparison::new("F4", "max Bogon share of any member", "~10%",
            pct(100.0 * bogon_max), bogon_max < 0.5),
        Comparison::new("F4", "max Unrouted share of any member", "~9%",
            pct(100.0 * unrouted_max), unrouted_max < 0.5),
        Comparison::new("F4", "members with ~100% Invalid exist", "yes",
            pct(100.0 * invalid_max), invalid_max > 0.9),
    ]
}

/// Figure 5: member participation Venn.
pub fn fig5(s: &Scenario) -> Vec<Comparison> {
    let breakdown = MemberBreakdown::from_classes(&s.trace.flows, &s.classes);
    let fig = analysis::venn::Fig5::compute(&breakdown, &HashSet::new());
    println!("{}", fig.render());
    vec![
        Comparison::new("F5", "clean members", "18.02%", pct(fig.clean),
            (5.0..40.0).contains(&fig.clean)),
        Comparison::new("F5", "members in all three classes", "28.06%", pct(fig.all_three),
            (10.0..50.0).contains(&fig.all_three)),
        Comparison::new("F5", "Bogon-only members", "9.63%", pct(fig.bogon_only),
            (2.0..25.0).contains(&fig.bogon_only)),
        Comparison::new("F5", "Invalid-only members", "7.57%", pct(fig.invalid_only),
            fig.invalid_only < 25.0),
        Comparison::new("F5", "Unrouted members also in Bogon/Invalid", "96%",
            pct(fig.unrouted_also_other()), fig.unrouted_also_other() > 80.0),
    ]
}

/// Figure 6: volume vs class share by business type.
pub fn fig6(s: &Scenario) -> Vec<Comparison> {
    let breakdown = MemberBreakdown::from_classes(&s.trace.flows, &s.classes);
    let fig = analysis::scatter::Fig6::compute(&breakdown, &s.net);
    println!("{}", fig.render());
    use spoofwatch_internet::BusinessType;
    let sig = fig.significant_by_business(TrafficClass::Bogon);
    let count = |b: BusinessType| sig.iter().find(|(x, _)| *x == b).map_or(0, |(_, n)| *n);
    let hosting_isp = count(BusinessType::Hosting) + count(BusinessType::Isp);
    let content = count(BusinessType::Content);
    println!("significant (>1%) Bogon contributors by type: {sig:?}");
    vec![
        Comparison::new("F6", "hosting+ISP dominate significant Bogon shares",
            "predominantly hosting/ISP/transit",
            format!("hosting+ISP {hosting_isp} vs content {content}"),
            hosting_isp >= content),
        Comparison::new("F6", "large content providers contribute no Bogon",
            "most contribute none",
            format!("{content} content members > 1% Bogon"), content <= 2),
    ]
}

/// Figure 7 and the §5.2 stray analysis.
pub fn fig7(s: &Scenario) -> Vec<Comparison> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    let traces = traceroute::campaign(&s.net, &mut rng, 100_000);
    let router_ips = traceroute::harvest_router_ips(&traces);
    println!("traceroute campaign: {} traces, {} router IPs", traces.len(), router_ips.len());
    let report = StrayReport::analyze(&s.trace.flows, &s.classes, &router_ips);
    let rows: Vec<Vec<String>> = report
        .per_member
        .iter()
        .filter(|(_, v)| v.router_packets > 0)
        .map(|(m, v)| {
            vec![
                m.to_string(),
                v.invalid_packets.to_string(),
                v.router_packets.to_string(),
                format!("{:.2}", v.router_fraction()),
            ]
        })
        .collect();
    println!(
        "Figure 7 — Invalid vs router-sourced packets per member\n{}",
        analysis::render::table(&["member", "invalid", "router", "frac"], &rows)
    );
    let dominated = report.stray_dominated(0.5);
    let with_invalid = report.per_member.len();
    let before_pct = 100.0 * with_invalid as f64 / s.net.ixp_members.len() as f64;
    let after_pct =
        100.0 * (with_invalid - dominated.len()) as f64 / s.net.ixp_members.len() as f64;
    println!(
        "§5.2: members with Invalid {before_pct:.2}% → {after_pct:.2}% after dropping {} stray-dominated; \
         router proto mix ICMP/UDP/TCP = {:.1}/{:.1}/{:.1}%, router-UDP→NTP {:.1}%",
        dominated.len(),
        100.0 * report.proto_shares.0,
        100.0 * report.proto_shares.1,
        100.0 * report.proto_shares.2,
        100.0 * report.udp_ntp_fraction,
    );
    vec![
        Comparison::new("F7", "some members' Invalid is router-dominated", "diagonal in Fig 7",
            format!("{} members ≥50% router-sourced", dominated.len()), !dominated.is_empty()),
        Comparison::new("S52", "router traffic is mostly ICMP", "83%",
            pct(100.0 * report.proto_shares.0), report.proto_shares.0 > 0.6),
        Comparison::new("S52", "router-UDP directed at NTP", "76.3%",
            pct(100.0 * report.udp_ntp_fraction), report.udp_ntp_fraction > 0.5),
        Comparison::new("S52", "overall router share of Invalid", "<1%",
            pct(100.0 * report.overall_router_fraction), report.overall_router_fraction < 0.2),
        Comparison::new("S52", "member filter reduces Invalid contributors", "57.68% → 39.59%",
            format!("{before_pct:.2}% → {after_pct:.2}%"), after_pct < before_pct),
    ]
}

/// Figures 8a and 8b.
pub fn fig8(s: &Scenario) -> Vec<Comparison> {
    let fig_a = analysis::sizes::Fig8a::compute(&s.trace.flows, &s.classes);
    println!("{}", fig_a.render());
    let fig_b = analysis::timeseries::Fig8b::compute(&s.trace.flows, &s.classes, s.trace.duration);
    println!("{}", fig_b.week(0).render());
    let small = |c: TrafficClass| fig_a.fraction_le(c, 60);
    let mut out = vec![
        Comparison::new("F8a", "Bogon packets ≤ 60B", ">80%", pct(100.0 * small(TrafficClass::Bogon)),
            small(TrafficClass::Bogon) > 0.8),
        Comparison::new("F8a", "Unrouted packets ≤ 60B", ">80%", pct(100.0 * small(TrafficClass::Unrouted)),
            small(TrafficClass::Unrouted) > 0.8),
        Comparison::new("F8a", "Invalid packets ≤ 60B", ">80%", pct(100.0 * small(TrafficClass::Invalid)),
            small(TrafficClass::Invalid) > 0.3),
        Comparison::new("F8a", "regular traffic is bimodal (not tiny)", "bimodal",
            pct(100.0 * small(TrafficClass::Valid)), small(TrafficClass::Valid) < 0.8),
    ];
    let b_valid = fig_b.burstiness(TrafficClass::Valid);
    let b_unrouted = fig_b.burstiness(TrafficClass::Unrouted);
    let b_invalid = fig_b.burstiness(TrafficClass::Invalid);
    out.push(Comparison::new("F8b", "attack classes burstier than regular",
        "spiky vs diurnal",
        format!("CoV valid {b_valid:.2} vs unrouted {b_unrouted:.2} / invalid {b_invalid:.2}"),
        b_unrouted > b_valid && b_invalid > b_valid));
    out
}

/// Figure 9: application mix.
pub fn fig9(s: &Scenario) -> Vec<Comparison> {
    use analysis::portmix::{Fig9, Panel};
    let fig = Fig9::compute(&s.trace.flows, &s.classes);
    println!("{}", fig.render());
    let inv_udp_dst = fig.cell(Panel::UdpDst, TrafficClass::Invalid);
    let unrouted_tcp = fig.cell(Panel::TcpDst, TrafficClass::Unrouted);
    let http_share = unrouted_tcp.port(ports::HTTP) + unrouted_tcp.port(ports::HTTPS);
    let unrouted_udp = fig.cell(Panel::UdpDst, TrafficClass::Unrouted);
    let regular_udp = fig.cell(Panel::UdpDst, TrafficClass::Valid);
    vec![
        Comparison::new("F9", "Invalid UDP DST port 123 share", ">90%",
            pct(100.0 * inv_udp_dst.port(ports::NTP)), inv_udp_dst.port(ports::NTP) > 0.9),
        Comparison::new("F9", "Unrouted TCP DST is HTTP(S)-directed", "majority 80/443",
            pct(100.0 * http_share), http_share > 0.5),
        Comparison::new("F9", "port 27015 visible in Unrouted UDP DST", "stands out",
            pct(100.0 * unrouted_udp.port(ports::STEAM)), unrouted_udp.port(ports::STEAM) > 0.05),
        Comparison::new("F9", "regular UDP ports mostly ephemeral", "random (BitTorrent)",
            pct(100.0 * regular_udp.other()), regular_udp.other() > 0.8),
    ]
}

/// Figure 10: address structure.
pub fn fig10(s: &Scenario) -> Vec<Comparison> {
    use analysis::addrstruct::{ClassAddrHist, Fig10};
    let fig = Fig10::compute(&s.trace.flows, &s.classes);
    println!("{}", fig.render());
    let unrouted = fig.class(TrafficClass::Unrouted);
    let bogon = fig.class(TrafficClass::Bogon);
    let invalid = fig.class(TrafficClass::Invalid);
    vec![
        Comparison::new("F10", "Unrouted sources spread widely", "mostly uniform",
            format!("{} /8 bins occupied", ClassAddrHist::occupied_bins(&unrouted.src)),
            ClassAddrHist::occupied_bins(&unrouted.src) > 100),
        {
            // The paper's concentration claim is about single victim
            // *addresses*, not /8 blocks: compute top-address shares.
            let mut dst_pkts: std::collections::HashMap<u32, u64> = Default::default();
            let mut src_pkts: std::collections::HashMap<u32, u64> = Default::default();
            let mut total = 0u64;
            for (f, c) in s.trace.flows.iter().zip(&s.classes) {
                if *c == TrafficClass::Unrouted {
                    *dst_pkts.entry(f.dst).or_default() += f.packets as u64;
                    *src_pkts.entry(f.src).or_default() += f.packets as u64;
                    total += f.packets as u64;
                }
            }
            let top = |m: &std::collections::HashMap<u32, u64>| {
                m.values().copied().max().unwrap_or(0) as f64 / total.max(1) as f64
            };
            let (dst_top, src_top) = (top(&dst_pkts), top(&src_pkts));
            Comparison::new("F10", "Unrouted destinations concentrate on single addresses",
                "top 5 dsts get 2.3G extrapolated pkts; srcs random",
                format!("top dst address {:.0}% of class vs top src {:.2}%",
                    100.0 * dst_top, 100.0 * src_top),
                dst_top > 0.1 && dst_top > 10.0 * src_top)
        },
        Comparison::new("F10", "Bogon sources concentrate in private ranges", "spikes at 10/8, 192/8",
            format!("10/8 + 192/8 = {:.0}% of Bogon srcs",
                100.0 * (bogon.src[10] + bogon.src[192]) as f64
                    / bogon.src.iter().sum::<u64>().max(1) as f64),
            bogon.src[10] + bogon.src[192]
                > bogon.src.iter().sum::<u64>() / 2),
        Comparison::new("F10", "Invalid sources peak at few /8s", "spikes (victims)",
            format!("peak bin {:.0}%", 100.0 * ClassAddrHist::peak_fraction(&invalid.src)),
            ClassAddrHist::peak_fraction(&invalid.src) > 0.1),
    ]
}

/// Figure 11 and the §7 attack-pattern numbers.
pub fn fig11(s: &Scenario) -> Vec<Comparison> {
    use analysis::attack::{zmap_scan, Fig11a, Fig11c, NtpAnalysis};
    let fig_a = Fig11a::compute(&s.trace.flows, &s.classes, 50);
    println!("{}", fig_a.render());
    let ntp = NtpAnalysis::compute(&s.trace.flows, &s.classes, 10);
    println!("{}", ntp.render());
    let fig_c = Fig11c::compute(&s.trace.flows, &s.classes, s.trace.duration);
    println!("{}", fig_c.render());

    // §7: overlap of contacted amplifiers with ZMap-style scans.
    let contacted: HashSet<u32> = s
        .trace
        .flows
        .iter()
        .zip(&s.classes)
        .filter(|(f, c)| {
            **c == TrafficClass::Invalid
                && f.proto == spoofwatch_net::Proto::Udp
                && f.dport == ports::NTP
        })
        .map(|(f, _)| f.dst)
        .collect();
    let scan_now = zmap_scan(&s.net, 99, 0.6);
    let scan_old = zmap_scan(&s.net, 55, 0.35);
    let overlap_now = contacted.intersection(&scan_now).count();
    let overlap_old = contacted.intersection(&scan_old).count();
    println!(
        "§7 ZMap overlap: contacted {} amplifiers; current scan hits {overlap_now}, older scan {overlap_old}",
        contacted.len()
    );

    vec![
        Comparison::new("F11a", "Unrouted dsts with all-unique sources", "~90%",
            pct(100.0 * fig_a.unique_source_fraction(TrafficClass::Unrouted)),
            fig_a.unique_source_fraction(TrafficClass::Unrouted) > 0.6),
        Comparison::new("F11a", "Invalid dsts dominated by few sources", "majority leftmost bins",
            pct(100.0 * fig_a.few_source_fraction(TrafficClass::Invalid)),
            fig_a.few_source_fraction(TrafficClass::Invalid)
                > fig_a.unique_source_fraction(TrafficClass::Invalid)),
        Comparison::new("F11b", "amplifier strategies differ across victims",
            "90 hammered vs 13,377 sprayed",
            format!("victim amp counts: {:?}",
                ntp.victims.iter().map(|v| v.amplifiers.len()).collect::<Vec<_>>()),
            ntp.victims.len() >= 2
                && ntp.victims.iter().map(|v| v.amplifiers.len()).max().unwrap_or(0)
                    >= 5 * ntp.victims.iter().map(|v| v.amplifiers.len()).min().unwrap_or(1)),
        Comparison::new("S7", "top member's share of Invalid NTP", "91.94%",
            pct(100.0 * ntp.top_member_share), ntp.top_member_share > 0.5),
        Comparison::new("S7", "top-5 members' share", "97.86%",
            pct(100.0 * ntp.top5_member_share), ntp.top5_member_share > ntp.top_member_share),
        Comparison::new("F11c", "responses amplify trigger bytes", "~10x",
            format!("{:.1}x over {} matched pairs", fig_c.amplification, fig_c.matched_pairs),
            fig_c.amplification > 3.0 && fig_c.matched_pairs > 0),
        Comparison::new("S7", "scan overlap is partial", "3,865 of 24,328",
            format!("{overlap_now} of {}", contacted.len()),
            overlap_now > 0 && overlap_now < contacted.len()),
    ]
}

/// §4.4: the false-positive hunt.
pub fn fphunt(s: &Scenario) -> Vec<Comparison> {
    let (findings, corrected) = hunt(
        &s.classifier,
        &s.trace.flows,
        &s.classes,
        &s.net.whois,
        &s.net.looking_glass_links,
        &HuntConfig::default(),
    );
    println!(
        "§4.4 hunt: {} org links (WHOIS), {} ACL links, {} looking-glass links, {} route objects, {} tunnels",
        findings.whois_org_links.len(),
        findings.acl_links.len(),
        findings.looking_glass_links.len(),
        findings.route_object_exceptions.len(),
        findings.tunnel_suspects.len(),
    );
    println!(
        "Invalid bytes {} → {} (-{:.1}%), packets {} → {} (-{:.1}%)",
        findings.before.0,
        findings.after.0,
        100.0 * findings.bytes_reduction(),
        findings.before.1,
        findings.after.1,
        100.0 * findings.packets_reduction(),
    );
    let residual_invalid = corrected
        .iter()
        .filter(|c| **c == TrafficClass::Invalid)
        .count();
    println!("residual Invalid flow records: {residual_invalid}");
    vec![
        Comparison::new("S44", "missing AS links found", "15 WHOIS + 1 looking glass",
            format!("{} ({} WHOIS/ACL + {} LG)", findings.num_links(),
                findings.whois_org_links.len() + findings.acl_links.len(),
                findings.looking_glass_links.len()),
            findings.num_links() > 0),
        Comparison::new("S44", "Invalid bytes removed by hunt", "59.9%",
            pct(100.0 * findings.bytes_reduction()),
            (0.2..0.95).contains(&findings.bytes_reduction())),
        Comparison::new("S44", "Invalid packets removed by hunt", "40%",
            pct(100.0 * findings.packets_reduction()),
            findings.packets_reduction() > 0.05
                && findings.packets_reduction() < findings.bytes_reduction() + 0.3),
        Comparison::new("S44", "bytes reduction exceeds packet reduction", "59.9% > 40%",
            format!("{} > {}", pct(100.0 * findings.bytes_reduction()),
                pct(100.0 * findings.packets_reduction())),
            findings.bytes_reduction() > findings.packets_reduction()),
    ]
}

/// §4.5: active/passive cross-check.
pub fn spoofer(s: &Scenario) -> Vec<Comparison> {
    let campaign = SpooferCampaign::run(&s.net, 77, s.net.topology.len() / 6, 0.45);
    let breakdown = MemberBreakdown::from_classes(&s.trace.flows, &s.classes);
    let with_traffic: HashSet<_> = breakdown.per_member.keys().copied().collect();
    let mut with_spoofed = breakdown.members_with(TrafficClass::Invalid);
    with_spoofed.extend(breakdown.members_with(TrafficClass::Unrouted));
    let cc = crosscheck(&campaign, &with_traffic, &with_spoofed);
    println!(
        "§4.5 cross-check: overlap {} ASes; passive detects {:.0}%, active {:.0}%; \
         active confirms {:.0}% of passive, passive confirms {:.0}% of active",
        cc.overlap,
        100.0 * cc.passive_detected_fraction,
        100.0 * cc.active_spoofable_fraction,
        100.0 * cc.active_confirms_passive,
        100.0 * cc.passive_confirms_active,
    );
    vec![
        Comparison::new("S45", "overlapping ASes", "97 (8% of members)",
            cc.overlap.to_string(), cc.overlap > 10),
        Comparison::new("S45", "passive detection among overlap", "74%",
            pct(100.0 * cc.passive_detected_fraction), cc.passive_detected_fraction > 0.3),
        Comparison::new("S45", "active spoofability among overlap", "30%",
            pct(100.0 * cc.active_spoofable_fraction),
            cc.active_spoofable_fraction < cc.passive_detected_fraction),
        Comparison::new("S45", "passive confirms active", "69%",
            pct(100.0 * cc.passive_confirms_active),
            cc.passive_confirms_active >= cc.active_confirms_passive),
    ]
}

/// §2.2 survey reference data plus a comparison against the generated
/// filtering-profile mix.
pub fn survey(s: &Scenario) -> Vec<Comparison> {
    println!("{}", analysis::survey::render());
    let total = s.net.topology.len() as f64;
    let no_egress = s
        .net
        .topology
        .ases()
        .filter(|a| !a.filtering.filters_bogon && !a.filtering.filters_unrouted
            && !a.filtering.filters_invalid)
        .count() as f64;
    let frac = no_egress / total;
    vec![Comparison::new("SV", "networks with no egress filtering at all",
        "24% (survey, biased toward filterers)",
        pct(100.0 * frac), (0.05..0.6).contains(&frac))]
}

/// Ground-truth evaluation (extension beyond the paper).
pub fn evaluation(s: &Scenario) -> Vec<Comparison> {
    let e = analysis::evaluate::Evaluation::compute(&s.trace.flows, &s.trace.labels, &s.classes);
    println!("{}", e.render());
    vec![
        Comparison::new("EXT", "spoofed-packet recall (ground truth)", "n/a (unknowable on real traces)",
            pct(100.0 * e.spoofed_recall), e.spoofed_recall > 0.8),
        Comparison::new("EXT", "clean-traffic FPR (ground truth)", "n/a",
            pct(100.0 * e.clean_fpr), e.clean_fpr < 0.05),
    ]
}

/// Ablation (extension): how data availability drives false positives —
/// collector visibility (the §4.4 root cause) and AS2Org dataset
/// coverage (the §4.3 lever). Uses its own reduced worlds so the sweep
/// stays fast.
pub fn ablation(_s: &Scenario) -> Vec<Comparison> {
    use spoofwatch_core::Classifier;
    use spoofwatch_internet::{Internet, InternetConfig};
    use spoofwatch_ixp::{Trace, TrafficConfig, TrafficLabel};
    use spoofwatch_net::InferenceMethod;

    let traffic = TrafficConfig {
        seed: 71,
        regular_flows: 60_000,
        ..TrafficConfig::default()
    };
    let base = InternetConfig {
        seed: 71,
        num_ases: 1000,
        num_ixp_members: 300,
        ..InternetConfig::default()
    };

    // --- Sweep 1: collector visibility vs regular-traffic FP rate. ------
    let mut fp_rates = Vec::new();
    for peers in [2usize, 20, 60] {
        let net = Internet::generate(InternetConfig {
            collector_peers_each: peers,
            ..base.clone()
        });
        let trace = Trace::generate(&net, &traffic);
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        let (mut fp, mut total) = (0u64, 0u64);
        for ((f, label), class) in trace.iter().zip(&classes) {
            if label == TrafficLabel::Regular {
                total += f.packets as u64;
                if class.is_illegitimate() {
                    fp += f.packets as u64;
                }
            }
        }
        let rate = fp as f64 / total.max(1) as f64;
        println!("visibility sweep: {peers:>2} peers/collector → regular FP rate {:.3}%", 100.0 * rate);
        fp_rates.push(rate);
    }

    // --- Sweep 2: AS2Org coverage vs org-adjustment impact. -------------
    let mut reductions = Vec::new();
    for coverage in [0.0f64, 0.7, 1.0] {
        let net = Internet::generate(InternetConfig {
            org_dataset_coverage: coverage,
            ..base.clone()
        });
        let trace = Trace::generate(&net, &traffic);
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let count = |org: OrgMode| -> u64 {
            classifier
                .classify_trace(&trace.flows, InferenceMethod::FullCone, org)
                .iter()
                .zip(&trace.flows)
                .filter(|(c, _)| **c == TrafficClass::Invalid)
                .map(|(_, f)| f.packets as u64)
                .sum()
        };
        let plain = count(OrgMode::Plain);
        let adjusted = count(OrgMode::OrgAdjusted);
        let red = if plain == 0 { 0.0 } else { 1.0 - adjusted as f64 / plain as f64 };
        println!("org-coverage sweep: coverage {coverage:.1} → adjustment removes {:.1}% of Invalid pkts", 100.0 * red);
        reductions.push(red);
    }

    vec![
        Comparison::new("ABL", "more collector visibility lowers regular FP rate",
            "n/a (extension; §4.4 attributes FPs to missing links)",
            format!("{:.3}% → {:.3}% → {:.3}%",
                100.0 * fp_rates[0], 100.0 * fp_rates[1], 100.0 * fp_rates[2]),
            fp_rates[0] >= fp_rates[2]),
        Comparison::new("ABL", "org dataset coverage drives adjustment impact",
            "n/a (extension; §4.3 lever)",
            format!("{:.1}% → {:.1}% → {:.1}%",
                100.0 * reductions[0], 100.0 * reductions[1], 100.0 * reductions[2]),
            reductions[0] <= reductions[2] + 1e-9),
    ]
}
