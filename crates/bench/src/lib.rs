//! # spoofwatch-bench
//!
//! The experiment harness: one `exp-*` binary per table/figure of the
//! paper (run `repro-all` for everything), plus Criterion performance
//! benches under `benches/`.
//!
//! Every experiment runs over the same deterministic [`Scenario`]: the
//! default synthetic Internet (~2000 ASes, 727 IXP members, 34
//! collectors and an IXP route server) and a 4-week sampled trace. Set
//! `SPOOFWATCH_QUICK=1` to run a reduced scenario, and `SPOOFWATCH_SEED=<n>`
//! to vary the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use spoofwatch_core::Classifier;
use spoofwatch_internet::{Internet, InternetConfig};
use spoofwatch_ixp::{Trace, TrafficConfig};
use spoofwatch_net::{InferenceMethod, OrgMode, TrafficClass};

/// A fully prepared experiment world.
pub struct Scenario {
    /// The synthetic Internet (topology, BGP observations, ground truth).
    pub net: Internet,
    /// The 4-week sampled trace with ground-truth labels.
    pub trace: Trace,
    /// The classifier built from the scenario's BGP data.
    pub classifier: Classifier,
    /// Production classification (Full Cone, org-adjusted) of the trace.
    pub classes: Vec<TrafficClass>,
}

impl Scenario {
    /// Build the scenario honoring `SPOOFWATCH_QUICK` / `SPOOFWATCH_SEED`.
    pub fn from_env() -> Scenario {
        let seed = std::env::var("SPOOFWATCH_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(7u64);
        if std::env::var("SPOOFWATCH_QUICK").is_ok_and(|v| v != "0") {
            Scenario::quick(seed)
        } else {
            Scenario::full(seed)
        }
    }

    /// The full default scenario (run with `--release`).
    pub fn full(seed: u64) -> Scenario {
        Self::build(
            InternetConfig {
                seed,
                ..InternetConfig::default()
            },
            TrafficConfig {
                seed: seed.wrapping_mul(31),
                ..TrafficConfig::default()
            },
        )
    }

    /// A small scenario for smoke tests and debug builds.
    pub fn quick(seed: u64) -> Scenario {
        Self::build(
            InternetConfig::tiny(seed),
            TrafficConfig::tiny(seed.wrapping_mul(31)),
        )
    }

    /// Build from explicit configs.
    pub fn build(net_cfg: InternetConfig, traffic_cfg: TrafficConfig) -> Scenario {
        let t0 = std::time::Instant::now();
        let net = Internet::generate(net_cfg);
        eprintln!(
            "[scenario] internet: {} ASes, {} members, {} announcements ({:.1?})",
            net.topology.len(),
            net.ixp_members.len(),
            net.announcements.len(),
            t0.elapsed()
        );
        let t1 = std::time::Instant::now();
        let trace = Trace::generate(&net, &traffic_cfg);
        eprintln!(
            "[scenario] trace: {} flow records over {} days ({:.1?})",
            trace.len(),
            trace.duration / 86_400,
            t1.elapsed()
        );
        let t2 = std::time::Instant::now();
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        eprintln!(
            "[scenario] classifier: {} routed prefixes, {} ASes ({:.1?})",
            classifier.table().num_prefixes(),
            classifier.table().num_ases(),
            t2.elapsed()
        );
        let t3 = std::time::Instant::now();
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        eprintln!("[scenario] classified ({:.1?})", t3.elapsed());
        Scenario {
            net,
            trace,
            classifier,
            classes,
        }
    }
}

/// One paper-vs-measured record for `EXPERIMENTS.md`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Comparison {
    /// Experiment id ("T1", "F2", …).
    pub experiment: String,
    /// The quantity compared.
    pub quantity: String,
    /// The paper's reported value (textual, as published).
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the *shape* holds (who wins / order of magnitude / trend).
    pub shape_holds: bool,
}

impl Comparison {
    /// Convenience constructor.
    pub fn new(
        experiment: &str,
        quantity: &str,
        paper: &str,
        measured: String,
        shape_holds: bool,
    ) -> Comparison {
        Comparison {
            experiment: experiment.to_owned(),
            quantity: quantity.to_owned(),
            paper: paper.to_owned(),
            measured,
            shape_holds,
        }
    }
}

/// Print comparisons as a table and append them to the JSON results file
/// (`target/experiments/<exp>.json`).
pub fn report(exp: &str, comparisons: &[Comparison]) {
    let rows: Vec<Vec<String>> = comparisons
        .iter()
        .map(|c| {
            vec![
                c.experiment.clone(),
                c.quantity.clone(),
                c.paper.clone(),
                c.measured.clone(),
                if c.shape_holds { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    println!(
        "\n{}",
        spoofwatch_analysis::render::table(
            &["exp", "quantity", "paper", "measured", "shape"],
            &rows
        )
    );
    if let Ok(dir) = std::env::var("SPOOFWATCH_RESULTS") {
        let _ = std::fs::create_dir_all(&dir);
        let path = format!("{dir}/{exp}.json");
        if let Ok(json) = serde_json::to_string_pretty(comparisons) {
            let _ = std::fs::write(path, json);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_builds() {
        let s = Scenario::quick(1);
        assert!(!s.trace.is_empty());
        assert_eq!(s.trace.flows.len(), s.classes.len());
        assert!(s.classifier.table().num_prefixes() > 0);
    }

    #[test]
    fn comparison_roundtrip() {
        let c = Comparison::new("T1", "bogon members", "72.0%", "70.1%".into(), true);
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("bogon members"));
    }
}
