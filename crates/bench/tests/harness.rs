//! The experiment harness itself is under test: every experiment function
//! must run on the quick scenario and report internally consistent
//! comparisons.

use spoofwatch_bench::{experiments, Scenario};

#[test]
fn all_experiments_run_on_quick_scenario() {
    let s = Scenario::quick(3);
    let runs: Vec<(&str, fn(&Scenario) -> Vec<spoofwatch_bench::Comparison>)> = vec![
        ("fig1a", experiments::fig1a),
        ("fig2", experiments::fig2),
        ("table1", experiments::table1),
        ("fig4", experiments::fig4),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9", experiments::fig9),
        ("fig10", experiments::fig10),
        ("fig11", experiments::fig11),
        ("fphunt", experiments::fphunt),
        ("spoofer", experiments::spoofer),
        ("survey", experiments::survey),
        ("evaluation", experiments::evaluation),
    ];
    for (name, f) in runs {
        let comparisons = f(&s);
        assert!(!comparisons.is_empty(), "{name} produced no comparisons");
        for c in &comparisons {
            assert!(!c.quantity.is_empty());
            assert!(!c.measured.is_empty(), "{name}: empty measurement");
        }
        // On the tiny scenario not every calibrated shape target holds —
        // that's what the full scenario asserts — but the structural
        // ones (method orderings, address-plan shares) must.
        if name == "fig1a" || name == "table1" {
            let structural = comparisons
                .iter()
                .filter(|c| c.quantity.contains('<') || c.quantity.contains("share"))
                .count();
            let holding = comparisons
                .iter()
                .filter(|c| (c.quantity.contains('<') || c.quantity.contains("share")) && c.shape_holds)
                .count();
            assert!(
                holding * 2 >= structural,
                "{name}: {holding}/{structural} structural checks hold"
            );
        }
    }
}
