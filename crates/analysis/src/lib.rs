//! # spoofwatch-analysis
//!
//! The paper's §5–§7 analyses over classified traffic, one module per
//! table/figure family, each producing a serializable result plus a
//! plain-text rendering used by the `exp-*` experiment binaries:
//!
//! * [`ccdf`] — Figure 4: per-member class-share CCDFs;
//! * [`venn`] — Figure 5: member participation across the three classes;
//! * [`scatter`] — Figure 6: member volume vs. class share by business
//!   type;
//! * [`sizes`] — Figure 8a: packet-size CDFs per class;
//! * [`timeseries`] — Figure 8b: hourly class volumes;
//! * [`incidents`] — incident timelines and forensic drill-downs over
//!   the online detectors' incident log;
//! * [`portmix`] — Figure 9: application mix per class and direction;
//! * [`addrstruct`] — Figure 10: /8 histograms of source/destination
//!   addresses per class;
//! * [`attack`] — Figure 11 and §7: selective-vs-random spoofing,
//!   amplifier rankings, trigger/response time series, ZMap-style
//!   overlap;
//! * [`fig2`] — Figure 2: per-AS valid address space under all five
//!   inference variants;
//! * [`evaluate`] — ground-truth scoring (possible only on synthetic
//!   traces; an extension over the paper);
//! * [`survey`] — the §2.2 operator-survey reference numbers;
//! * [`report`] — the consolidated study report over one classified
//!   trace;
//! * [`render`] — plain-text table/series helpers shared by the above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod addrstruct;
pub mod attack;
pub mod ccdf;
pub mod evaluate;
pub mod fig2;
pub mod incidents;
pub mod portmix;
pub mod render;
pub mod report;
pub mod scatter;
pub mod sizes;
pub mod survey;
pub mod timeseries;
pub mod venn;
