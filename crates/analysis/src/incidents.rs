//! Incident-timeline views over the online detectors' incident log —
//! the offline rendering counterpart of `spoofwatch_core::detect`.
//!
//! Consumes [`IncidentRecord`]s (from `read_incident_log` on a rollup
//! directory, or a `detect_over_windows` fold over ring windows) and
//! renders the incident timeline plus per-incident forensic drill-downs:
//! the triggering window snapshot, sketch entropies, TTL profile, the
//! per-class reservoir flow samples, and the window's
//! disagreement-matrix delta.

use spoofwatch_core::detect::SAMPLE_CAP;
use spoofwatch_core::{IncidentRecord, SampledFlow};
use spoofwatch_net::{fmt_addr, Proto, TrafficClass};

/// The incident timeline of one study run.
#[derive(Debug, Clone)]
pub struct IncidentTimeline {
    /// The records, in window order (detector order within a window).
    pub records: Vec<IncidentRecord>,
}

impl IncidentTimeline {
    /// Wrap an incident-log read (already sorted by window).
    pub fn new(records: Vec<IncidentRecord>) -> IncidentTimeline {
        IncidentTimeline { records }
    }

    /// Incident counts by kind label, in first-seen order.
    pub fn counts_by_kind(&self) -> Vec<(&'static str, usize)> {
        let mut out: Vec<(&'static str, usize)> = Vec::new();
        for r in &self.records {
            let label = r.incident.kind.label();
            match out.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => out.push((label, 1)),
            }
        }
        out
    }

    /// The timeline table: one row per incident.
    pub fn render_table(&self) -> String {
        if self.records.is_empty() {
            return String::from("no incidents\n");
        }
        let rows: Vec<Vec<String>> = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                vec![
                    i.to_string(),
                    r.incident.window_index.to_string(),
                    r.incident.kind.label().to_string(),
                    r.incident.summary(),
                ]
            })
            .collect();
        crate::render::table(&["#", "window", "kind", "summary"], &rows)
    }

    /// Full forensic drill-down of one incident: the verdict, the
    /// triggering window snapshot, sketch entropies, TTL profiles, the
    /// reservoir samples, and the disagreement delta.
    pub fn render_detail(&self, index: usize) -> Option<String> {
        let r = self.records.get(index)?;
        let p = &r.provenance;
        let mut out = format!(
            "incident #{index} (window {}): {}\n",
            r.incident.window_index,
            r.incident.summary()
        );
        out.push_str(&format!(
            "window: chunks [{}, {}), {} flows (",
            p.start_chunk,
            p.start_chunk + p.chunks,
            p.class_flows.iter().sum::<u64>(),
        ));
        for (i, class) in TrafficClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{class} {}", p.class_flows[i]));
        }
        out.push_str(")\n");
        out.push_str(&format!(
            "suspect-source entropy: per-bit {:.3}, /24 sketch {:.3}\n",
            p.bit_entropy_milli as f64 / 1000.0,
            p.slash24_entropy_milli as f64 / 1000.0,
        ));
        for (i, class) in TrafficClass::ALL.iter().enumerate() {
            if p.ttl_count[i] > 0 {
                out.push_str(&format!(
                    "TTL {class}: mean {:.1} over {} flows\n",
                    p.ttl_mean_milli[i] as f64 / 1000.0,
                    p.ttl_count[i],
                ));
            }
        }
        if p.samples.is_empty() {
            out.push_str("samples: none (detect payload absent for this window)\n");
        } else {
            out.push_str(&format!(
                "samples ({} of at most {} per class):\n",
                p.samples.len(),
                SAMPLE_CAP
            ));
            out.push_str(&render_samples(&p.samples));
        }
        match &p.matrix {
            None => out.push_str("disagreement delta: not tracked\n"),
            Some(m) => {
                let disagreements: u64 = m.pairs.iter().map(|p| p.disagreements()).sum();
                out.push_str(&format!(
                    "disagreement delta: {disagreements} pairwise disagreements this window\n"
                ));
            }
        }
        Some(out)
    }
}

/// The reservoir-sample table of one provenance bundle.
fn render_samples(samples: &[SampledFlow]) -> String {
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                TrafficClass::ALL
                    .get(s.class as usize)
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "?".into()),
                fmt_addr(s.src),
                fmt_addr(s.dst),
                s.member.to_string(),
                Proto::from_number(s.proto).to_string(),
                s.sport.to_string(),
                s.dport.to_string(),
                s.ttl.to_string(),
            ]
        })
        .collect();
    crate::render::table(
        &["class", "src", "dst", "member", "proto", "sport", "dport", "ttl"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_core::detect::{Incident, IncidentKind, Provenance, SpoofMode};
    use spoofwatch_net::Asn;

    fn record(window: u64, kind: IncidentKind, samples: Vec<SampledFlow>) -> IncidentRecord {
        IncidentRecord {
            incident: Incident {
                window_index: window,
                kind,
            },
            provenance: Provenance {
                start_chunk: window * 4,
                chunks: 4,
                class_flows: [0, 0, 60, 40],
                bit_entropy_milli: 310,
                slash24_entropy_milli: 150,
                ttl_mean_milli: [0, 0, 44_000, 56_000],
                ttl_count: [0, 0, 60, 40],
                samples,
                matrix: None,
            },
        }
    }

    fn sample() -> SampledFlow {
        SampledFlow {
            priority: 1,
            class: 2,
            src: 0x0B16_2101,
            dst: 0x0808_0808,
            member: Asn(17),
            ts: 5,
            proto: 17,
            sport: 53,
            dport: 443,
            ttl: 44,
        }
    }

    #[test]
    fn timeline_renders_table_counts_and_detail() {
        let t = IncidentTimeline::new(vec![
            record(
                2,
                IncidentKind::SpoofBurst {
                    mode: SpoofMode::Selective,
                    member: Some(Asn(17)),
                    entropy_milli: 310,
                    suspect_flows: 60,
                    share_milli: 600,
                },
                vec![sample()],
            ),
            record(
                2,
                IncidentKind::TtlShift {
                    class: TrafficClass::Invalid,
                    shift_milli: -12_000,
                    mean_milli: 44_000,
                    baseline_milli: 56_000,
                },
                vec![sample()],
            ),
        ]);
        assert_eq!(t.counts_by_kind(), vec![("spoof_burst", 1), ("ttl_shift", 1)]);
        let table = t.render_table();
        assert!(table.contains("spoof_burst"));
        assert!(table.contains("selective-spoofing burst at member AS17"));
        let detail = t.render_detail(0).unwrap();
        assert!(detail.contains("incident #0 (window 2)"));
        assert!(detail.contains("per-bit 0.310"));
        assert!(detail.contains("11.22.33.1"));
        assert!(detail.contains("TTL Invalid: mean 44.0 over 60 flows"));
        assert!(detail.contains("disagreement delta: not tracked"));
        assert!(t.render_detail(9).is_none());
        assert_eq!(IncidentTimeline::new(Vec::new()).render_table(), "no incidents\n");
    }
}
