//! Figure 9: application (port) mix per class, protocol, and direction.

use serde::Serialize;
use spoofwatch_net::flow::ports;
use spoofwatch_net::{FlowRecord, Proto, TrafficClass};
use std::collections::HashMap;

/// The four panel groups of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Panel {
    /// TCP destination ports.
    TcpDst,
    /// UDP destination ports.
    UdpDst,
    /// TCP source ports.
    TcpSrc,
    /// UDP source ports.
    UdpSrc,
}

impl Panel {
    /// All panels in the figure's order.
    pub const ALL: [Panel; 4] = [Panel::TcpDst, Panel::UdpDst, Panel::TcpSrc, Panel::UdpSrc];
}

impl std::fmt::Display for Panel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Panel::TcpDst => "TCP DST",
            Panel::UdpDst => "UDP DST",
            Panel::TcpSrc => "TCP SRC",
            Panel::UdpSrc => "UDP SRC",
        };
        f.write_str(s)
    }
}

/// Packet shares of the six broken-out ports plus "other", for one
/// (panel, class) cell.
#[derive(Debug, Clone, Default, Serialize)]
pub struct PortShares {
    /// Shares aligned with [`ports::FIGURE9`]; last entry is "other".
    pub shares: [f64; 7],
    /// Total packets in the cell.
    pub total: u64,
}

impl PortShares {
    /// Share of a specific broken-out port.
    pub fn port(&self, port: u16) -> f64 {
        ports::FIGURE9
            .iter()
            .position(|&p| p == port)
            .map(|i| self.shares[i])
            .unwrap_or(0.0)
    }

    /// Share of all non-broken-out ports.
    pub fn other(&self) -> f64 {
        self.shares[6]
    }
}

/// The full Figure 9 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// Cell per (panel, class).
    pub cells: HashMap<(Panel, TrafficClass), PortShares>,
}

impl Fig9 {
    /// Compute from a classified trace.
    pub fn compute(flows: &[FlowRecord], classes: &[TrafficClass]) -> Fig9 {
        assert_eq!(flows.len(), classes.len());
        let mut counts: HashMap<(Panel, TrafficClass), [u64; 7]> = HashMap::new();
        for (f, c) in flows.iter().zip(classes) {
            let panels = match f.proto {
                Proto::Tcp => [(Panel::TcpDst, f.dport), (Panel::TcpSrc, f.sport)],
                Proto::Udp => [(Panel::UdpDst, f.dport), (Panel::UdpSrc, f.sport)],
                _ => continue,
            };
            for (panel, port) in panels {
                let slot = ports::FIGURE9
                    .iter()
                    .position(|&p| p == port)
                    .unwrap_or(6);
                counts.entry((panel, *c)).or_default()[slot] += f.packets as u64;
            }
        }
        let cells = counts
            .into_iter()
            .map(|(key, row)| {
                let total: u64 = row.iter().sum();
                let mut shares = [0.0; 7];
                if total > 0 {
                    for (i, &n) in row.iter().enumerate() {
                        shares[i] = n as f64 / total as f64;
                    }
                }
                (key, PortShares { shares, total })
            })
            .collect();
        Fig9 { cells }
    }

    /// Fetch a cell (empty default if no traffic).
    pub fn cell(&self, panel: Panel, class: TrafficClass) -> PortShares {
        self.cells.get(&(panel, class)).cloned().unwrap_or_default()
    }

    /// Render the four panels as tables.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 9 — port mix per class (packet shares)\n");
        let class_label = |c: TrafficClass| match c {
            TrafficClass::Valid => "regular".to_owned(),
            other => other.to_string().to_lowercase(),
        };
        for panel in Panel::ALL {
            out.push_str(&format!("\n[{panel}]\n"));
            let mut header = vec!["class".to_owned()];
            header.extend(ports::FIGURE9.iter().map(|p| p.to_string()));
            header.push("other".to_owned());
            let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            let rows: Vec<Vec<String>> = [
                TrafficClass::Valid,
                TrafficClass::Bogon,
                TrafficClass::Unrouted,
                TrafficClass::Invalid,
            ]
            .iter()
            .map(|&c| {
                let cell = self.cell(panel, c);
                let mut row = vec![class_label(c)];
                row.extend(cell.shares.iter().map(|s| format!("{:.3}", s)));
                row
            })
            .collect();
            out.push_str(&crate::render::table(&header_refs, &rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_net::Asn;

    fn flow(proto: Proto, sport: u16, dport: u16, packets: u32) -> FlowRecord {
        FlowRecord {
            ts: 0,
            src: 0,
            dst: 0,
            proto,
            sport,
            dport,
            packets,
            bytes: packets as u64,
            pkt_size: 1,
            member: Asn(1),
            ttl: 0,
        }
    }

    #[test]
    fn ntp_dominates_invalid_udp_dst() {
        let flows = vec![
            flow(Proto::Udp, 5000, ports::NTP, 95),
            flow(Proto::Udp, 5001, 4444, 5),
        ];
        let classes = vec![TrafficClass::Invalid; 2];
        let fig = Fig9::compute(&flows, &classes);
        let cell = fig.cell(Panel::UdpDst, TrafficClass::Invalid);
        assert!((cell.port(ports::NTP) - 0.95).abs() < 1e-9);
        assert!((cell.other() - 0.05).abs() < 1e-9);
        assert_eq!(cell.total, 100);
        // Source panel sees only ephemeral ports.
        let src = fig.cell(Panel::UdpSrc, TrafficClass::Invalid);
        assert!((src.other() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn icmp_is_ignored() {
        let flows = vec![flow(Proto::Icmp, 0, 0, 10)];
        let classes = vec![TrafficClass::Invalid];
        let fig = Fig9::compute(&flows, &classes);
        assert_eq!(fig.cell(Panel::TcpDst, TrafficClass::Invalid).total, 0);
        assert_eq!(fig.cell(Panel::UdpDst, TrafficClass::Invalid).total, 0);
    }

    #[test]
    fn shares_sum_to_one() {
        let flows = vec![
            flow(Proto::Tcp, 1, ports::HTTP, 3),
            flow(Proto::Tcp, ports::HTTPS, 9, 5),
            flow(Proto::Tcp, 2, 9999, 2),
        ];
        let classes = vec![TrafficClass::Valid; 3];
        let fig = Fig9::compute(&flows, &classes);
        for panel in [Panel::TcpDst, Panel::TcpSrc] {
            let cell = fig.cell(panel, TrafficClass::Valid);
            let sum: f64 = cell.shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{panel}: {sum}");
        }
        assert!(fig.render().contains("TCP DST"));
    }
}
