//! Figure 6: per-member traffic volume vs. illegitimate share, by
//! business type.

use serde::Serialize;
use spoofwatch_core::MemberBreakdown;
use spoofwatch_internet::{BusinessType, Internet};
use spoofwatch_net::{Asn, TrafficClass};

/// One member's point in the scatter plot.
#[derive(Debug, Clone, Serialize)]
pub struct MemberPoint {
    /// The member.
    pub member: Asn,
    /// PeeringDB-style business type.
    pub business: BusinessType,
    /// Total sampled packets of the member.
    pub total_packets: u64,
    /// Bogon share of the member's packets, percent.
    pub bogon_pct: f64,
    /// Invalid share of the member's packets, percent.
    pub invalid_pct: f64,
    /// Unrouted share of the member's packets, percent.
    pub unrouted_pct: f64,
}

/// The Figure 6 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// One point per member with any traffic.
    pub points: Vec<MemberPoint>,
}

impl Fig6 {
    /// Compute from a breakdown plus the member metadata source.
    pub fn compute(breakdown: &MemberBreakdown, net: &Internet) -> Fig6 {
        let mut points: Vec<MemberPoint> = breakdown
            .per_member
            .keys()
            .map(|&member| {
                let business = net
                    .topology
                    .info(member)
                    .map(|i| i.business)
                    .unwrap_or(BusinessType::Other);
                MemberPoint {
                    member,
                    business,
                    total_packets: breakdown.total_packets(member),
                    bogon_pct: 100.0 * breakdown.class_fraction(member, TrafficClass::Bogon),
                    invalid_pct: 100.0
                        * breakdown.class_fraction(member, TrafficClass::Invalid),
                    unrouted_pct: 100.0
                        * breakdown.class_fraction(member, TrafficClass::Unrouted),
                }
            })
            .collect();
        points.sort_by_key(|p| std::cmp::Reverse(p.total_packets));
        Fig6 { points }
    }

    /// Members with a significant (>1%) share of the given class,
    /// grouped by business type — the paper's headline observation is
    /// that Hosting and ISP dominate this set.
    pub fn significant_by_business(&self, class: TrafficClass) -> Vec<(BusinessType, usize)> {
        let mut counts: std::collections::BTreeMap<BusinessType, usize> =
            std::collections::BTreeMap::new();
        for p in &self.points {
            let share = match class {
                TrafficClass::Bogon => p.bogon_pct,
                TrafficClass::Invalid => p.invalid_pct,
                TrafficClass::Unrouted => p.unrouted_pct,
                TrafficClass::Valid => 0.0,
            };
            if share > 1.0 {
                *counts.entry(p.business).or_insert(0) += 1;
            }
        }
        counts.into_iter().collect()
    }

    /// Render both panels as data tables.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    p.member.to_string(),
                    p.business.to_string(),
                    p.total_packets.to_string(),
                    format!("{:.4}", p.bogon_pct),
                    format!("{:.4}", p.invalid_pct),
                    format!("{:.4}", p.unrouted_pct),
                ]
            })
            .collect();
        format!(
            "Figure 6 — member volume vs class shares by business type\n{}",
            crate::render::table(
                &["member", "type", "pkts", "%bogon", "%invalid", "%unrouted"],
                &rows
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_internet::InternetConfig;
    use spoofwatch_net::{FlowRecord, Proto};

    #[test]
    fn points_and_grouping() {
        let net = Internet::generate(InternetConfig::tiny(3));
        let m1 = net.ixp_members[0];
        let m2 = net.ixp_members[1];
        let flow = |member: Asn, packets: u32| FlowRecord {
            ts: 0,
            src: 0,
            dst: 0,
            proto: Proto::Tcp,
            sport: 0,
            dport: 0,
            packets,
            bytes: packets as u64,
            pkt_size: 1,
            member,
            ttl: 0,
        };
        let flows = vec![flow(m1, 10), flow(m1, 90), flow(m2, 100)];
        let classes = vec![
            TrafficClass::Bogon,
            TrafficClass::Valid,
            TrafficClass::Valid,
        ];
        let breakdown = MemberBreakdown::from_classes(&flows, &classes);
        let fig = Fig6::compute(&breakdown, &net);
        assert_eq!(fig.points.len(), 2);
        let p1 = fig.points.iter().find(|p| p.member == m1).unwrap();
        assert!((p1.bogon_pct - 10.0).abs() < 1e-9);
        let sig = fig.significant_by_business(TrafficClass::Bogon);
        assert_eq!(sig.iter().map(|(_, n)| n).sum::<usize>(), 1);
        assert!(fig.render().contains("%bogon"));
    }
}
