//! A consolidated study report: every §5–§7 analysis over one classified
//! trace, rendered as a single markdown-ish document — the deliverable an
//! operator (or a reviewer) reads end to end.

use crate::{addrstruct, attack, ccdf, evaluate, portmix, scatter, sizes, timeseries, venn};
use spoofwatch_core::{
    Classifier, Confidence, DecisionRecord, DegradedStats, DisagreementMatrix, LiveSession,
    MemberBreakdown, RunnerHealth, ShardStudyReport, Table1,
};
use spoofwatch_net::InferenceMethod;
use spoofwatch_internet::Internet;
use spoofwatch_ixp::{Trace, TrafficLabel};
use spoofwatch_net::{IngestHealth, TrafficClass};
use std::collections::HashSet;

/// Health of the ingest pipeline that produced the classified trace: one
/// [`IngestHealth`] per upstream source (pcap capture, IPFIX feed, MRT
/// dump, …) plus the routing-table freshness the classifier ran under.
/// Attached to a [`StudyReport`] so a reader can judge how much of the
/// input survived decoding before trusting the numbers downstream.
pub struct IngestSummary {
    /// Per-source decode health, in the order the sources were ingested.
    pub sources: Vec<(String, IngestHealth)>,
    /// Freshness of the routing table at classification time.
    pub table_confidence: Confidence,
    /// Confidence counters from degraded-mode classification, when the
    /// degraded path was used.
    pub degraded: Option<DegradedStats>,
}

impl IngestSummary {
    /// Total bytes quarantined across all sources.
    pub fn quarantined_bytes(&self) -> u64 {
        self.sources.iter().map(|(_, h)| h.quarantined_bytes).sum()
    }

    /// True when every source decoded fully and the table is fresh.
    pub fn is_clean(&self) -> bool {
        self.table_confidence == Confidence::Fresh
            && self
                .sources
                .iter()
                .all(|(_, h)| h.resyncs == 0 && h.quarantined_bytes == 0 && !h.unrecoverable)
    }
}

/// Everything the study produces, computed in one pass.
pub struct StudyReport {
    /// Table 1.
    pub table1: Table1,
    /// Figure 4 CCDFs.
    pub fig4: ccdf::Fig4,
    /// Figure 5 Venn regions.
    pub fig5: venn::Fig5,
    /// Figure 6 scatter points.
    pub fig6: scatter::Fig6,
    /// Figure 8a size CDFs.
    pub fig8a: sizes::Fig8a,
    /// Figure 8b time series.
    pub fig8b: timeseries::Fig8b,
    /// Figure 9 port mix.
    pub fig9: portmix::Fig9,
    /// Figure 10 address structure.
    pub fig10: addrstruct::Fig10,
    /// Figure 11a ratio histogram.
    pub fig11a: attack::Fig11a,
    /// Figure 11b/§7 NTP analysis.
    pub ntp: attack::NtpAnalysis,
    /// Figure 11c reflection series.
    pub fig11c: attack::Fig11c,
    /// Ground-truth scoring (synthetic traces only).
    pub evaluation: Option<evaluate::Evaluation>,
    /// Ingest-pipeline health, when the caller attached it.
    pub ingest: Option<IngestSummary>,
    /// Streaming-runner supervision and backpressure health, when the
    /// study ran under [`spoofwatch_core::StudyRunner`].
    pub runner: Option<RunnerHealth>,
    /// Metrics snapshot captured at report time, when the study ran
    /// with telemetry enabled.
    pub telemetry: Option<spoofwatch_obs::Snapshot>,
    /// Method-disagreement matrix, when the run tracked it.
    pub disagreement: Option<DisagreementMatrix>,
    /// Sampled decision-provenance exemplars, when the study classified
    /// with a live [`spoofwatch_core::ProvenanceSampler`].
    pub provenance: Option<Vec<DecisionRecord>>,
    /// Sharded-study outcome, when the study ran distributed across
    /// shard workers.
    pub shards: Option<ShardStudyReport>,
    /// Live-session telemetry, when the study ingested a socket-fed
    /// stream under [`spoofwatch_core::serve_live`].
    pub live: Option<LiveSession>,
}

impl StudyReport {
    /// Compute the full report. Labels are optional: pass them when the
    /// trace is synthetic to add the ground-truth section.
    pub fn compute(
        net: &Internet,
        trace: &Trace,
        classifier: &Classifier,
        classes: &[TrafficClass],
        labels: Option<&[TrafficLabel]>,
    ) -> StudyReport {
        let breakdown = MemberBreakdown::from_classes(&trace.flows, classes);
        StudyReport {
            table1: Table1::compute(classifier, &trace.flows),
            fig4: ccdf::Fig4::compute(&breakdown),
            fig5: venn::Fig5::compute(&breakdown, &HashSet::new()),
            fig6: scatter::Fig6::compute(&breakdown, net),
            fig8a: sizes::Fig8a::compute(&trace.flows, classes),
            fig8b: timeseries::Fig8b::compute(&trace.flows, classes, trace.duration),
            fig9: portmix::Fig9::compute(&trace.flows, classes),
            fig10: addrstruct::Fig10::compute(&trace.flows, classes),
            fig11a: attack::Fig11a::compute(&trace.flows, classes, 50),
            ntp: attack::NtpAnalysis::compute(&trace.flows, classes, 10),
            fig11c: attack::Fig11c::compute(&trace.flows, classes, trace.duration),
            evaluation: labels
                .map(|l| evaluate::Evaluation::compute(&trace.flows, l, classes)),
            ingest: None,
            runner: None,
            telemetry: None,
            disagreement: None,
            provenance: None,
            shards: None,
            live: None,
        }
    }

    /// Attach ingest-pipeline health so [`render`](Self::render) includes
    /// a data-quality section.
    pub fn with_ingest(mut self, summary: IngestSummary) -> Self {
        self.ingest = Some(summary);
        self
    }

    /// Attach streaming-runner health so [`render`](Self::render)
    /// includes a supervision & backpressure section.
    pub fn with_runner(mut self, health: RunnerHealth) -> Self {
        self.runner = Some(health);
        self
    }

    /// Attach a metrics snapshot so [`render`](Self::render) includes a
    /// telemetry section (latency quantiles, decode fault taxonomy,
    /// per-class flow counters).
    pub fn with_telemetry(mut self, snapshot: spoofwatch_obs::Snapshot) -> Self {
        self.telemetry = Some(snapshot);
        self
    }

    /// Attach a method-disagreement matrix so [`render`](Self::render)
    /// includes a method-sensitivity section (pairwise transition
    /// counts and org-adjustment deltas).
    pub fn with_disagreement(mut self, matrix: DisagreementMatrix) -> Self {
        self.disagreement = Some(matrix);
        self
    }

    /// Attach sampled decision-provenance exemplars so
    /// [`render`](Self::render) includes a "why was this flow classified
    /// that way" section.
    pub fn with_provenance(mut self, exemplars: Vec<DecisionRecord>) -> Self {
        self.provenance = Some(exemplars);
        self
    }

    /// Attach a sharded-study outcome so [`render`](Self::render)
    /// includes a distribution section — per-shard control-plane health,
    /// the loss-extended accounting invariant, and degradation caveats
    /// when a shard was lost past its retry budget.
    pub fn with_shards(mut self, report: ShardStudyReport) -> Self {
        self.shards = Some(report);
        self
    }

    /// Attach live-session telemetry so [`render`](Self::render) includes
    /// a live-ingest section — achieved rate, overload-ladder residence
    /// times, credit/resume traffic, and the session-delta accounting
    /// with live shedding folded in.
    pub fn with_live(mut self, session: LiveSession) -> Self {
        self.live = Some(session);
        self
    }

    /// Render the headline findings as one document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("# Passive spoofing study report\n\n## Traffic classes (Table 1)\n\n");
        let rows: Vec<Vec<String>> = self
            .table1
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    format!("{} ({:.1}%)", r.members, r.members_pct),
                    format!("{:.3}%", r.bytes_pct),
                    format!("{:.3}%", r.packets_pct),
                ]
            })
            .collect();
        out.push_str(&crate::render::table(
            &["class", "members", "bytes", "packets"],
            &rows,
        ));

        out.push_str("\n## Filtering consistency (Figure 5)\n\n");
        out.push_str(&self.fig5.render());

        out.push_str("\n## Headline attack findings (§7)\n\n");
        out.push_str(&format!(
            "- NTP amplification: {} victims, {} amplifiers contacted, top member \
             emits {:.1}% of trigger traffic\n",
            self.ntp.distinct_victims,
            self.ntp.contacted_amplifiers,
            100.0 * self.ntp.top_member_share,
        ));
        out.push_str(&format!(
            "- Reflection loop: {} matched (victim, amplifier) pairs, {:.1}x byte amplification\n",
            self.fig11c.matched_pairs, self.fig11c.amplification,
        ));
        out.push_str(&format!(
            "- Random spoofing: {:.0}% of Unrouted destinations receive every packet \
             from a distinct source\n",
            100.0 * self.fig11a.unique_source_fraction(TrafficClass::Unrouted),
        ));
        out.push_str(&format!(
            "- Small packets: {:.0}% of Bogon packets are ≤60 B (regular traffic: {:.0}%)\n",
            100.0 * self.fig8a.fraction_le(TrafficClass::Bogon, 60),
            100.0 * self.fig8a.fraction_le(TrafficClass::Valid, 60),
        ));
        out.push_str(&format!(
            "- Burstiness (CoV of hourly volume): regular {:.2}, unrouted {:.2}, invalid {:.2}\n",
            self.fig8b.burstiness(TrafficClass::Valid),
            self.fig8b.burstiness(TrafficClass::Unrouted),
            self.fig8b.burstiness(TrafficClass::Invalid),
        ));

        if let Some(eval) = &self.evaluation {
            out.push_str("\n## Ground-truth scoring (synthetic trace)\n\n");
            out.push_str(&eval.render());
        }

        if let Some(ingest) = &self.ingest {
            out.push_str("\n## Ingest health\n\n");
            for (name, health) in &ingest.sources {
                out.push_str(&format!("- `{name}`: {health}\n"));
            }
            out.push_str(&format!(
                "- routing table: {} at classification time\n",
                ingest.table_confidence,
            ));
            if let Some(d) = &ingest.degraded {
                out.push_str(&format!(
                    "- degraded-mode classification: {} flows ({} fresh, {} degraded, \
                     {} stale; {} tentative Unrouted verdicts)\n",
                    d.flows, d.fresh, d.degraded, d.stale, d.unrouted_tentative,
                ));
            }
            if !ingest.is_clean() {
                out.push_str(
                    "\n*Caveat: part of the input was quarantined or classified against \
                     a stale routing table; treat small classes with care.*\n",
                );
            }
        }

        if let Some(runner) = &self.runner {
            out.push_str("\n## Supervision & backpressure\n\n");
            out.push_str(&format!(
                "- chunks: {} offered, {} processed, {} shed, {} quarantined\n",
                runner.chunks.offered,
                runner.chunks.processed,
                runner.chunks.shed,
                runner.chunks.quarantined,
            ));
            out.push_str(&format!(
                "- records: {} offered, {} processed, {} shed, {} quarantined\n",
                runner.records.offered,
                runner.records.processed,
                runner.records.shed,
                runner.records.quarantined,
            ));
            out.push_str(&format!(
                "- accounting reconciles: {}\n",
                if runner.reconciles() { "yes" } else { "NO" },
            ));
            out.push_str(&format!(
                "- supervision: {} worker restarts, {} watchdog stalls, \
                 {} checkpoints written, {} rejected as torn\n",
                runner.worker_restarts,
                runner.watchdog_stalls,
                runner.checkpoints_written,
                runner.checkpoints_rejected,
            ));
            if let Some(seq) = runner.resumed_at_chunk {
                out.push_str(&format!("- resumed from checkpoint at chunk {seq}\n"));
            }
            if runner.records.shed > 0 || runner.records.quarantined > 0 {
                out.push_str(
                    "\n*Caveat: load shedding or panic quarantine dropped part of the \
                     trace; class shares reflect the processed subset only.*\n",
                );
            }
        }

        if let Some(snap) = &self.telemetry {
            out.push_str("\n## Telemetry\n\n");
            let series: usize = snap.families.iter().map(|f| f.series.len()).sum();
            out.push_str(&format!(
                "- metrics snapshot: {} families, {series} series\n",
                snap.families.len(),
            ));
            for (name, label) in [
                (
                    "spoofwatch_runner_chunk_classify_duration_ns",
                    "per-chunk classify latency",
                ),
                (
                    "spoofwatch_runner_checkpoint_write_duration_ns",
                    "checkpoint write latency",
                ),
            ] {
                if let Some(h) = snap.histogram(name, &[]) {
                    out.push_str(&format!("- {label}: {}\n", render_quantiles(h)));
                }
            }
            let classified = snap.counter_sum("spoofwatch_runner_classified_flows_total");
            if classified > 0 {
                let per_class: Vec<String> = ["bogon", "unrouted", "invalid", "valid"]
                    .iter()
                    .map(|cl| {
                        let n = snap
                            .counter(
                                "spoofwatch_runner_classified_flows_total",
                                &[("class", cl)],
                            )
                            .unwrap_or(0);
                        format!("{cl} {n}")
                    })
                    .collect();
                out.push_str(&format!(
                    "- classified flows (runner): {}\n",
                    per_class.join(", "),
                ));
            }
            let faults = snap.counter_sum("spoofwatch_decode_faults_total");
            if faults > 0 {
                out.push_str(&format!("- decode faults: {faults} total\n"));
                for fam in snap
                    .families
                    .iter()
                    .filter(|f| f.name == "spoofwatch_decode_faults_total")
                {
                    for s in &fam.series {
                        if let spoofwatch_obs::SeriesValue::Counter(n) = &s.value {
                            let labels: Vec<String> = s
                                .labels
                                .iter()
                                .map(|(k, v)| format!("{k}={v}"))
                                .collect();
                            out.push_str(&format!("  - {}: {n}\n", labels.join(" ")));
                        }
                    }
                }
            }
            if let Some(depth) = snap.gauge("spoofwatch_runner_queue_depth", &[]) {
                out.push_str(&format!("- queue depth at snapshot: {depth}\n"));
            }
            if let Some(conf) = snap.gauge("spoofwatch_rib_confidence", &[]) {
                let word = match conf {
                    0 => "fresh",
                    1 => "degraded",
                    _ => "stale",
                };
                out.push_str(&format!("- routing-table feed grade: {word}\n"));
            }
        }

        if let Some(m) = &self.disagreement {
            out.push_str("\n## Method disagreement\n\n");
            out.push_str(&m.render());
            out.push_str(&format!(
                "- org adjustment moved {} flows under customer cone, {} under full cone\n",
                m.org_delta(InferenceMethod::CustomerCone),
                m.org_delta(InferenceMethod::FullCone),
            ));
            if !m.reconciles() {
                out.push_str("\n*Caveat: disagreement cells do not tile the batch.*\n");
            }
        }

        if let Some(shards) = &self.shards {
            out.push_str("\n## Distribution & shard health\n\n");
            out.push_str(&format!(
                "- plan: {} shard(s), partition salt {:#x}\n",
                shards.plan.shards, shards.plan.salt,
            ));
            for s in &shards.shards {
                let state = if s.lost {
                    "LOST"
                } else if s.completed {
                    "completed"
                } else {
                    "incomplete"
                };
                out.push_str(&format!(
                    "- shard {}: {state}, {} chunks committed, {} death(s), \
                     {} heartbeat miss(es), {} wire fault(s)\n",
                    s.shard_id, s.committed_chunks, s.deaths, s.heartbeat_misses, s.wire_faults,
                ));
            }
            out.push_str(&format!(
                "- records: {} offered, {} processed, {} shed, {} quarantined, {} lost\n",
                shards.records.offered,
                shards.records.processed,
                shards.records.shed,
                shards.records.quarantined,
                shards.records.lost,
            ));
            out.push_str(&format!(
                "- accounting reconciles (offered == processed + shed + quarantined + lost): {}\n",
                if shards.reconciles() { "yes" } else { "NO" },
            ));
            for caveat in shards.caveats() {
                out.push_str(&format!("\n*Caveat: {caveat}.*\n"));
            }
        }

        if let Some(live) = &self.live {
            out.push_str("\n## Live session\n\n");
            out.push_str(&format!(
                "- stream: {} records/chunk, target {}, admission window {} chunk(s)\n",
                live.chunk_records,
                if live.target_rps == 0 {
                    "line rate".to_string()
                } else {
                    format!("{} records/s", live.target_rps)
                },
                live.window,
            ));
            out.push_str(&format!(
                "- achieved {:.0} records/s over {:.2}s ({})\n",
                live.achieved_records_per_sec,
                live.duration_ns as f64 / 1e9,
                match (live.stop_requested, live.producer_lost) {
                    (_, true) => "producer lost; drained what was admitted",
                    (true, false) => "graceful drain on stop request",
                    (false, false) => "stream ran to completion",
                },
            ));
            let total_ns: u64 = live.time_in_state_ns.iter().sum();
            let pct = |ns: u64| {
                if total_ns == 0 {
                    0.0
                } else {
                    ns as f64 * 100.0 / total_ns as f64
                }
            };
            out.push_str(&format!(
                "- overload ladder: {:.1}% normal, {:.1}% pressure, {:.1}% shed, \
                 {:.1}% refuse ({} transition(s), {} shed recovery(ies))\n",
                pct(live.time_in_state_ns[0]),
                pct(live.time_in_state_ns[1]),
                pct(live.time_in_state_ns[2]),
                pct(live.time_in_state_ns[3]),
                live.transitions,
                live.shed_recoveries,
            ));
            out.push_str(&format!(
                "- flow control: {} credit grant(s), {} resume request(s), peak buffer \
                 {} of {} chunk(s)\n",
                live.credits_granted, live.resumes_sent, live.max_buffered_chunks, live.window,
            ));
            out.push_str(&format!(
                "- link: {} wire fault(s), {} protocol fault(s), {} producer stall(s), \
                 {} consumer stall(s)\n",
                live.wire_faults, live.protocol_faults, live.producer_stalls,
                live.consumer_stalls,
            ));
            if let Some(seq) = live.resumed_at_chunk {
                out.push_str(&format!("- resumed from checkpoint at chunk {seq}\n"));
            }
            out.push_str(&format!(
                "- session records: {} offered, {} processed, {} shed ({} at the live \
                 buffer), {} quarantined\n",
                live.records.offered,
                live.records.processed,
                live.records.shed,
                live.live_shed_records,
                live.records.quarantined,
            ));
            out.push_str(&format!(
                "- accounting reconciles (offered == processed + shed + quarantined): {}\n",
                if live.reconciles() { "yes" } else { "NO" },
            ));
            for caveat in live.caveats() {
                out.push_str(&format!("\n*Caveat: {caveat}.*\n"));
            }
        }

        if let Some(exemplars) = &self.provenance {
            out.push_str("\n## Decision provenance exemplars\n\n");
            if exemplars.is_empty() {
                out.push_str("- none sampled\n");
            }
            for r in exemplars {
                out.push_str(&format!("- {r}\n"));
            }
        }
        out
    }
}

/// `p50/p90/p99` line for a latency histogram, scaled from ns to the
/// most readable unit.
fn render_quantiles(h: &spoofwatch_obs::HistogramSnapshot) -> String {
    fn fmt_ns(ns: f64) -> String {
        if !ns.is_finite() {
            "overflow".to_string()
        } else if ns >= 1e9 {
            format!("{:.2} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.2} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.2} µs", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }
    let q = |p: f64| h.quantile(p).map(fmt_ns).unwrap_or_else(|| "-".to_string());
    format!(
        "p50 ≤ {}, p90 ≤ {}, p99 ≤ {} (n={})",
        q(0.50),
        q(0.90),
        q(0.99),
        h.count,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_internet::InternetConfig;
    use spoofwatch_ixp::TrafficConfig;
    use spoofwatch_net::{InferenceMethod, OrgMode};

    #[test]
    fn full_report_computes_and_renders() {
        let net = Internet::generate(InternetConfig::tiny(88));
        let trace = Trace::generate(&net, &TrafficConfig::tiny(8));
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        let report =
            StudyReport::compute(&net, &trace, &classifier, &classes, Some(&trace.labels));
        let text = report.render();
        assert!(text.contains("Table 1"));
        assert!(text.contains("NTP amplification"));
        assert!(text.contains("Ground-truth scoring"));
        assert!(report.evaluation.as_ref().unwrap().spoofed_recall > 0.5);
        // Without labels, the scoring section is absent.
        let anon = StudyReport::compute(&net, &trace, &classifier, &classes, None);
        assert!(!anon.render().contains("Ground-truth scoring"));
    }

    #[test]
    fn ingest_section_renders_when_attached() {
        let net = Internet::generate(InternetConfig::tiny(88));
        let trace = Trace::generate(&net, &TrafficConfig::tiny(8));
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        let report = StudyReport::compute(&net, &trace, &classifier, &classes, None);
        assert!(!report.render().contains("Ingest health"));

        let mut dirty = IngestHealth::new(1000);
        dirty.credit_ok(6);
        dirty.credit_record(959);
        dirty.quarantine(700, 35, spoofwatch_net::FaultKind::BadRecord);
        dirty.note_resync();
        assert!(dirty.reconciles());
        let summary = IngestSummary {
            sources: vec![
                ("flows.ipfix".to_string(), dirty),
                ("rib.mrt".to_string(), IngestHealth::new(0)),
            ],
            table_confidence: Confidence::Degraded,
            degraded: Some(DegradedStats {
                flows: trace.flows.len() as u64,
                fresh: 0,
                degraded: trace.flows.len() as u64,
                stale: 0,
                unrouted_tentative: 3,
            }),
        };
        assert_eq!(summary.quarantined_bytes(), 35);
        assert!(!summary.is_clean());
        let text = StudyReport::compute(&net, &trace, &classifier, &classes, None)
            .with_ingest(summary)
            .render();
        assert!(text.contains("Ingest health"));
        assert!(text.contains("flows.ipfix"));
        assert!(text.contains("degraded at classification time"));
        assert!(text.contains("tentative Unrouted"));
        assert!(text.contains("Caveat"));
    }

    #[test]
    fn runner_section_renders_when_attached() {
        use spoofwatch_core::FlowAccounting;
        let net = Internet::generate(InternetConfig::tiny(88));
        let trace = Trace::generate(&net, &TrafficConfig::tiny(8));
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        let report = StudyReport::compute(&net, &trace, &classifier, &classes, None);
        assert!(!report.render().contains("Supervision & backpressure"));

        let health = RunnerHealth {
            records: FlowAccounting {
                offered: 1000,
                processed: 900,
                shed: 60,
                quarantined: 40,
            },
            chunks: FlowAccounting {
                offered: 20,
                processed: 18,
                shed: 1,
                quarantined: 1,
            },
            worker_restarts: 1,
            watchdog_stalls: 0,
            checkpoints_written: 5,
            checkpoints_rejected: 1,
            resumed_at_chunk: Some(12),
        };
        assert!(health.reconciles());
        let text = StudyReport::compute(&net, &trace, &classifier, &classes, None)
            .with_runner(health)
            .render();
        assert!(text.contains("Supervision & backpressure"));
        assert!(text.contains("1000 offered, 900 processed, 60 shed, 40 quarantined"));
        assert!(text.contains("accounting reconciles: yes"));
        assert!(text.contains("resumed from checkpoint at chunk 12"));
        assert!(text.contains("1 rejected as torn"));
        assert!(text.contains("processed subset only"));
    }

    #[test]
    fn disagreement_and_provenance_sections_render_when_attached() {
        use spoofwatch_core::ProvenanceSampler;
        let net = Internet::generate(InternetConfig::tiny(88));
        let trace = Trace::generate(&net, &TrafficConfig::tiny(8));
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        let plain = StudyReport::compute(&net, &trace, &classifier, &classes, None).render();
        assert!(!plain.contains("Method disagreement"));
        assert!(!plain.contains("provenance exemplars"));

        let matrix = classifier.method_disagreement(&trace.flows);
        assert!(matrix.reconciles());
        let mut sampler = ProvenanceSampler::new(7, 3);
        let sampled = classifier.classify_trace_sampled(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
            &mut sampler,
        );
        assert_eq!(sampled, classes);
        let exemplars = sampler.all_exemplars();
        assert!(!exemplars.is_empty());

        let text = StudyReport::compute(&net, &trace, &classifier, &classes, None)
            .with_disagreement(matrix)
            .with_provenance(exemplars)
            .render();
        assert!(text.contains("## Method disagreement"));
        assert!(text.contains("naive vs customer_cone"));
        assert!(text.contains("org adjustment moved"));
        assert!(text.contains("## Decision provenance exemplars"));
        assert!(text.contains("->"), "exemplar lines use DecisionRecord display");
    }

    #[test]
    fn telemetry_section_renders_when_attached() {
        let net = Internet::generate(InternetConfig::tiny(88));
        let trace = Trace::generate(&net, &TrafficConfig::tiny(8));
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        let report = StudyReport::compute(&net, &trace, &classifier, &classes, None);
        assert!(!report.render().contains("## Telemetry"));

        let reg = spoofwatch_obs::MetricsRegistry::new();
        let lat = reg.histogram(
            "spoofwatch_runner_chunk_classify_duration_ns",
            "test",
            &[],
        );
        for v in [900, 12_000, 45_000, 2_000_000] {
            lat.record(v);
        }
        reg.counter(
            "spoofwatch_runner_classified_flows_total",
            "test",
            &[("class", "valid")],
        )
        .add(40);
        reg.counter(
            "spoofwatch_runner_classified_flows_total",
            "test",
            &[("class", "bogon")],
        )
        .add(2);
        reg.counter(
            "spoofwatch_decode_faults_total",
            "test",
            &[("format", "ipfix"), ("kind", "bad_record")],
        )
        .add(3);
        reg.gauge("spoofwatch_runner_queue_depth", "test", &[]).set(0);
        reg.gauge("spoofwatch_rib_confidence", "test", &[]).set(1);

        let text = StudyReport::compute(&net, &trace, &classifier, &classes, None)
            .with_telemetry(reg.snapshot())
            .render();
        assert!(text.contains("## Telemetry"));
        assert!(text.contains("per-chunk classify latency: p50"));
        assert!(text.contains("(n=4)"));
        assert!(text.contains("bogon 2"));
        assert!(text.contains("valid 40"));
        assert!(text.contains("decode faults: 3 total"));
        assert!(text.contains("format=ipfix kind=bad_record: 3"));
        assert!(text.contains("queue depth at snapshot: 0"));
        assert!(text.contains("routing-table feed grade: degraded"));
    }

    #[test]
    fn shard_section_renders_degradation_caveats() {
        use spoofwatch_core::{LossAccounting, ShardPlan, ShardStatus, ShardStudyReport};
        let net = Internet::generate(InternetConfig::tiny(88));
        let trace = Trace::generate(&net, &TrafficConfig::tiny(8));
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        let report = StudyReport::compute(&net, &trace, &classifier, &classes, None);
        assert!(!report.render().contains("Distribution & shard health"));

        let shard_report = ShardStudyReport {
            plan: ShardPlan::new(3, 0xfeed),
            breakdown: MemberBreakdown {
                per_member: Default::default(),
            },
            ingest: Default::default(),
            disagreement: None,
            windows: Vec::new(),
            records: LossAccounting {
                offered: 100,
                processed: 60,
                shed: 0,
                quarantined: 0,
                lost: 40,
            },
            chunks: LossAccounting {
                offered: 30,
                processed: 20,
                shed: 0,
                quarantined: 0,
                lost: 10,
            },
            shards: vec![
                ShardStatus {
                    shard_id: 0,
                    completed: true,
                    committed_chunks: 10,
                    ..ShardStatus::default()
                },
                ShardStatus {
                    shard_id: 1,
                    completed: true,
                    committed_chunks: 10,
                    deaths: 1,
                    heartbeat_misses: 1,
                    ..ShardStatus::default()
                },
                ShardStatus {
                    shard_id: 2,
                    lost: true,
                    deaths: 4,
                    ..ShardStatus::default()
                },
            ],
        };
        assert!(shard_report.degraded());
        assert!(shard_report.reconciles());
        let text = StudyReport::compute(&net, &trace, &classifier, &classes, None)
            .with_shards(shard_report)
            .render();
        assert!(text.contains("## Distribution & shard health"));
        assert!(text.contains("plan: 3 shard(s)"));
        assert!(text.contains("shard 2: LOST"));
        assert!(text.contains("100 offered, 60 processed, 0 shed, 0 quarantined, 40 lost"));
        assert!(text.contains("offered == processed + shed + quarantined + lost): yes"));
        assert!(text.contains("*Caveat: shard 2/3 was lost after 4 death(s)"));
        assert!(text.contains("results are PARTIAL: 40 of 100 records lost"));
    }

    #[test]
    fn live_section_renders_session_telemetry_and_caveats() {
        use spoofwatch_core::{FlowAccounting, OverloadState};
        let net = Internet::generate(InternetConfig::tiny(88));
        let trace = Trace::generate(&net, &TrafficConfig::tiny(8));
        let classifier = Classifier::build(&net.announcements, &net.orgs_dataset);
        let classes = classifier.classify_trace(
            &trace.flows,
            InferenceMethod::FullCone,
            OrgMode::OrgAdjusted,
        );
        let report = StudyReport::compute(&net, &trace, &classifier, &classes, None);
        assert!(!report.render().contains("## Live session"));

        let session = LiveSession {
            window: 8,
            chunk_records: 50,
            target_rps: 20_000,
            duration_ns: 2_500_000_000,
            achieved_records_per_sec: 12_000.0,
            final_state: OverloadState::Normal,
            time_in_state_ns: [2_000_000_000, 300_000_000, 150_000_000, 50_000_000],
            transitions: 6,
            shed_recoveries: 2,
            records: FlowAccounting {
                offered: 30_000,
                processed: 28_000,
                shed: 1_900,
                quarantined: 100,
            },
            chunks: FlowAccounting {
                offered: 600,
                processed: 600,
                shed: 0,
                quarantined: 0,
            },
            live_shed_records: 1_900,
            max_buffered_chunks: 8,
            credits_granted: 610,
            resumes_sent: 3,
            wire_faults: 7,
            protocol_faults: 2,
            producer_stalls: 1,
            consumer_stalls: 0,
            resumed_at_chunk: Some(120),
            producer_lost: false,
            stop_requested: true,
        };
        assert!(session.reconciles());
        let text = StudyReport::compute(&net, &trace, &classifier, &classes, None)
            .with_live(session)
            .render();
        assert!(text.contains("## Live session"));
        assert!(text.contains("50 records/chunk, target 20000 records/s"));
        assert!(text.contains("achieved 12000 records/s over 2.50s"));
        assert!(text.contains("graceful drain on stop request"));
        assert!(text.contains("80.0% normal"));
        assert!(text.contains("6 transition(s), 2 shed recovery(ies)"));
        assert!(text.contains("610 credit grant(s), 3 resume request(s)"));
        assert!(text.contains("peak buffer 8 of 8 chunk(s)"));
        assert!(text.contains("7 wire fault(s), 2 protocol fault(s)"));
        assert!(text.contains("resumed from checkpoint at chunk 120"));
        assert!(text.contains(
            "30000 offered, 28000 processed, 1900 shed (1900 at the live buffer), \
             100 quarantined"
        ));
        assert!(text.contains("offered == processed + shed + quarantined): yes"));
        assert!(text.contains("*Caveat: 1900 records were shed"));
        assert!(text.contains("*Caveat: stall watchdogs fired (1 producer, 0 consumer)"));
        assert!(text.contains("*Caveat: the link absorbed 7 wire faults"));
    }
}
