//! Figure 2: routed ASes sorted by the size of their valid address
//! space, under all five inference variants.

use serde::Serialize;
use spoofwatch_core::Classifier;
use spoofwatch_net::{Asn, InferenceMethod, OrgMode, UNITS_PER_SLASH24};
use std::collections::HashMap;

/// One curve: valid space per AS (in /24 equivalents), ascending.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// Variant label as in the figure's legend.
    pub label: String,
    /// Sorted valid-space sizes, one entry per routed AS.
    pub sizes: Vec<f64>,
}

impl Curve {
    /// Value at a quantile in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sizes.is_empty() {
            return 0.0;
        }
        let idx = ((self.sizes.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.sizes[idx]
    }

    /// Number of ASes whose valid space covers at least `frac` of the
    /// total routed space (the paper: ~5K ASes are valid sources for the
    /// entire routed space under the Full Cone).
    pub fn ases_covering(&self, total_slash24: f64, frac: f64) -> usize {
        self.sizes
            .iter()
            .filter(|&&s| s >= frac * total_slash24)
            .count()
    }
}

/// The five curves of Figure 2.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// Curves in legend order: Naive, CC, CC+orgs, FULL, FULL+orgs.
    pub curves: Vec<Curve>,
    /// Total routed space in /24 equivalents.
    pub routed_slash24: f64,
}

impl Fig2 {
    /// Compute over every AS observed in the routing data.
    pub fn compute(classifier: &Classifier) -> Fig2 {
        let table = classifier.table();
        let ases: Vec<Asn> = table.ases().collect();

        // Naive: invert the per-prefix on-path sets.
        let mut naive_units: HashMap<Asn, u64> = HashMap::new();
        for (prefix, info) in table.iter() {
            for asn in &info.on_path {
                *naive_units.entry(*asn).or_default() += prefix.slash24_units();
            }
        }

        let mut curves = Vec::new();
        let mut sizes: Vec<f64> = ases
            .iter()
            .map(|a| {
                naive_units.get(a).copied().unwrap_or(0) as f64 / UNITS_PER_SLASH24 as f64
            })
            .collect();
        sizes.sort_by(|a, b| a.total_cmp(b));
        curves.push(Curve {
            label: "Naive".to_owned(),
            sizes,
        });

        let variants = [
            ("Customer Cone", InferenceMethod::CustomerCone, OrgMode::Plain),
            (
                "Customer Cone (multi-AS orgs)",
                InferenceMethod::CustomerCone,
                OrgMode::OrgAdjusted,
            ),
            ("Full Cone", InferenceMethod::FullCone, OrgMode::Plain),
            (
                "Full Cone (multi-AS orgs)",
                InferenceMethod::FullCone,
                OrgMode::OrgAdjusted,
            ),
        ];
        for (label, method, org) in variants {
            let cones = classifier.cones(method, org).expect("precomputed");
            let mut sizes: Vec<f64> = ases
                .iter()
                .map(|a| cones.valid_units(*a) as f64 / UNITS_PER_SLASH24 as f64)
                .collect();
            sizes.sort_by(|a, b| a.total_cmp(b));
            curves.push(Curve {
                label: label.to_owned(),
                sizes,
            });
        }
        Fig2 {
            curves,
            routed_slash24: table.routed_slash24(),
        }
    }

    /// Fetch a curve by label prefix.
    pub fn curve(&self, label: &str) -> &Curve {
        self.curves
            .iter()
            .find(|c| c.label == label)
            .expect("known label")
    }

    /// Render curves at 101 quantile sample points.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 2 — valid space per routed AS (/24 equivalents; routed total {:.0})\n",
            self.routed_slash24
        );
        for c in &self.curves {
            let pts: Vec<(f64, f64)> = (0..=100)
                .map(|i| {
                    let q = i as f64 / 100.0;
                    (q * c.sizes.len() as f64, c.quantile(q))
                })
                .collect();
            out.push_str(&crate::render::series(&c.label, &pts));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_asgraph::As2Org;
    use spoofwatch_bgp::{Announcement, AsPath};

    fn ann(prefix: &str, path: &[u32]) -> Announcement {
        Announcement::new(prefix.parse().unwrap(), AsPath::from(path.to_vec()))
    }

    #[test]
    fn naive_contained_in_full() {
        let anns = vec![
            ann("20.0.0.0/8", &[2, 1]),
            ann("20.0.0.0/8", &[3, 2, 1]),
            ann("30.0.0.0/8", &[1, 2]),
            ann("40.0.0.0/16", &[2, 3]),
        ];
        let c = Classifier::build(&anns, &As2Org::new());
        let fig = Fig2::compute(&c);
        assert_eq!(fig.curves.len(), 5);
        // Per-AS containment: rebuild unsorted values for the check.
        let table = c.table();
        let full = c.cones(InferenceMethod::FullCone, OrgMode::Plain).unwrap();
        let mut naive_units: HashMap<Asn, u64> = HashMap::new();
        for (prefix, info) in table.iter() {
            for asn in &info.on_path {
                *naive_units.entry(*asn).or_default() += prefix.slash24_units();
            }
        }
        for a in table.ases() {
            let n = naive_units.get(&a).copied().unwrap_or(0);
            assert!(
                n <= full.valid_units(a),
                "{a}: naive {n} > full {}",
                full.valid_units(a)
            );
        }
    }

    #[test]
    fn quantiles_and_coverage() {
        // AS1 originates 20/8; AS2 originates 30/8 whose announcement
        // is observed at AS1 (path "1 2"), giving AS1 the larger cone.
        let anns = vec![ann("20.0.0.0/8", &[1]), ann("30.0.0.0/8", &[1, 2])];
        let c = Classifier::build(&anns, &As2Org::new());
        let fig = Fig2::compute(&c);
        let full = fig.curve("Full Cone");
        // AS2 reaches both /8s (2→1 edge), AS1 only its own.
        assert_eq!(full.quantile(0.0), 65536.0);
        assert_eq!(full.quantile(1.0), 131072.0);
        assert_eq!(full.ases_covering(fig.routed_slash24, 1.0), 1);
        assert!(fig.render().contains("Full Cone (multi-AS orgs)"));
    }
}
