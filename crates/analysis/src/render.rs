//! Plain-text rendering helpers for the experiment harnesses.

/// Render a table: header row plus data rows, columns padded to the
/// widest cell, right-aligning cells that parse as numbers.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut width = vec![0usize; cols];
    for (i, h) in header.iter().enumerate() {
        width[i] = h.chars().count();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            width[i] = width[i].max(cell.chars().count());
        }
    }
    let is_numeric = |s: &str| {
        let t = s.trim_end_matches(['%', 'K', 'M', 'G', 'T', 'P']);
        !t.is_empty() && t.parse::<f64>().is_ok()
    };
    let mut out = String::new();
    let fmt_row = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = width[i].saturating_sub(cell.chars().count());
            if is_numeric(cell) {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            } else {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    fmt_row(&header_cells, &mut out);
    out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        fmt_row(row, &mut out);
    }
    out
}

/// Human-scale count: `1234567` → `"1.23M"`.
pub fn si(value: f64) -> String {
    let (v, suffix) = if value >= 1e15 {
        (value / 1e15, "P")
    } else if value >= 1e12 {
        (value / 1e12, "T")
    } else if value >= 1e9 {
        (value / 1e9, "G")
    } else if value >= 1e6 {
        (value / 1e6, "M")
    } else if value >= 1e3 {
        (value / 1e3, "K")
    } else {
        (value, "")
    };
    if suffix.is_empty() {
        format!("{v:.0}")
    } else {
        format!("{v:.2}{suffix}")
    }
}

/// Percentage with adaptive precision: tiny shares keep significance.
pub fn pct(p: f64) -> String {
    if p == 0.0 {
        "0%".to_owned()
    } else if p < 0.01 {
        format!("{p:.4}%")
    } else if p < 1.0 {
        format!("{p:.2}%")
    } else {
        format!("{p:.1}%")
    }
}

/// Render an `(x, y)` series as aligned columns — the experiment
/// binaries print figures as data series rather than pixels.
pub fn series(name: &str, points: &[(f64, f64)]) -> String {
    let mut out = format!("# series: {name}\n");
    for (x, y) in points {
        out.push_str(&format!("{x:>14.6}  {y:>14.6}\n"));
    }
    out
}

/// A coarse inline bar for histograms.
pub fn bar(fraction: f64, width: usize) -> String {
    let n = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    "#".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = table(
            &["name", "count"],
            &[
                vec!["alpha".into(), "5".into()],
                vec!["b".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn si_formatting() {
        assert_eq!(si(0.0), "0");
        assert_eq!(si(999.0), "999");
        assert_eq!(si(1_234_567.0), "1.23M");
        assert_eq!(si(31_630_000_000_000.0), "31.63T");
    }

    #[test]
    fn pct_precision() {
        assert_eq!(pct(0.0), "0%");
        assert_eq!(pct(0.003), "0.0030%");
        assert_eq!(pct(0.5), "0.50%");
        assert_eq!(pct(72.03), "72.0%");
    }

    #[test]
    fn bar_width() {
        assert_eq!(bar(0.5, 10), "#####");
        assert_eq!(bar(2.0, 10).len(), 10);
        assert_eq!(bar(-1.0, 10), "");
    }
}
