//! Figure 10: distribution of source and destination addresses across
//! the 256 /8 bins, per class.

use serde::Serialize;
use spoofwatch_net::addr::slash8_index;
use spoofwatch_net::{FlowRecord, TrafficClass};

/// Packet counts per /8 bin for sources and destinations of one class.
#[derive(Debug, Clone, Serialize)]
pub struct ClassAddrHist {
    /// The class.
    pub class: TrafficClass,
    /// Source-address histogram over /8 bins.
    pub src: Vec<u64>,
    /// Destination-address histogram over /8 bins.
    pub dst: Vec<u64>,
}

impl ClassAddrHist {
    fn new(class: TrafficClass) -> Self {
        ClassAddrHist {
            class,
            src: vec![0; 256],
            dst: vec![0; 256],
        }
    }

    /// A uniformity measure over a histogram: the fraction of total mass
    /// in the single largest bin. Uniform ≈ 1/occupied-bins; heavily
    /// concentrated → near 1.0.
    pub fn peak_fraction(hist: &[u64]) -> f64 {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        *hist.iter().max().expect("non-empty") as f64 / total as f64
    }

    /// Number of /8 bins with any packets.
    pub fn occupied_bins(hist: &[u64]) -> usize {
        hist.iter().filter(|&&v| v > 0).count()
    }
}

/// The Figure 10 dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// Histograms for Unrouted, Bogon, Invalid (the figure's panels),
    /// plus Valid for reference.
    pub hists: Vec<ClassAddrHist>,
}

impl Fig10 {
    /// Compute from a classified trace.
    pub fn compute(flows: &[FlowRecord], classes: &[TrafficClass]) -> Fig10 {
        assert_eq!(flows.len(), classes.len());
        let mut hists: Vec<ClassAddrHist> =
            TrafficClass::ALL.iter().map(|&c| ClassAddrHist::new(c)).collect();
        for (f, c) in flows.iter().zip(classes) {
            let h = &mut hists[c.index()];
            h.src[slash8_index(f.src) as usize] += f.packets as u64;
            h.dst[slash8_index(f.dst) as usize] += f.packets as u64;
        }
        Fig10 { hists }
    }

    /// Histogram for a class.
    pub fn class(&self, class: TrafficClass) -> &ClassAddrHist {
        &self.hists[class.index()]
    }

    /// Render the three illegitimate panels as sparse bin listings.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 10 — packets per /8 bin (sparse listing: bin count)\n",
        );
        for &class in &[TrafficClass::Unrouted, TrafficClass::Bogon, TrafficClass::Invalid] {
            let h = self.class(class);
            for (label, hist) in [("src", &h.src), ("dst", &h.dst)] {
                out.push_str(&format!("\n[{class} {label}]\n"));
                let total: u64 = hist.iter().sum();
                for (bin, &v) in hist.iter().enumerate() {
                    if v > 0 {
                        let frac = v as f64 / total.max(1) as f64;
                        out.push_str(&format!(
                            "{bin:>4}/8 {v:>12} {}\n",
                            crate::render::bar(frac, 40)
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_net::{parse_addr, Asn, Proto};

    fn flow(src: &str, dst: &str, packets: u32) -> FlowRecord {
        FlowRecord {
            ts: 0,
            src: parse_addr(src).unwrap(),
            dst: parse_addr(dst).unwrap(),
            proto: Proto::Udp,
            sport: 0,
            dport: 0,
            packets,
            bytes: packets as u64,
            pkt_size: 1,
            member: Asn(1),
            ttl: 0,
        }
    }

    #[test]
    fn binning_and_peaks() {
        let flows = vec![
            flow("10.1.1.1", "80.1.1.1", 6),
            flow("10.2.2.2", "80.2.2.2", 3),
            flow("192.168.0.1", "80.3.3.3", 1),
        ];
        let classes = vec![TrafficClass::Bogon; 3];
        let fig = Fig10::compute(&flows, &classes);
        let h = fig.class(TrafficClass::Bogon);
        assert_eq!(h.src[10], 9);
        assert_eq!(h.src[192], 1);
        assert_eq!(h.dst[80], 10);
        assert!((ClassAddrHist::peak_fraction(&h.src) - 0.9).abs() < 1e-9);
        assert_eq!(ClassAddrHist::occupied_bins(&h.src), 2);
        assert_eq!(ClassAddrHist::occupied_bins(&h.dst), 1);
        assert!((ClassAddrHist::peak_fraction(&h.dst) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_class_is_zero() {
        let fig = Fig10::compute(&[], &[]);
        let h = fig.class(TrafficClass::Invalid);
        assert_eq!(ClassAddrHist::peak_fraction(&h.src), 0.0);
        assert_eq!(ClassAddrHist::occupied_bins(&h.src), 0);
    }
}
