//! Figure 5: which members contribute to which illegitimate classes.

use serde::Serialize;
use spoofwatch_core::MemberBreakdown;
use spoofwatch_net::{Asn, TrafficClass};
use std::collections::HashSet;

/// The 8 regions of the three-set Venn diagram, as member percentages.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Fig5 {
    /// Members in no illegitimate class ("clean", paper: 18.02%).
    pub clean: f64,
    /// Bogon only (paper: 9.63%).
    pub bogon_only: f64,
    /// Unrouted only (paper: 2.2%).
    pub unrouted_only: f64,
    /// Invalid only (paper: 7.57%).
    pub invalid_only: f64,
    /// Bogon ∩ Unrouted, no Invalid (paper: 18.98%).
    pub bogon_unrouted: f64,
    /// Bogon ∩ Invalid, no Unrouted (paper: 15.54%).
    pub bogon_invalid: f64,
    /// Unrouted ∩ Invalid, no Bogon.
    pub unrouted_invalid: f64,
    /// All three (paper: 28.06%).
    pub all_three: f64,
    /// Total members considered.
    pub total_members: usize,
}

impl Fig5 {
    /// Compute region shares from a member breakdown; `exclude` removes
    /// members (e.g. stray-dominated ones) from consideration.
    pub fn compute(breakdown: &MemberBreakdown, exclude: &HashSet<Asn>) -> Fig5 {
        let b = breakdown.members_with(TrafficClass::Bogon);
        let u = breakdown.members_with(TrafficClass::Unrouted);
        let i = breakdown.members_with(TrafficClass::Invalid);
        let members: Vec<Asn> = breakdown
            .per_member
            .keys()
            .copied()
            .filter(|m| !exclude.contains(m))
            .collect();
        let total = members.len();
        let mut counts = [0usize; 8];
        for m in &members {
            let idx = (b.contains(m) as usize)
                | ((u.contains(m) as usize) << 1)
                | ((i.contains(m) as usize) << 2);
            counts[idx] += 1;
        }
        let p = |c: usize| {
            if total == 0 {
                0.0
            } else {
                100.0 * c as f64 / total as f64
            }
        };
        Fig5 {
            clean: p(counts[0b000]),
            bogon_only: p(counts[0b001]),
            unrouted_only: p(counts[0b010]),
            invalid_only: p(counts[0b100]),
            bogon_unrouted: p(counts[0b011]),
            bogon_invalid: p(counts[0b101]),
            unrouted_invalid: p(counts[0b110]),
            all_three: p(counts[0b111]),
            total_members: total,
        }
    }

    /// Percentage of members contributing to a class at all.
    pub fn class_total(&self, class: TrafficClass) -> f64 {
        match class {
            TrafficClass::Bogon => {
                self.bogon_only + self.bogon_unrouted + self.bogon_invalid + self.all_three
            }
            TrafficClass::Unrouted => {
                self.unrouted_only + self.bogon_unrouted + self.unrouted_invalid + self.all_three
            }
            TrafficClass::Invalid => {
                self.invalid_only + self.bogon_invalid + self.unrouted_invalid + self.all_three
            }
            TrafficClass::Valid => self.clean,
        }
    }

    /// Of the members contributing Unrouted, the share that also
    /// contributes Bogon or Invalid (paper: 96%).
    pub fn unrouted_also_other(&self) -> f64 {
        let unrouted = self.class_total(TrafficClass::Unrouted);
        if unrouted == 0.0 {
            0.0
        } else {
            100.0 * (unrouted - self.unrouted_only) / unrouted
        }
    }

    /// Render as a labelled region table.
    pub fn render(&self) -> String {
        let rows = vec![
            vec!["clean (none)".into(), format!("{:.2}%", self.clean)],
            vec!["Bogon only".into(), format!("{:.2}%", self.bogon_only)],
            vec!["Unrouted only".into(), format!("{:.2}%", self.unrouted_only)],
            vec!["Invalid only".into(), format!("{:.2}%", self.invalid_only)],
            vec!["Bogon ∩ Unrouted".into(), format!("{:.2}%", self.bogon_unrouted)],
            vec!["Bogon ∩ Invalid".into(), format!("{:.2}%", self.bogon_invalid)],
            vec!["Unrouted ∩ Invalid".into(), format!("{:.2}%", self.unrouted_invalid)],
            vec!["all three".into(), format!("{:.2}%", self.all_three)],
        ];
        format!(
            "Figure 5 — member participation across classes ({} members)\n{}",
            self.total_members,
            crate::render::table(&["region", "members"], &rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_net::{FlowRecord, Proto};

    fn flow(member: u32) -> FlowRecord {
        FlowRecord {
            ts: 0,
            src: 0,
            dst: 0,
            proto: Proto::Tcp,
            sport: 0,
            dport: 0,
            packets: 1,
            bytes: 1,
            pkt_size: 1,
            member: Asn(member),
            ttl: 0,
        }
    }

    #[test]
    fn regions_partition() {
        use TrafficClass::*;
        // m1: B+I; m2: clean; m3: U only; m4: all three.
        let flows = vec![
            flow(1), flow(1), flow(1),
            flow(2),
            flow(3),
            flow(4), flow(4), flow(4),
        ];
        let classes = vec![
            Bogon, Invalid, Valid,
            Valid,
            Unrouted,
            Bogon, Unrouted, Invalid,
        ];
        let breakdown = MemberBreakdown::from_classes(&flows, &classes);
        let fig = Fig5::compute(&breakdown, &HashSet::new());
        assert_eq!(fig.total_members, 4);
        assert_eq!(fig.clean, 25.0);
        assert_eq!(fig.bogon_invalid, 25.0);
        assert_eq!(fig.unrouted_only, 25.0);
        assert_eq!(fig.all_three, 25.0);
        let sum = fig.clean
            + fig.bogon_only
            + fig.unrouted_only
            + fig.invalid_only
            + fig.bogon_unrouted
            + fig.bogon_invalid
            + fig.unrouted_invalid
            + fig.all_three;
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(fig.class_total(Bogon), 50.0);
        assert_eq!(fig.class_total(Unrouted), 50.0);
        // Of unrouted members (m3, m4), half also contribute elsewhere.
        assert_eq!(fig.unrouted_also_other(), 50.0);
    }

    #[test]
    fn exclusion_removes_members() {
        use TrafficClass::*;
        let flows = vec![flow(1), flow(2)];
        let classes = vec![Bogon, Valid];
        let breakdown = MemberBreakdown::from_classes(&flows, &classes);
        let excl: HashSet<Asn> = [Asn(1)].into_iter().collect();
        let fig = Fig5::compute(&breakdown, &excl);
        assert_eq!(fig.total_members, 1);
        assert_eq!(fig.clean, 100.0);
    }
}
