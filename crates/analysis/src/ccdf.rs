//! Figure 4: CCDF of each member's Bogon/Unrouted/Invalid share.

use serde::Serialize;
use spoofwatch_core::MemberBreakdown;
use spoofwatch_net::TrafficClass;

/// CCDF points for one class: `(share_of_member_traffic, fraction_of_members
/// with at least that share)`.
#[derive(Debug, Clone, Serialize)]
pub struct ClassCcdf {
    /// The class this curve describes.
    pub class: TrafficClass,
    /// Sorted `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl ClassCcdf {
    /// Fraction of members whose share of this class is ≥ `x`.
    pub fn at(&self, x: f64) -> f64 {
        // Points are sorted ascending; the CCDF value at x is carried by
        // the smallest recorded share ≥ x (all larger shares count too).
        self.points
            .iter()
            .find(|(px, _)| *px >= x)
            .map(|&(_, y)| y)
            .unwrap_or(0.0)
    }

    /// The largest class share any member has (the paper: ~10% for
    /// Bogon, ~9% for Unrouted, ~100% for Invalid).
    pub fn max_share(&self) -> f64 {
        self.points.last().map(|&(x, _)| x).unwrap_or(0.0)
    }
}

/// The Figure 4 data: one CCDF per illegitimate class, over packet
/// shares.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4 {
    /// Curves for Bogon, Unrouted, Invalid.
    pub curves: Vec<ClassCcdf>,
}

impl Fig4 {
    /// Compute from a member breakdown.
    pub fn compute(breakdown: &MemberBreakdown) -> Fig4 {
        let members: Vec<_> = breakdown.per_member.keys().copied().collect();
        let n = members.len().max(1);
        let curves = TrafficClass::ILLEGITIMATE
            .iter()
            .map(|&class| {
                let mut shares: Vec<f64> = members
                    .iter()
                    .map(|m| breakdown.class_fraction(*m, class))
                    .collect();
                shares.sort_by(|a, b| a.total_cmp(b));
                // CCDF: at each distinct share x, fraction of members ≥ x.
                let mut points = Vec::new();
                let mut i = 0;
                while i < shares.len() {
                    let x = shares[i];
                    let ge = shares.len() - i;
                    points.push((x, ge as f64 / n as f64));
                    let mut j = i;
                    while j < shares.len() && shares[j] == x {
                        j += 1;
                    }
                    i = j;
                }
                ClassCcdf { class, points }
            })
            .collect();
        Fig4 { curves }
    }

    /// Find the curve for a class.
    pub fn curve(&self, class: TrafficClass) -> &ClassCcdf {
        self.curves
            .iter()
            .find(|c| c.class == class)
            .expect("all illegitimate classes present")
    }

    /// Render as data series.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 4 — CCDF of per-member class share of own traffic (packets)\n",
        );
        for c in &self.curves {
            out.push_str(&crate::render::series(
                &format!("{}", c.class),
                &c.points,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_net::{Asn, FlowRecord, Proto};

    fn flow(src_class_marker: u32, member: u32, packets: u32) -> FlowRecord {
        FlowRecord {
            ts: 0,
            src: src_class_marker,
            dst: 0,
            proto: Proto::Tcp,
            sport: 0,
            dport: 0,
            packets,
            bytes: packets as u64,
            pkt_size: 1,
            member: Asn(member),
            ttl: 0,
        }
    }

    #[test]
    fn ccdf_shapes() {
        // Member 1: 10% bogon; member 2: none.
        let flows = vec![
            flow(0, 1, 1),
            flow(1, 1, 9),
            flow(2, 2, 10),
        ];
        let classes = vec![
            TrafficClass::Bogon,
            TrafficClass::Valid,
            TrafficClass::Valid,
        ];
        let breakdown = MemberBreakdown::from_classes(&flows, &classes);
        let fig = Fig4::compute(&breakdown);
        let bogon = fig.curve(TrafficClass::Bogon);
        assert!((bogon.max_share() - 0.1).abs() < 1e-9);
        assert!((bogon.at(0.0) - 1.0).abs() < 1e-9, "everyone has ≥ 0");
        assert!((bogon.at(0.05) - 0.5).abs() < 1e-9, "half have ≥ 5%");
        let unrouted = fig.curve(TrafficClass::Unrouted);
        assert_eq!(unrouted.max_share(), 0.0);
    }

    #[test]
    fn render_contains_series() {
        let flows = vec![flow(0, 1, 1)];
        let classes = vec![TrafficClass::Bogon];
        let breakdown = MemberBreakdown::from_classes(&flows, &classes);
        let fig = Fig4::compute(&breakdown);
        let text = fig.render();
        assert!(text.contains("series: Bogon"));
        assert!(text.contains("series: Invalid"));
    }
}
