//! Figure 8a: packet-size CDFs per class.

use serde::Serialize;
use spoofwatch_net::{FlowRecord, TrafficClass};

/// Per-class packet-size distribution (packet-weighted).
#[derive(Debug, Clone, Serialize)]
pub struct Fig8a {
    /// One CDF per class in [`TrafficClass::ALL`] order: sorted
    /// `(size, cumulative_fraction)` points.
    pub cdfs: Vec<(TrafficClass, Vec<(u16, f64)>)>,
}

impl Fig8a {
    /// Compute from a classified trace.
    pub fn compute(flows: &[FlowRecord], classes: &[TrafficClass]) -> Fig8a {
        assert_eq!(flows.len(), classes.len());
        let mut hist: [std::collections::BTreeMap<u16, u64>; 4] = Default::default();
        for (f, c) in flows.iter().zip(classes) {
            *hist[c.index()].entry(f.pkt_size).or_insert(0) += f.packets as u64;
        }
        let cdfs = TrafficClass::ALL
            .iter()
            .map(|&class| {
                let h = &hist[class.index()];
                let total: u64 = h.values().sum();
                let mut acc = 0u64;
                let points = h
                    .iter()
                    .map(|(&size, &n)| {
                        acc += n;
                        (size, if total == 0 { 0.0 } else { acc as f64 / total as f64 })
                    })
                    .collect();
                (class, points)
            })
            .collect();
        Fig8a { cdfs }
    }

    /// Fraction of a class's packets at or below `size` bytes.
    pub fn fraction_le(&self, class: TrafficClass, size: u16) -> f64 {
        let (_, points) = &self.cdfs[class.index()];
        points
            .iter()
            .take_while(|(s, _)| *s <= size)
            .last()
            .map(|&(_, f)| f)
            .unwrap_or(0.0)
    }

    /// Render as data series.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 8a — packet size CDFs per class\n");
        for (class, points) in &self.cdfs {
            let series: Vec<(f64, f64)> =
                points.iter().map(|&(s, f)| (s as f64, f)).collect();
            out.push_str(&crate::render::series(&class.to_string(), &series));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_net::{Asn, Proto};

    fn flow(pkt_size: u16, packets: u32) -> FlowRecord {
        FlowRecord {
            ts: 0,
            src: 0,
            dst: 0,
            proto: Proto::Tcp,
            sport: 0,
            dport: 0,
            packets,
            bytes: packets as u64 * pkt_size as u64,
            pkt_size,
            member: Asn(1),
            ttl: 0,
        }
    }

    #[test]
    fn cdf_is_packet_weighted() {
        let flows = vec![flow(40, 9), flow(1500, 1), flow(50, 10)];
        let classes = vec![
            TrafficClass::Bogon,
            TrafficClass::Bogon,
            TrafficClass::Valid,
        ];
        let fig = Fig8a::compute(&flows, &classes);
        assert!((fig.fraction_le(TrafficClass::Bogon, 40) - 0.9).abs() < 1e-9);
        assert!((fig.fraction_le(TrafficClass::Bogon, 1500) - 1.0).abs() < 1e-9);
        assert_eq!(fig.fraction_le(TrafficClass::Bogon, 39), 0.0);
        assert!((fig.fraction_le(TrafficClass::Valid, 60) - 1.0).abs() < 1e-9);
        assert_eq!(fig.fraction_le(TrafficClass::Unrouted, 1500), 0.0);
    }

    #[test]
    fn render_has_all_classes() {
        let fig = Fig8a::compute(&[], &[]);
        let text = fig.render();
        for c in TrafficClass::ALL {
            assert!(text.contains(&format!("series: {c}")));
        }
    }
}
