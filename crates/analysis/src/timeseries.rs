//! Figure 8b: hourly sampled-packet time series per class.

use serde::Serialize;
use spoofwatch_net::{FlowRecord, TrafficClass};

/// Hourly packet counts per class.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8b {
    /// `series[class.index()][hour]` = sampled packets in that hour.
    pub series: [Vec<u64>; 4],
    /// Number of hourly bins.
    pub hours: usize,
}

impl Fig8b {
    /// Compute over the full trace duration.
    pub fn compute(flows: &[FlowRecord], classes: &[TrafficClass], duration: u32) -> Fig8b {
        assert_eq!(flows.len(), classes.len());
        let hours = (duration as usize).div_ceil(3600).max(1);
        let mut series: [Vec<u64>; 4] = [
            vec![0; hours],
            vec![0; hours],
            vec![0; hours],
            vec![0; hours],
        ];
        for (f, c) in flows.iter().zip(classes) {
            let h = (f.hour() as usize).min(hours - 1);
            series[c.index()][h] += f.packets as u64;
        }
        Fig8b { series, hours }
    }

    /// Restrict to one week (the paper plots week 2017-02-20, i.e. the
    /// third week of the trace).
    pub fn week(&self, week_index: usize) -> Fig8b {
        let start = week_index * 168;
        let end = (start + 168).min(self.hours);
        let slice = |v: &Vec<u64>| v[start.min(v.len())..end.min(v.len())].to_vec();
        Fig8b {
            series: [
                slice(&self.series[0]),
                slice(&self.series[1]),
                slice(&self.series[2]),
                slice(&self.series[3]),
            ],
            hours: end.saturating_sub(start),
        }
    }

    /// Coefficient of variation of a class's hourly volumes — regular
    /// traffic is smooth/diurnal (low), attack classes are bursty (high).
    pub fn burstiness(&self, class: TrafficClass) -> f64 {
        let s = &self.series[class.index()];
        let n = s.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = s.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = s
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Render as data series (hour index → packets).
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 8b — hourly sampled packets per class\n");
        for class in TrafficClass::ALL {
            let pts: Vec<(f64, f64)> = self.series[class.index()]
                .iter()
                .enumerate()
                .map(|(h, &v)| (h as f64, v as f64))
                .collect();
            out.push_str(&crate::render::series(&class.to_string(), &pts));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_net::{Asn, Proto};

    fn flow(ts: u32, packets: u32) -> FlowRecord {
        FlowRecord {
            ts,
            src: 0,
            dst: 0,
            proto: Proto::Udp,
            sport: 0,
            dport: 0,
            packets,
            bytes: packets as u64,
            pkt_size: 1,
            member: Asn(1),
        }
    }

    #[test]
    fn binning() {
        let flows = vec![flow(0, 5), flow(3599, 5), flow(3600, 7)];
        let classes = vec![TrafficClass::Valid; 3];
        let fig = Fig8b::compute(&flows, &classes, 7200);
        assert_eq!(fig.hours, 2);
        assert_eq!(fig.series[TrafficClass::Valid.index()], vec![10, 7]);
    }

    #[test]
    fn burstiness_orders() {
        // Smooth: same every hour; bursty: one spike.
        let mut flows = Vec::new();
        let mut classes = Vec::new();
        for h in 0..24 {
            flows.push(flow(h * 3600, 10));
            classes.push(TrafficClass::Valid);
        }
        flows.push(flow(5 * 3600, 200));
        classes.push(TrafficClass::Invalid);
        let fig = Fig8b::compute(&flows, &classes, 24 * 3600);
        assert!(fig.burstiness(TrafficClass::Valid) < 0.01);
        assert!(fig.burstiness(TrafficClass::Invalid) > 2.0);
        assert_eq!(fig.burstiness(TrafficClass::Bogon), 0.0);
    }

    #[test]
    fn week_slicing() {
        let flows = vec![flow(0, 1), flow(14 * 86_400 + 3600, 9)];
        let classes = vec![TrafficClass::Valid; 2];
        let fig = Fig8b::compute(&flows, &classes, 4 * 7 * 86_400);
        let w0 = fig.week(0);
        assert_eq!(w0.hours, 168);
        assert_eq!(w0.series[TrafficClass::Valid.index()][0], 1);
        let w2 = fig.week(2);
        assert_eq!(w2.series[TrafficClass::Valid.index()][1], 9);
    }
}
