//! Figure 8b: hourly sampled-packet time series per class, plus
//! [`WindowSeries`] — per-window telemetry assembled from a runner
//! rollup ring.

use serde::Serialize;
use spoofwatch_core::WindowAccum;
use spoofwatch_net::{FlowRecord, TrafficClass};

/// Hourly packet counts per class.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8b {
    /// `series[class.index()][hour]` = sampled packets in that hour.
    pub series: [Vec<u64>; 4],
    /// Number of hourly bins.
    pub hours: usize,
}

impl Fig8b {
    /// Compute over the full trace duration.
    pub fn compute(flows: &[FlowRecord], classes: &[TrafficClass], duration: u32) -> Fig8b {
        assert_eq!(flows.len(), classes.len());
        let hours = (duration as usize).div_ceil(3600).max(1);
        let mut series: [Vec<u64>; 4] = [
            vec![0; hours],
            vec![0; hours],
            vec![0; hours],
            vec![0; hours],
        ];
        for (f, c) in flows.iter().zip(classes) {
            let h = (f.hour() as usize).min(hours - 1);
            series[c.index()][h] += f.packets as u64;
        }
        Fig8b { series, hours }
    }

    /// Restrict to one week (the paper plots week 2017-02-20, i.e. the
    /// third week of the trace).
    pub fn week(&self, week_index: usize) -> Fig8b {
        let start = week_index * 168;
        let end = (start + 168).min(self.hours);
        let slice = |v: &Vec<u64>| v[start.min(v.len())..end.min(v.len())].to_vec();
        Fig8b {
            series: [
                slice(&self.series[0]),
                slice(&self.series[1]),
                slice(&self.series[2]),
                slice(&self.series[3]),
            ],
            hours: end.saturating_sub(start),
        }
    }

    /// Coefficient of variation of a class's hourly volumes — regular
    /// traffic is smooth/diurnal (low), attack classes are bursty (high).
    pub fn burstiness(&self, class: TrafficClass) -> f64 {
        let s = &self.series[class.index()];
        let n = s.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let mean = s.iter().sum::<u64>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = s
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Render as data series (hour index → packets).
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 8b — hourly sampled packets per class\n");
        for class in TrafficClass::ALL {
            let pts: Vec<(f64, f64)> = self.series[class.index()]
                .iter()
                .enumerate()
                .map(|(h, &v)| (h as f64, v as f64))
                .collect();
            out.push_str(&crate::render::series(&class.to_string(), &pts));
        }
        out
    }
}

/// One rollup window flattened for analysis and rendering.
#[derive(Debug, Clone, Serialize)]
pub struct WindowPoint {
    /// Window ordinal.
    pub window_index: u64,
    /// First chunk sequence covered by the window.
    pub start_chunk: u64,
    /// Chunks committed into the window.
    pub chunks: u64,
    /// Flows in the window's processed chunks.
    pub flows: u64,
    /// Per-class traffic shares (0.0–1.0) by [`TrafficClass::index`].
    /// All zero for an empty window — see [`WindowPoint::empty`].
    pub shares: [f64; 4],
    /// True when the window processed no flows. Its shares are reported
    /// as 0.0 (never NaN) but are *undefined*, not zero — renderers mark
    /// such windows and [`WindowSeries::caveats`] lists them.
    pub empty: bool,
    /// Decoder faults in the window, by `FaultKind::index`.
    pub faults: [u64; 5],
    /// Flows on which at least one method pair disagreed, when the run
    /// tracked disagreement.
    pub disagreements: Option<u64>,
}

/// A telemetry time series over the windows of one rollup ring: the
/// input to per-window class-share tables, fault-taxonomy views, and
/// window-over-window drift checks.
#[derive(Debug, Clone, Serialize)]
pub struct WindowSeries {
    /// One point per window, in window order.
    pub points: Vec<WindowPoint>,
}

impl WindowSeries {
    /// Build from ring windows (as returned by
    /// `spoofwatch_core::read_ring`, already index-sorted).
    pub fn from_windows(windows: &[WindowAccum]) -> WindowSeries {
        let points = windows
            .iter()
            .map(|w| WindowPoint {
                window_index: w.window_index,
                start_chunk: w.start_chunk,
                chunks: w.chunks,
                flows: w.total_flows(),
                shares: w.class_shares(),
                empty: w.total_flows() == 0,
                faults: w.fault_counts,
                disagreements: w
                    .disagreement
                    .as_ref()
                    .map(|m| m.pairs.iter().map(|p| p.disagreements()).sum()),
            })
            .collect();
        WindowSeries { points }
    }

    /// Total flows across all windows.
    pub fn total_flows(&self) -> u64 {
        self.points.iter().map(|p| p.flows).sum()
    }

    /// Data-quality caveats for this series: one line per empty window,
    /// whose shares are placeholders (0.0), not measurements.
    pub fn caveats(&self) -> Vec<String> {
        self.points
            .iter()
            .filter(|p| p.empty)
            .map(|p| {
                format!(
                    "window {}: zero processed flows — class shares reported as 0.0 are \
                     undefined, not measured",
                    p.window_index
                )
            })
            .collect()
    }

    /// Window-over-window share drifts beyond `threshold`, as
    /// `(window_index, class, delta)` — the offline counterpart of the
    /// runner's live drift watch. Empty windows neither fire nor move
    /// the baseline.
    pub fn drift(&self, threshold: f64) -> Vec<(u64, TrafficClass, f64)> {
        let mut out = Vec::new();
        let mut prev: Option<[f64; 4]> = None;
        for p in &self.points {
            if p.flows == 0 {
                continue;
            }
            if let Some(prev) = prev {
                for class in TrafficClass::ALL {
                    let delta = p.shares[class.index()] - prev[class.index()];
                    if delta.abs() > threshold {
                        out.push((p.window_index, class, delta));
                    }
                }
            }
            prev = Some(p.shares);
        }
        out
    }

    /// Render as an aligned table: one row per window with class
    /// shares, fault total, and disagreement count.
    pub fn render_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                let share = |i: usize| {
                    if p.empty {
                        "-".to_string()
                    } else {
                        format!("{:.4}", p.shares[i])
                    }
                };
                vec![
                    p.window_index.to_string(),
                    p.start_chunk.to_string(),
                    p.chunks.to_string(),
                    p.flows.to_string(),
                    share(0),
                    share(1),
                    share(2),
                    share(3),
                    p.faults.iter().sum::<u64>().to_string(),
                    p.disagreements
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "-".to_string()),
                ]
            })
            .collect();
        let mut out = crate::render::table(
            &[
                "window", "start", "chunks", "flows", "bogon", "unrouted", "invalid", "valid",
                "faults", "disagree",
            ],
            &rows,
        );
        for caveat in self.caveats() {
            out.push_str("note: ");
            out.push_str(&caveat);
            out.push('\n');
        }
        out
    }

    /// Render as CSV with a header row, shares in full precision so the
    /// output is machine-comparable across runs.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "window,start_chunk,chunks,flows,share_bogon,share_unrouted,share_invalid,\
             share_valid,faults,disagreements,empty\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                p.window_index,
                p.start_chunk,
                p.chunks,
                p.flows,
                p.shares[0],
                p.shares[1],
                p.shares[2],
                p.shares[3],
                p.faults.iter().sum::<u64>(),
                p.disagreements
                    .map(|d| d.to_string())
                    .unwrap_or_default(),
                u8::from(p.empty),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_net::{Asn, Proto};

    fn flow(ts: u32, packets: u32) -> FlowRecord {
        FlowRecord {
            ts,
            src: 0,
            dst: 0,
            proto: Proto::Udp,
            sport: 0,
            dport: 0,
            packets,
            bytes: packets as u64,
            pkt_size: 1,
            member: Asn(1),
            ttl: 0,
        }
    }

    #[test]
    fn binning() {
        let flows = vec![flow(0, 5), flow(3599, 5), flow(3600, 7)];
        let classes = vec![TrafficClass::Valid; 3];
        let fig = Fig8b::compute(&flows, &classes, 7200);
        assert_eq!(fig.hours, 2);
        assert_eq!(fig.series[TrafficClass::Valid.index()], vec![10, 7]);
    }

    #[test]
    fn burstiness_orders() {
        // Smooth: same every hour; bursty: one spike.
        let mut flows = Vec::new();
        let mut classes = Vec::new();
        for h in 0..24 {
            flows.push(flow(h * 3600, 10));
            classes.push(TrafficClass::Valid);
        }
        flows.push(flow(5 * 3600, 200));
        classes.push(TrafficClass::Invalid);
        let fig = Fig8b::compute(&flows, &classes, 24 * 3600);
        assert!(fig.burstiness(TrafficClass::Valid) < 0.01);
        assert!(fig.burstiness(TrafficClass::Invalid) > 2.0);
        assert_eq!(fig.burstiness(TrafficClass::Bogon), 0.0);
    }

    #[test]
    fn week_slicing() {
        let flows = vec![flow(0, 1), flow(14 * 86_400 + 3600, 9)];
        let classes = vec![TrafficClass::Valid; 2];
        let fig = Fig8b::compute(&flows, &classes, 4 * 7 * 86_400);
        let w0 = fig.week(0);
        assert_eq!(w0.hours, 168);
        assert_eq!(w0.series[TrafficClass::Valid.index()][0], 1);
        let w2 = fig.week(2);
        assert_eq!(w2.series[TrafficClass::Valid.index()][1], 9);
    }

    fn window(index: u64, class_flows: [u64; 4]) -> WindowAccum {
        let mut w = WindowAccum::start(index, index * 4);
        w.chunks = 4;
        w.class_flows = class_flows;
        w
    }

    #[test]
    fn window_series_flattens_shares_and_detects_drift() {
        let windows = vec![
            window(0, [0, 0, 0, 100]),
            window(1, [5, 0, 0, 95]),
            window(2, [0, 0, 0, 0]), // empty: skipped by the drift watch
            window(3, [60, 0, 0, 40]),
        ];
        let series = WindowSeries::from_windows(&windows);
        assert_eq!(series.points.len(), 4);
        assert_eq!(series.total_flows(), 300);
        assert_eq!(series.points[0].shares, [0.0, 0.0, 0.0, 1.0]);
        assert_eq!(series.points[2].shares, [0.0; 4]);
        assert!(series.points[2].empty && !series.points[0].empty);
        assert_eq!(series.points[0].disagreements, None);
        let caveats = series.caveats();
        assert_eq!(caveats.len(), 1);
        assert!(caveats[0].starts_with("window 2:"));

        // 0→1 drifts by 0.05; 1→3 (window 2 is empty) by 0.55.
        assert!(series.drift(0.60).is_empty());
        let breaches = series.drift(0.30);
        assert_eq!(breaches.len(), 2);
        assert!(breaches
            .iter()
            .any(|(w, c, d)| *w == 3 && *c == TrafficClass::Bogon && *d > 0.5));
        assert!(breaches
            .iter()
            .any(|(w, c, d)| *w == 3 && *c == TrafficClass::Valid && *d < -0.5));

        let table = series.render_table();
        assert!(table.contains("window"));
        assert!(table.contains("0.9500"));
        assert!(table.contains("note: window 2: zero processed flows"));
        let csv = series.render_csv();
        assert_eq!(csv.lines().count(), 5, "header + one row per window");
        assert!(csv.lines().next().unwrap().ends_with(",empty"));
        assert!(csv.lines().nth(1).unwrap().starts_with("0,0,4,100,"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",0"));
        assert!(csv.lines().nth(3).unwrap().ends_with(",1"));
    }
}
