//! The §2.2 operator survey: the paper's early-2017 questionnaire across
//! 12 operator mailing lists (84 responding networks). These are fixed
//! reference numbers — reproduced as data, not simulated — used by the
//! experiment harness to print the section's table and to sanity-check
//! the generated filtering-profile mix against practice.

use serde::Serialize;

/// The published survey shares (fractions in `[0, 1]`).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OperatorSurvey {
    /// Responding networks.
    pub respondents: u32,
    /// Suffered spoofing-related attacks preventable by filtering.
    pub suffered_attacks: f64,
    /// Actively complained to non-filtering peers.
    pub complained_to_peers: f64,
    /// Do not check source validity at all.
    pub no_validation: f64,
    /// Filter well-known non-routable ranges at ingress.
    pub ingress_bogon_filtering: f64,
    /// Apply customer-specific ingress filters.
    pub ingress_customer_filters: f64,
    /// Do not filter ingress at all.
    pub no_ingress_filtering: f64,
    /// Customer-AS-specific egress filters.
    pub egress_customer_filters: f64,
    /// No egress filtering.
    pub no_egress_filtering: f64,
    /// Egress-filter only non-routable space.
    pub egress_bogon_only: f64,
    /// Filter own-origin traffic before the egress router.
    pub filter_own_traffic: f64,
}

/// The survey as reported in §2.2.
pub const SURVEY: OperatorSurvey = OperatorSurvey {
    respondents: 84,
    suffered_attacks: 0.70,
    complained_to_peers: 0.50,
    no_validation: 0.24,
    ingress_bogon_filtering: 0.70,
    ingress_customer_filters: 0.20,
    no_ingress_filtering: 0.07,
    egress_customer_filters: 0.50,
    no_egress_filtering: 0.24,
    egress_bogon_only: 0.26,
    filter_own_traffic: 0.65,
};

/// Render the survey as a table.
pub fn render() -> String {
    let s = SURVEY;
    let pct = |f: f64| format!("{:.0}%", 100.0 * f);
    let rows = vec![
        vec!["respondents".into(), s.respondents.to_string()],
        vec!["suffered spoofing attacks".into(), pct(s.suffered_attacks)],
        vec!["complained to peers".into(), pct(s.complained_to_peers)],
        vec!["no source validation".into(), pct(s.no_validation)],
        vec!["ingress bogon filtering".into(), pct(s.ingress_bogon_filtering)],
        vec!["ingress customer filters".into(), pct(s.ingress_customer_filters)],
        vec!["no ingress filtering".into(), pct(s.no_ingress_filtering)],
        vec!["egress customer filters".into(), pct(s.egress_customer_filters)],
        vec!["no egress filtering".into(), pct(s.no_egress_filtering)],
        vec!["egress bogon only".into(), pct(s.egress_bogon_only)],
        vec!["filter own traffic pre-egress".into(), pct(s.filter_own_traffic)],
    ];
    format!(
        "§2.2 operator survey (as published)\n{}",
        crate::render::table(&["item", "share"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_probabilities() {
        let s = SURVEY;
        for v in [
            s.suffered_attacks,
            s.complained_to_peers,
            s.no_validation,
            s.ingress_bogon_filtering,
            s.ingress_customer_filters,
            s.no_ingress_filtering,
            s.egress_customer_filters,
            s.no_egress_filtering,
            s.egress_bogon_only,
            s.filter_own_traffic,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(s.respondents, 84);
    }

    #[test]
    fn renders() {
        let t = render();
        assert!(t.contains("84"));
        assert!(t.contains("no egress filtering"));
    }
}
