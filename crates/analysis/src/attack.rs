//! Figure 11 and §7: attack patterns — selective vs. random spoofing,
//! amplifier strategies, and the reflection loop.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use spoofwatch_internet::Internet;
use spoofwatch_net::flow::ports;
use spoofwatch_net::{Asn, FlowRecord, Proto, TrafficClass};
use std::collections::{HashMap, HashSet};

/// Figure 11a: per-destination ratio of distinct source IPs to packets.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11a {
    /// Histogram per class: 10 bins over ratio `[0, 1]`, as fractions of
    /// qualifying destinations.
    pub bins: HashMap<TrafficClass, [f64; 10]>,
    /// Number of qualifying destinations per class (paper: 19.7K Bogon,
    /// 8.4K Unrouted, 9.7K Invalid).
    pub destinations: HashMap<TrafficClass, usize>,
    /// Minimum sampled packets for a destination to qualify (paper: 50).
    pub min_packets: u64,
}

impl Fig11a {
    /// Compute over the illegitimate classes.
    pub fn compute(
        flows: &[FlowRecord],
        classes: &[TrafficClass],
        min_packets: u64,
    ) -> Fig11a {
        assert_eq!(flows.len(), classes.len());
        let mut per_dst: HashMap<(TrafficClass, u32), (HashSet<u32>, u64)> = HashMap::new();
        for (f, c) in flows.iter().zip(classes) {
            if !c.is_illegitimate() {
                continue;
            }
            let e = per_dst.entry((*c, f.dst)).or_default();
            e.0.insert(f.src);
            e.1 += f.packets as u64;
        }
        let mut bins: HashMap<TrafficClass, [f64; 10]> = HashMap::new();
        let mut destinations: HashMap<TrafficClass, usize> = HashMap::new();
        let mut counts: HashMap<TrafficClass, [u64; 10]> = HashMap::new();
        for ((class, _dst), (srcs, pkts)) in &per_dst {
            if *pkts <= min_packets {
                continue;
            }
            let ratio = srcs.len() as f64 / *pkts as f64;
            let bin = ((ratio * 10.0) as usize).min(9);
            counts.entry(*class).or_default()[bin] += 1;
            *destinations.entry(*class).or_default() += 1;
        }
        for (class, row) in counts {
            let total: u64 = row.iter().sum();
            let mut frac = [0.0; 10];
            if total > 0 {
                for (i, &n) in row.iter().enumerate() {
                    frac[i] = n as f64 / total as f64;
                }
            }
            bins.insert(class, frac);
        }
        Fig11a {
            bins,
            destinations,
            min_packets,
        }
    }

    /// Fraction of a class's destinations in the rightmost bin (every
    /// packet from a distinct source — random spoofing; paper: ~90% for
    /// Unrouted).
    pub fn unique_source_fraction(&self, class: TrafficClass) -> f64 {
        self.bins.get(&class).map(|b| b[9]).unwrap_or(0.0)
    }

    /// Fraction in the leftmost bin (few sources, many packets —
    /// selective spoofing / amplification signature).
    pub fn few_source_fraction(&self, class: TrafficClass) -> f64 {
        self.bins.get(&class).map(|b| b[0]).unwrap_or(0.0)
    }

    /// Render as a per-class bin table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 11a — #SRC IPs / #packets per destination (dst > {} sampled pkts)\n",
            self.min_packets
        );
        let mut header = vec!["class".to_owned(), "dsts".to_owned()];
        header.extend((0..10).map(|i| format!("{:.1}", (i as f64 + 1.0) / 10.0)));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = TrafficClass::ILLEGITIMATE
            .iter()
            .map(|&c| {
                let mut row = vec![
                    c.to_string(),
                    self.destinations.get(&c).copied().unwrap_or(0).to_string(),
                ];
                let bins = self.bins.get(&c).copied().unwrap_or([0.0; 10]);
                row.extend(bins.iter().map(|b| format!("{b:.3}")));
                row
            })
            .collect();
        out.push_str(&crate::render::table(&header_refs, &rows));
        out
    }
}

/// One NTP amplification victim's view (Figure 11b).
#[derive(Debug, Clone, Serialize)]
pub struct VictimProfile {
    /// The spoofed victim address (source of the triggers).
    pub victim: u32,
    /// Total trigger packets.
    pub trigger_packets: u64,
    /// Amplifiers contacted, with trigger packets, descending.
    pub amplifiers: Vec<(u32, u64)>,
}

/// Figure 11b + the §7 NTP statistics.
#[derive(Debug, Clone, Serialize)]
pub struct NtpAnalysis {
    /// Top victims by trigger volume (the paper plots the top 10).
    pub victims: Vec<VictimProfile>,
    /// Share of Invalid NTP trigger packets emitted by the single
    /// largest member (paper: 91.94%).
    pub top_member_share: f64,
    /// Share emitted by the top five members (paper: 97.86%).
    pub top5_member_share: f64,
    /// Members emitting triggers (paper: 44).
    pub emitting_members: usize,
    /// Distinct victim addresses (paper: 7,925).
    pub distinct_victims: usize,
    /// Distinct amplifiers contacted (paper: 24,328).
    pub contacted_amplifiers: usize,
}

impl NtpAnalysis {
    /// Identify Invalid UDP/123 triggers and profile the top victims.
    pub fn compute(flows: &[FlowRecord], classes: &[TrafficClass], top_n: usize) -> NtpAnalysis {
        assert_eq!(flows.len(), classes.len());
        let mut by_victim: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
        let mut by_member: HashMap<Asn, u64> = HashMap::new();
        let mut total = 0u64;
        for (f, c) in flows.iter().zip(classes) {
            if *c != TrafficClass::Invalid || f.proto != Proto::Udp || f.dport != ports::NTP {
                continue;
            }
            *by_victim.entry(f.src).or_default().entry(f.dst).or_default() +=
                f.packets as u64;
            *by_member.entry(f.member).or_default() += f.packets as u64;
            total += f.packets as u64;
        }
        let contacted: HashSet<u32> = by_victim
            .values()
            .flat_map(|amps| amps.keys().copied())
            .collect();
        let mut victims: Vec<VictimProfile> = by_victim
            .into_iter()
            .map(|(victim, amps)| {
                let trigger_packets = amps.values().sum();
                let mut amplifiers: Vec<(u32, u64)> = amps.into_iter().collect();
                amplifiers.sort_by_key(|&(a, n)| (std::cmp::Reverse(n), a));
                VictimProfile {
                    victim,
                    trigger_packets,
                    amplifiers,
                }
            })
            .collect();
        victims.sort_by_key(|v| (std::cmp::Reverse(v.trigger_packets), v.victim));
        let distinct_victims = victims.len();
        victims.truncate(top_n);
        let mut member_vols: Vec<u64> = by_member.values().copied().collect();
        member_vols.sort_unstable_by_key(|&v| std::cmp::Reverse(v));
        let share = |k: usize| {
            if total == 0 {
                0.0
            } else {
                member_vols.iter().take(k).sum::<u64>() as f64 / total as f64
            }
        };
        NtpAnalysis {
            victims,
            top_member_share: share(1),
            top5_member_share: share(5),
            emitting_members: member_vols.len(),
            distinct_victims,
            contacted_amplifiers: contacted.len(),
        }
    }

    /// Render Figure 11b as per-victim ranked series.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 11b — ranked amplifiers per top victim\n");
        for (i, v) in self.victims.iter().enumerate() {
            let pts: Vec<(f64, f64)> = v
                .amplifiers
                .iter()
                .enumerate()
                .map(|(rank, &(_, n))| (rank as f64, n as f64))
                .collect();
            out.push_str(&crate::render::series(
                &format!("top{:02} ({} amplifiers)", i + 1, v.amplifiers.len()),
                &pts,
            ));
        }
        out.push_str(&format!(
            "\n§7 NTP stats: top member share {:.2}%, top-5 {:.2}%, members {}, victims {}, amplifiers {}\n",
            100.0 * self.top_member_share,
            100.0 * self.top5_member_share,
            self.emitting_members,
            self.distinct_victims,
            self.contacted_amplifiers,
        ));
        out
    }
}

/// Figure 11c: hourly trigger vs. response volumes for matched
/// (victim, amplifier) pairs.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11c {
    /// Hour index → (trigger packets, trigger bytes, response packets,
    /// response bytes).
    pub hourly: Vec<(u64, u64, u64, u64)>,
    /// Number of matched (victim, amplifier) pairs.
    pub matched_pairs: usize,
    /// Byte amplification factor over the matched pairs.
    pub amplification: f64,
}

impl Fig11c {
    /// Match triggers (Invalid, UDP→123) with responses (UDP sport 123
    /// toward the victim) and build the time series.
    pub fn compute(flows: &[FlowRecord], classes: &[TrafficClass], duration: u32) -> Fig11c {
        assert_eq!(flows.len(), classes.len());
        let mut trigger_pairs: HashSet<(u32, u32)> = HashSet::new(); // (victim, amp)
        for (f, c) in flows.iter().zip(classes) {
            if *c == TrafficClass::Invalid && f.proto == Proto::Udp && f.dport == ports::NTP {
                trigger_pairs.insert((f.src, f.dst));
            }
        }
        let mut response_pairs: HashSet<(u32, u32)> = HashSet::new();
        for f in flows {
            if f.proto == Proto::Udp && f.sport == ports::NTP {
                let pair = (f.dst, f.src);
                if trigger_pairs.contains(&pair) {
                    response_pairs.insert(pair);
                }
            }
        }
        let hours = (duration as usize).div_ceil(3600).max(1);
        let mut hourly = vec![(0u64, 0u64, 0u64, 0u64); hours];
        let mut trig_bytes = 0u64;
        let mut resp_bytes = 0u64;
        for (f, c) in flows.iter().zip(classes) {
            let h = (f.hour() as usize).min(hours - 1);
            if *c == TrafficClass::Invalid
                && f.proto == Proto::Udp
                && f.dport == ports::NTP
                && response_pairs.contains(&(f.src, f.dst))
            {
                hourly[h].0 += f.packets as u64;
                hourly[h].1 += f.bytes;
                trig_bytes += f.bytes;
            } else if f.proto == Proto::Udp
                && f.sport == ports::NTP
                && response_pairs.contains(&(f.dst, f.src))
            {
                hourly[h].2 += f.packets as u64;
                hourly[h].3 += f.bytes;
                resp_bytes += f.bytes;
            }
        }
        Fig11c {
            hourly,
            matched_pairs: response_pairs.len(),
            amplification: if trig_bytes == 0 {
                0.0
            } else {
                resp_bytes as f64 / trig_bytes as f64
            },
        }
    }

    /// Render as four data series.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 11c — trigger vs response for {} matched pairs (amplification {:.1}x)\n",
            self.matched_pairs, self.amplification
        );
        let pick = |f: fn(&(u64, u64, u64, u64)) -> u64| -> Vec<(f64, f64)> {
            self.hourly
                .iter()
                .enumerate()
                .filter(|(_, v)| f(v) > 0)
                .map(|(h, v)| (h as f64, f(v) as f64))
                .collect()
        };
        out.push_str(&crate::render::series("pkts to amplifier", &pick(|v| v.0)));
        out.push_str(&crate::render::series("bytes to amplifier", &pick(|v| v.1)));
        out.push_str(&crate::render::series("pkts from amplifier", &pick(|v| v.2)));
        out.push_str(&crate::render::series("bytes from amplifier", &pick(|v| v.3)));
        out
    }
}

/// A ZMap-style scan of the NTP amplifier population: a random subset of
/// the true servers at the given detection coverage — used for the §7
/// comparison of contacted amplifiers against scan snapshots.
pub fn zmap_scan(net: &Internet, seed: u64, coverage: f64) -> HashSet<u32> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2ab5);
    net.ntp_amplifiers
        .iter()
        .filter(|_| rng.random_bool(coverage.clamp(0.0, 1.0)))
        .map(|&(_, addr)| addr)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn flow(
        src: u32,
        dst: u32,
        proto: Proto,
        sport: u16,
        dport: u16,
        packets: u32,
        member: u32,
        ts: u32,
    ) -> FlowRecord {
        FlowRecord {
            ts,
            src,
            dst,
            proto,
            sport,
            dport,
            packets,
            bytes: packets as u64 * 50,
            pkt_size: 50,
            member: Asn(member),
            ttl: 0,
        }
    }

    #[test]
    fn fig11a_separates_random_from_selective() {
        let mut flows = Vec::new();
        let mut classes = Vec::new();
        // Random spoofing: 100 packets to dst 1, all distinct sources.
        for i in 0..100 {
            flows.push(flow(1000 + i, 1, Proto::Tcp, 1, 80, 1, 5, 0));
            classes.push(TrafficClass::Unrouted);
        }
        // Selective: 100 packets to dst 2 from one source.
        flows.push(flow(7, 2, Proto::Udp, 1, 123, 100, 5, 0));
        classes.push(TrafficClass::Invalid);
        let fig = Fig11a::compute(&flows, &classes, 50);
        assert!((fig.unique_source_fraction(TrafficClass::Unrouted) - 1.0).abs() < 1e-9);
        assert!((fig.few_source_fraction(TrafficClass::Invalid) - 1.0).abs() < 1e-9);
        assert_eq!(fig.destinations[&TrafficClass::Unrouted], 1);
        // Destinations below the packet threshold are excluded.
        let strict = Fig11a::compute(&flows, &classes, 1000);
        assert!(strict.destinations.is_empty());
    }

    #[test]
    fn ntp_analysis_profiles_victims() {
        let mut flows = Vec::new();
        let mut classes = Vec::new();
        // Victim 42: 3 amplifiers with skewed load, from member 5.
        for (amp, n) in [(100u32, 50u32), (101, 30), (102, 20)] {
            flows.push(flow(42, amp, Proto::Udp, 5555, 123, n, 5, 0));
            classes.push(TrafficClass::Invalid);
        }
        // Victim 43: smaller, from member 6.
        flows.push(flow(43, 100, Proto::Udp, 5555, 123, 10, 6, 0));
        classes.push(TrafficClass::Invalid);
        // Non-NTP invalid noise must be ignored.
        flows.push(flow(44, 1, Proto::Tcp, 1, 80, 99, 6, 0));
        classes.push(TrafficClass::Invalid);
        let a = NtpAnalysis::compute(&flows, &classes, 10);
        assert_eq!(a.victims.len(), 2);
        assert_eq!(a.victims[0].victim, 42);
        assert_eq!(a.victims[0].trigger_packets, 100);
        assert_eq!(a.victims[0].amplifiers[0], (100, 50));
        assert_eq!(a.distinct_victims, 2);
        assert_eq!(a.contacted_amplifiers, 3);
        assert_eq!(a.emitting_members, 2);
        assert!((a.top_member_share - 100.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn fig11c_matches_pairs_and_measures_amplification() {
        let mut flows = Vec::new();
        let mut classes = Vec::new();
        // Trigger victim 42 → amp 100 at hour 0.
        flows.push(flow(42, 100, Proto::Udp, 5555, 123, 10, 5, 100));
        classes.push(TrafficClass::Invalid);
        // Response amp 100 → victim 42, 10× bytes, hour 0.
        let mut resp = flow(100, 42, Proto::Udp, 123, 5555, 10, 9, 200);
        resp.bytes = 5000;
        resp.pkt_size = 500;
        flows.push(resp);
        classes.push(TrafficClass::Valid);
        // An unmatched trigger (no response) must not enter the series.
        flows.push(flow(77, 101, Proto::Udp, 5555, 123, 99, 5, 100));
        classes.push(TrafficClass::Invalid);
        let fig = Fig11c::compute(&flows, &classes, 7200);
        assert_eq!(fig.matched_pairs, 1);
        assert_eq!(fig.hourly[0].0, 10);
        assert_eq!(fig.hourly[0].2, 10);
        assert!((fig.amplification - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zmap_scan_coverage() {
        let net = spoofwatch_internet::Internet::generate(
            spoofwatch_internet::InternetConfig::tiny(2),
        );
        let full = zmap_scan(&net, 1, 1.0);
        let none = zmap_scan(&net, 1, 0.0);
        let half = zmap_scan(&net, 1, 0.5);
        let distinct: HashSet<u32> = net.ntp_amplifiers.iter().map(|&(_, a)| a).collect();
        assert_eq!(full.len(), distinct.len());
        assert!(none.is_empty());
        assert!(half.len() < full.len() && !half.is_empty());
        assert_eq!(zmap_scan(&net, 1, 0.5), half, "deterministic");
    }
}
