//! Ground-truth scoring of the classifier — an extension the paper could
//! not do (the synthetic trace knows which flows were actually spoofed).

use serde::Serialize;
use spoofwatch_ixp::TrafficLabel;
use spoofwatch_net::{FlowRecord, TrafficClass};
use std::collections::BTreeMap;

/// Confusion structure over ground-truth labels and assigned classes.
#[derive(Debug, Clone, Serialize)]
pub struct Evaluation {
    /// Packets per (label, class) cell.
    pub matrix: BTreeMap<String, [u64; 4]>,
    /// Packet-level recall of spoofed traffic (spoofed labels flagged
    /// illegitimate).
    pub spoofed_recall: f64,
    /// Packet-level false-positive rate over genuinely ordinary traffic
    /// (Regular/NtpResponse flagged illegitimate).
    pub clean_fpr: f64,
}

impl Evaluation {
    /// Score a classified trace against its labels.
    pub fn compute(
        flows: &[FlowRecord],
        labels: &[TrafficLabel],
        classes: &[TrafficClass],
    ) -> Evaluation {
        assert_eq!(flows.len(), labels.len());
        assert_eq!(flows.len(), classes.len());
        let mut matrix: BTreeMap<String, [u64; 4]> = BTreeMap::new();
        let (mut tp, mut fnn, mut fp, mut tn) = (0u64, 0u64, 0u64, 0u64);
        for ((f, label), class) in flows.iter().zip(labels).zip(classes) {
            matrix.entry(format!("{label:?}")).or_default()[class.index()] +=
                f.packets as u64;
            let flagged = class.is_illegitimate();
            if label.is_spoofed() {
                if flagged {
                    tp += f.packets as u64;
                } else {
                    fnn += f.packets as u64;
                }
            } else if matches!(label, TrafficLabel::Regular | TrafficLabel::NtpResponse) {
                if flagged {
                    fp += f.packets as u64;
                } else {
                    tn += f.packets as u64;
                }
            }
        }
        let div = |a: u64, b: u64| if b == 0 { 0.0 } else { a as f64 / b as f64 };
        Evaluation {
            matrix,
            spoofed_recall: div(tp, tp + fnn),
            clean_fpr: div(fp, fp + tn),
        }
    }

    /// Render the confusion matrix.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .matrix
            .iter()
            .map(|(label, row)| {
                let mut cells = vec![label.clone()];
                cells.extend(row.iter().map(|v| v.to_string()));
                cells
            })
            .collect();
        format!(
            "Ground-truth evaluation (packets)\n{}\nspoofed recall {:.2}%, clean FPR {:.3}%\n",
            crate::render::table(
                &["label", "Bogon", "Unrouted", "Invalid", "Valid"],
                &rows
            ),
            100.0 * self.spoofed_recall,
            100.0 * self.clean_fpr,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spoofwatch_net::{Asn, Proto};

    fn flow(packets: u32) -> FlowRecord {
        FlowRecord {
            ts: 0,
            src: 0,
            dst: 0,
            proto: Proto::Udp,
            sport: 0,
            dport: 0,
            packets,
            bytes: packets as u64,
            pkt_size: 1,
            member: Asn(1),
            ttl: 0,
        }
    }

    #[test]
    fn recall_and_fpr() {
        let flows = vec![flow(10), flow(10), flow(10), flow(10)];
        let labels = vec![
            TrafficLabel::RandomSpoofFlood, // caught
            TrafficLabel::NtpTrigger,       // missed
            TrafficLabel::Regular,          // clean, clean
            TrafficLabel::Regular,          // clean, flagged
        ];
        let classes = vec![
            TrafficClass::Unrouted,
            TrafficClass::Valid,
            TrafficClass::Valid,
            TrafficClass::Invalid,
        ];
        let e = Evaluation::compute(&flows, &labels, &classes);
        assert!((e.spoofed_recall - 0.5).abs() < 1e-9);
        assert!((e.clean_fpr - 0.5).abs() < 1e-9);
        assert_eq!(e.matrix["Regular"][TrafficClass::Invalid.index()], 10);
        assert!(e.render().contains("spoofed recall 50.00%"));
    }

    #[test]
    fn stray_labels_do_not_count_as_fp() {
        let flows = vec![flow(10)];
        let labels = vec![TrafficLabel::NatLeak];
        let classes = vec![TrafficClass::Bogon];
        let e = Evaluation::compute(&flows, &labels, &classes);
        assert_eq!(e.clean_fpr, 0.0);
        assert_eq!(e.spoofed_recall, 0.0);
    }
}
