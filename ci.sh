#!/usr/bin/env bash
# CI gate: build, full test suite, lint policy for decode hot paths,
# and a fault-injection smoke test.
#
# Note: the root manifest is both the workspace and a package, so a bare
# `cargo test` only runs the root package's tests — always pass
# --workspace here.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release --workspace

echo "==> tests (workspace)"
cargo test -q --workspace

echo "==> clippy (workspace)"
cargo clippy -q --workspace

echo "==> clippy: no unwrap in decode + runner hot paths (lib targets only)"
cargo clippy -q -p spoofwatch-net -p spoofwatch-bgp -p spoofwatch-ixp \
    -p spoofwatch-packet -p spoofwatch-core -- -D clippy::unwrap_used

echo "==> fault-injection smoke test (1% corruption acceptance)"
cargo test -q -p spoofwatch-ixp    ipfix_one_percent_corruption_recovers_unaffected_records
cargo test -q -p spoofwatch-bgp    mrt_one_percent_corruption_recovers_unaffected_records
cargo test -q -p spoofwatch-packet pcap_one_percent_corruption_recovers_unaffected_records
cargo run -q --release --example dirty_ingest > /dev/null

echo "==> crash-recovery smoke test (run, interrupt, tear, resume, compare)"
cargo test -q -p spoofwatch-core --test crash_recovery torn_checkpoint
cargo run -q --release --example resumable_study > /dev/null

echo "==> CI green"
