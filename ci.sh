#!/usr/bin/env bash
# CI gate: build, full test suite, lint policy for decode hot paths,
# and a fault-injection smoke test.
#
# Note: the root manifest is both the workspace and a package, so a bare
# `cargo test` only runs the root package's tests — always pass
# --workspace here.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release --workspace

echo "==> tests (workspace)"
cargo test -q --workspace

echo "==> clippy (workspace)"
cargo clippy -q --workspace

echo "==> clippy: no unwrap in decode + runner + analysis + obs paths (lib targets only)"
cargo clippy -q -p spoofwatch-net -p spoofwatch-bgp -p spoofwatch-ixp \
    -p spoofwatch-packet -p spoofwatch-core -p spoofwatch-analysis \
    -p spoofwatch-obs -- -D clippy::unwrap_used

echo "==> fault-injection smoke test (1% corruption acceptance)"
cargo test -q -p spoofwatch-ixp    ipfix_one_percent_corruption_recovers_unaffected_records
cargo test -q -p spoofwatch-bgp    mrt_one_percent_corruption_recovers_unaffected_records
cargo test -q -p spoofwatch-packet pcap_one_percent_corruption_recovers_unaffected_records
cargo run -q --release --example dirty_ingest > /dev/null

echo "==> crash-recovery smoke test (run, interrupt, tear, resume, compare)"
cargo test -q -p spoofwatch-core --test crash_recovery torn_checkpoint
cargo run -q --release --example resumable_study > /dev/null

echo "==> observability smoke test (metrics endpoint, reconciliation, flight recorder)"
cargo test -q -p spoofwatch-core --test telemetry
snapshot="$(mktemp)"
SPOOFWATCH_METRICS_ADDR=127.0.0.1:0 SPOOFWATCH_METRICS_SNAPSHOT="$snapshot" \
    cargo run -q --release --example ixp_study > /dev/null
test -s "$snapshot" || { echo "metrics snapshot is empty"; exit 1; }
grep -q '^spoofwatch_classified_flows_total' "$snapshot" \
    || { echo "metrics snapshot lacks classify counters"; exit 1; }
rm -f "$snapshot"
cargo run -q --release --example telemetry_study > /dev/null 2>&1

echo "==> rollup smoke test (windowed ring: generate, crash, resume, query, reconcile)"
cargo test -q -p spoofwatch-core --test rollups
# --demo asserts the window count tiles the committed chunks, that the
# ring's sums reconcile with the run report, and that the resumed ring
# is bit-identical to an uninterrupted run's.
cargo run -q --release --example telemetry_query -- --demo > /dev/null

echo "==> observability overhead contract (disabled hot-path updates < 20 ns, sampler-off classify within 5%)"
CRITERION_STUB_BUDGET_MS=50 cargo bench -q -p spoofwatch-bench --bench obs > /dev/null

echo "==> compiled LPM contract (frozen >= 2x trie at 0/1/5% bogon mix, fused classify beats two walks, swap under load)"
# The bench asserts the speedup floors itself and refreshes the tracked
# BENCH_lpm.json baseline at the repo root.
CRITERION_STUB_BUDGET_MS=50 cargo bench -q -p spoofwatch-bench --bench lpm > /dev/null
test -s BENCH_lpm.json || { echo "BENCH_lpm.json baseline missing"; exit 1; }
grep -q '"bench":"lpm"' BENCH_lpm.json \
    || { echo "BENCH_lpm.json baseline malformed"; exit 1; }

echo "==> sharded study smoke test (bit-identity, chaos recovery, shard-loss accounting)"
cargo test -q -p spoofwatch-core --test shard_study
# The example proves a 3-shard UDS run bit-identical to single-node,
# then kills a shard past its retry budget and checks the degraded
# accounting invariant and report caveats. It exits nonzero on any
# mismatch.
cargo run -q --release --example sharded_study > /dev/null
# The shard bench asserts clean runs at 1/2/4 shards, shard-count-
# independent merges, and a bounded shard-layer tax, and refreshes the
# tracked BENCH_shard.json baseline.
CRITERION_STUB_BUDGET_MS=50 cargo bench -q -p spoofwatch-bench --bench shard > /dev/null
test -s BENCH_shard.json || { echo "BENCH_shard.json baseline missing"; exit 1; }
grep -q '"bench":"shard"' BENCH_shard.json \
    || { echo "BENCH_shard.json baseline malformed"; exit 1; }

echo "==> live-soak smoke test (chaos soak above capacity, graceful drain, overload recovery)"
# The seeded chaos soak streams through a corrupting link into an
# underprovisioned consumer with kill+resume mid-stream; it asserts the
# exact accounting invariant at record and chunk level, a bounded
# buffer, at least one Shed->Normal recovery, and a clean drain.
cargo test -q -p spoofwatch-core --test live_study live_chaos_soak
# The example proves a line-rate live session bit-identical to file
# replay, forces the ladder through Shed and back, demonstrates a
# graceful Stop drain, and renders the report's live-session block. It
# exits nonzero on any mismatch.
cargo run -q --release --example live_study > /dev/null
# The live bench asserts a bounded live-layer tax over file replay and
# exact reconciliation under overload, and refreshes the tracked
# BENCH_live.json baseline.
CRITERION_STUB_BUDGET_MS=50 cargo bench -q -p spoofwatch-bench --bench live > /dev/null
test -s BENCH_live.json || { echo "BENCH_live.json baseline missing"; exit 1; }
grep -q '"bench":"live"' BENCH_live.json \
    || { echo "BENCH_live.json baseline malformed"; exit 1; }

echo "==> online detection smoke test (cross-mode incident identity, upgrade path, forensics)"
# The detect_study suite proves the incident log byte-identical across a
# file run, kill+resume at and inside window boundaries, a 3-shard run,
# and a live session, and that pre-detection rings and checkpoints
# resume cleanly with detection switched on mid-study.
cargo test -q -p spoofwatch-core --test detect_study
# The forensics example replays a scripted pulse-wave attack (a seeded
# random->selective spoofing flip) through the streaming runner's online
# detectors and exits nonzero unless both spoof modes are discriminated
# and every incident carries a full provenance bundle.
cargo run -q --release --example attack_forensics > /dev/null
# The detect bench prices worker-side payload accumulation (including
# the streaming entropy sketches) and the per-window detector bank, and
# enforces the documented contracts: a per-record accumulation ceiling
# and a <=5% tax on the serial rollup commit path. It refreshes the
# tracked BENCH_detect.json baseline.
CRITERION_STUB_BUDGET_MS=50 cargo bench -q -p spoofwatch-bench --bench detect > /dev/null
test -s BENCH_detect.json || { echo "BENCH_detect.json baseline missing"; exit 1; }
grep -q '"bench":"detect"' BENCH_detect.json \
    || { echo "BENCH_detect.json baseline malformed"; exit 1; }

echo "==> batch classify contract (>=3x over scalar, zero steady-state allocations, byte-identity)"
# The differential suite pins the batch path to the scalar one: per
# flow across all five method variants (including proptest probes),
# columnar decode against the resilient decoder under fault injection,
# and the whole runner artifact chain (report, rollup ring, incident
# log) against a scalar run_with closure.
cargo test -q -p spoofwatch-ixp  --test columnar_diff
cargo test -q -p spoofwatch-core --test batch_diff
# Batch-mode smoke: the runner now classifies through the batch path in
# every mode, so re-run the sharded bit-identity and live chaos-soak
# gates explicitly against it.
cargo test -q -p spoofwatch-core --test shard_study in_proc_sharding_is_bit_identical_for_1_2_4_shards
cargo test -q -p spoofwatch-core --test live_study live_chaos_soak
# The bench asserts the >=3x floor and the zero-allocation contract
# itself, and refreshes the tracked BENCH_batch.json baseline.
CRITERION_STUB_BUDGET_MS=50 cargo bench -q -p spoofwatch-bench --bench batch > /dev/null
test -s BENCH_batch.json || { echo "BENCH_batch.json baseline missing"; exit 1; }
grep -q '"bench":"batch"' BENCH_batch.json \
    || { echo "BENCH_batch.json baseline malformed"; exit 1; }

echo "==> CI green"
