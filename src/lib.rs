//! # spoofwatch
//!
//! Facade crate re-exporting the full `spoofwatch` system: a reproduction
//! of *"Detection, Classification, and Analysis of Inter-Domain Traffic
//! with Spoofed Source IP Addresses"* (Lichtblau et al., ACM IMC 2017).
//!
//! Start with [`core`]'s classification pipeline, generate inputs with
//! [`internet`] and [`ixp`], and analyse results with [`analysis`].

#![forbid(unsafe_code)]

pub use spoofwatch_analysis as analysis;
pub use spoofwatch_asgraph as asgraph;
pub use spoofwatch_bgp as bgp;
pub use spoofwatch_core as core;
pub use spoofwatch_internet as internet;
pub use spoofwatch_ixp as ixp;
pub use spoofwatch_net as net;
pub use spoofwatch_obs as obs;
pub use spoofwatch_packet as packet;
pub use spoofwatch_spoofer as spoofer;
pub use spoofwatch_trie as trie;
