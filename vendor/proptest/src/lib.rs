//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`any`] for primitives,
//! `prop::collection::{vec, hash_set}`, [`Just`], [`prop_oneof!`], and
//! the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (derived from the test's module path and name), and
//! there is **no shrinking** — a failing case reports its inputs via the
//! assertion message instead. That keeps runs deterministic and
//! dependency-free, which is what the offline environment needs.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic generator driving each test case.

    /// SplitMix64-based test RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Build from a seed; the stream is fully determined by it.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// FNV-1a hash of a string, used to derive per-test seeds.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A failed `prop_assert*` inside a test case body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retry until `f` accepts the generated value (bounded; panics if
    /// the filter rejects 1000 consecutive candidates).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain generation for primitive types.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generate any value of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident . $n:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
}

/// Uniform choice among boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Union<T> {
    /// Build from at least one alternative.
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use super::{Strategy, TestRng};

    /// Strategy yielding a uniformly random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    /// A uniformly random boolean.
    pub const ANY: BoolAny = BoolAny;
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// `Vec` of values from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` of values from `element`, with a target size in `size`
    /// (best-effort: bounded retries against collisions).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0;
            while out.len() < n && attempts < 1000 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// `prop::collection::vec(...)` resolves after a prelude glob import
// because `prelude::prop` is the crate root itself.
pub mod prelude {
    //! Everything a property-test file needs, via `use proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "prop_assert!({}) failed",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "prop_assert_eq! failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "prop_assert_ne! failed: {} == {}\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                l
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let alternatives: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(alternatives)
    }};
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (any::<u8>(), 1u8..=10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5u32..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_flat_map(x in prop_oneof![Just(1u8), Just(2u8)], p in arb_pair()) {
            prop_assert!(x == 1 || x == 2);
            prop_assert!((1..=10).contains(&p.1));
        }

        #[test]
        fn flat_map_links_values(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(any::<u8>(), n..n + 1))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::new(1);
        let mut b = crate::test_runner::TestRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
