//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] (SplitMix64 core)
//! and the trait surface this workspace uses: [`Rng`] / [`RngExt`]
//! (`random`, `random_range`, `random_bool`, `random_ratio`),
//! [`SeedableRng::seed_from_u64`], and [`seq::IndexedRandom::choose`].
//! Streams are stable across runs for a given seed, which is all the
//! generators and tests in this repository rely on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Uniform sampling of a full-domain value (the `StandardUniform`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Map 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with uniform sampling between two bounds. Mirrors real rand's
/// `SampleUniform` so that integer-literal ranges unify with the calling
/// context (e.g. `rng.random_range(0..1000) + some_u16`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics on an empty range, matching real rand.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = (hi - lo) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Marker bound for generators, used in generic signatures
/// (`fn f<R: Rng + ?Sized>`). Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {}

impl<T: RngCore + ?Sized> Rng for T {}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`]. Kept separate from [`Rng`] so call sites importing both
/// names use both imports (mirroring newer rand's split).
pub trait RngExt: RngCore {
    /// Sample a full-domain value.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Bernoulli trial with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "random_ratio denominator must be nonzero");
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                // Pre-mix so nearby seeds do not yield nearby streams.
                state: seed ^ 0xD6E8_FEB8_6659_FD93,
            }
        }
    }

    /// Alias: the small generator is the same core here.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Uniform choice from an indexable collection.
    pub trait IndexedRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::IndexedRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.random_range(8u8..=24);
            assert!((8..=24).contains(&w));
            let f = r.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(5);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.as_slice().choose(&mut r).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut r).is_none());
    }
}
