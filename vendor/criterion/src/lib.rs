//! Offline stand-in for `criterion`.
//!
//! Same API shape as the real crate for the subset the workspace's
//! benches use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, throughput annotation), but the measurement
//! loop is a simple bounded wall-clock sampler: warm up briefly, then
//! run until a time budget (`CRITERION_STUB_BUDGET_MS`, default 300 ms
//! per benchmark) or an iteration cap is hit, and print mean ns/iter
//! plus derived throughput. No statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", name.into());
        BenchmarkGroup {
            _parent: self,
            throughput: None,
        }
    }
}

/// Throughput annotation for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Parameterised benchmark identifier.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, like real criterion.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

/// Batch sizing hint for `iter_batched` (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub's sampling is
    /// time-budgeted rather than sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.to_string(), self.throughput);
        self
    }

    /// Run one parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&id.name, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_STUB_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Timer handed to each benchmark closure.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let budget = budget();
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 1_000_000 {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget = budget();
        let mut measured = Duration::ZERO;
        let started = Instant::now();
        let mut iters = 0u64;
        while started.elapsed() < budget && iters < 1_000_000 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = measured;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("  {name}: no measurement (bencher closure never called iter)");
            return;
        }
        let ns_per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(b)) => {
                let gib = b as f64 / ns_per_iter; // bytes/ns == GB/s
                format!("  ({gib:.3} GB/s)")
            }
            Some(Throughput::Elements(e)) => {
                let meps = e as f64 * 1e3 / ns_per_iter;
                format!("  ({meps:.2} Melem/s)")
            }
            None => String::new(),
        };
        println!("  {name}: {ns_per_iter:.0} ns/iter over {} iters{rate}", self.iters);
    }
}

/// Declare a group function running each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(4));
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        std::env::set_var("CRITERION_STUB_BUDGET_MS", "5");
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
