//! Offline stand-in for the `bytes` crate.
//!
//! Implements only the [`Buf`] / [`BufMut`] subset the spoofwatch codecs
//! use: big-endian integer accessors over `&[u8]`, and append/advance
//! writers over `Vec<u8>` and `&mut [u8]`. Semantics match the real crate
//! for that subset (including panics on under/overflow, which callers are
//! expected to guard with `remaining()`).

#![forbid(unsafe_code)]

/// Read-side cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write-side cursor over a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        assert!(src.len() <= self.len(), "put_slice past end of buffer");
        let this = std::mem::take(self);
        let (head, tail) = this.split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_roundtrip() {
        let mut v = Vec::new();
        v.put_u8(7);
        v.put_u16(0x0102);
        v.put_u32(0x03040506);
        v.put_u64(0x0708090a0b0c0d0e);
        v.put_slice(&[1, 2]);
        let mut r: &[u8] = &v;
        assert_eq!(r.remaining(), 17);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32(), 0x03040506);
        assert_eq!(r.get_u64(), 0x0708090a0b0c0d0e);
        assert!(r.has_remaining());
        r.advance(2);
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_writer_advances() {
        let mut out = [0u8; 4];
        let mut w = &mut out[..];
        w.put_u16(0xBEEF);
        w.put_u16(0xCAFE);
        assert_eq!(out, [0xBE, 0xEF, 0xCA, 0xFE]);
    }
}
