//! Offline stand-in for `serde`.
//!
//! [`Serialize`] is a single-method direct-to-JSON writer (the only
//! serialization this workspace performs is `serde_json::to_string` on
//! plain data-carrying structs). The derive macros come from the sibling
//! `serde_derive` stub. `Deserialize` exists for source compatibility
//! only — nothing in the workspace deserializes.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as a JSON value.
pub trait Serialize {
    /// Append this value's JSON rendering to `out`.
    fn json(&self, out: &mut String);
}

/// Marker for source compatibility with real serde bounds.
pub trait Deserialize<'de>: Sized {}

/// Append `s` as a JSON string literal (with escaping).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for str {
    fn json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for char {
    fn json(&self, out: &mut String) {
        write_json_string(out, &self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json(&self, out: &mut String) {
        (**self).json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json(&self, out: &mut String) {
        match self {
            Some(v) => v.json(out),
            None => out.push_str("null"),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(out: &mut String, items: impl Iterator<Item = &'a T>) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn json(&self, out: &mut String) {
        write_seq(out, self.iter());
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Serialize a map key: JSON requires string keys, so non-string keys
/// are rendered and wrapped in quotes.
fn write_map_key<K: Serialize>(out: &mut String, key: &K) {
    let mut raw = String::new();
    key.json(&mut raw);
    if raw.starts_with('"') {
        out.push_str(&raw);
    } else {
        write_json_string(out, &raw);
    }
}

fn write_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_map_key(out, k);
        out.push(':');
        v.json(out);
    }
    out.push('}');
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn json(&self, out: &mut String) {
        write_map(out, self.iter());
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn json(&self, out: &mut String) {
        write_map(out, self.iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_strings() {
        let mut s = String::new();
        42u32.json(&mut s);
        s.push(' ');
        true.json(&mut s);
        s.push(' ');
        "a\"b".json(&mut s);
        assert_eq!(s, "42 true \"a\\\"b\"");
    }

    #[test]
    fn collections() {
        let mut s = String::new();
        vec![1u8, 2, 3].json(&mut s);
        assert_eq!(s, "[1,2,3]");
        let mut s = String::new();
        let mut m = BTreeMap::new();
        m.insert(7u32, "x".to_owned());
        m.json(&mut s);
        assert_eq!(s, "{\"7\":\"x\"}");
        let mut s = String::new();
        (1u8, "y", 2.5f64).json(&mut s);
        assert_eq!(s, "[1,\"y\",2.5]");
        let mut s = String::new();
        Option::<u8>::None.json(&mut s);
        assert_eq!(s, "null");
    }
}
