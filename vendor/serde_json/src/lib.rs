//! Offline stand-in for `serde_json`: serialization entry points over the
//! vendored `serde::Serialize` direct-to-JSON trait. Output is compact,
//! valid JSON; `to_string_pretty` currently emits the same compact form
//! (no caller inspects whitespace).

#![forbid(unsafe_code)]

use std::fmt;

/// Serialization error. The vendored serializer is infallible, but the
/// real crate's signature is preserved.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching the real crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.json(&mut out);
    Ok(out)
}

/// Serialize `value` to JSON. Pretty-printing is not implemented in the
/// offline stub; output is the compact form.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_emits_fields() {
        let v = vec![("k".to_owned(), 3u32)];
        assert_eq!(super::to_string(&v).unwrap(), "[[\"k\",3]]");
    }
}
