//! Offline stand-in for `serde_derive`.
//!
//! `#[derive(Serialize)]` generates an implementation of the vendored
//! `serde::Serialize` trait (a direct-to-JSON writer). Supported shapes:
//!
//! * structs with named fields → JSON objects, field by field;
//! * tuple structs → the inner value (single field or
//!   `#[serde(transparent)]`) or a JSON array;
//! * enums → their `Debug` rendering as a JSON string (every derived enum
//!   in this workspace also derives `Debug`).
//!
//! `#[derive(Deserialize)]` is accepted for source compatibility and
//! expands to nothing — no code path in this workspace deserializes.
//!
//! The input is parsed directly from the token stream (no `syn`/`quote`
//! in the offline environment), which is sufficient for the
//! non-generic type definitions this workspace derives on.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(def) => generate(&def).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error tokens parse"),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Enum,
}

struct Def {
    name: String,
    transparent: bool,
    shape: Shape,
}

fn parse(input: TokenStream) -> Result<Def, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes (doc comments, #[serde(...)], …) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.to_string().replace(' ', "").contains("serde(transparent)") {
                        transparent = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected type name".into()),
    };
    i += 1;

    // Skip generic parameters if present (none of the workspace's derived
    // types are generic; bail out loudly rather than mis-generate).
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde_derive stub: generic type `{name}` unsupported"));
        }
    }

    let shape = match kind.as_str() {
        "enum" => Shape::Enum,
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            // Unit struct.
            _ => Shape::Tuple(0),
        },
        other => return Err(format!("serde_derive stub: unsupported item kind `{other}`")),
    };

    Ok(Def {
        name,
        transparent,
        shape,
    })
}

/// Collect field names from the token stream inside a brace-delimited
/// struct body.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip per-field attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name followed by ':'.
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => break,
        }
        fields.push(name);
        // Skip the type: consume until a ',' at angle-bracket depth 0.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Count the comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut last_was_comma = false;
    for t in &tokens {
        last_was_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if last_was_comma {
        count -= 1; // trailing comma
    }
    count
}

fn generate(def: &Def) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::Named(fields) => {
            if def.transparent && fields.len() == 1 {
                format!("::serde::Serialize::json(&self.{}, out);", fields[0])
            } else {
                let mut b = String::from("out.push('{');");
                for (idx, f) in fields.iter().enumerate() {
                    if idx > 0 {
                        b.push_str("out.push(',');");
                    }
                    b.push_str(&format!(
                        "::serde::write_json_string(out, {f:?});out.push(':');\
                         ::serde::Serialize::json(&self.{f}, out);"
                    ));
                }
                b.push_str("out.push('}');");
                b
            }
        }
        Shape::Tuple(0) => "out.push_str(\"null\");".to_owned(),
        Shape::Tuple(1) => "::serde::Serialize::json(&self.0, out);".to_owned(),
        Shape::Tuple(n) => {
            if def.transparent {
                "::serde::Serialize::json(&self.0, out);".to_owned()
            } else {
                let mut b = String::from("out.push('[');");
                for idx in 0..*n {
                    if idx > 0 {
                        b.push_str("out.push(',');");
                    }
                    b.push_str(&format!("::serde::Serialize::json(&self.{idx}, out);"));
                }
                b.push_str("out.push(']');");
                b
            }
        }
        Shape::Enum => {
            "::serde::write_json_string(out, &::std::format!(\"{:?}\", self));".to_owned()
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn json(&self, out: &mut ::std::string::String) {{ {body} }}\n\
         }}"
    )
}
